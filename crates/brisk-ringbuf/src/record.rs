//! Typed record rings: the internal-sensor writing surface.
//!
//! A [`SensorPort`] is the handle an instrumented thread holds; it plays the
//! role of the per-process shared-memory segment the paper's `NOTICE`
//! macros write to. Each port owns the producing half of one SPSC ring and
//! a private sequence counter. Sequence numbers are assigned even to
//! records that end up dropped, so downstream tools can detect loss from
//! gaps.
//!
//! A [`RingSet`] collects the consuming halves for one node; the external
//! sensor drains them all in its polling loop.

use crate::spsc::{ByteRing, RingConsumer, RingProducer, RingStats};
use brisk_core::binenc;
use brisk_core::descriptor::MAX_FIELDS;
use brisk_core::{
    EventRecord, EventTypeId, NodeId, Result, SensorId, TraceContext, UtcMicros, Value,
};
use brisk_telemetry::{Counter, Registry, TraceSampler};
use parking_lot::Mutex;
use std::sync::Arc;

/// Producer handle used by one internal sensor.
pub struct SensorPort {
    node: NodeId,
    sensor: SensorId,
    seq: u64,
    producer: RingProducer,
    scratch: Vec<u8>,
    /// Optional per-node notice counter (telemetry); one relaxed
    /// `fetch_add` on the emit hot path when bound, zero cost otherwise.
    notices: Option<Arc<Counter>>,
    /// Optional trace sampler; when it fires, the record picks up an
    /// `X_TRACE` context stamped with its notice time.
    tracer: Option<Arc<TraceSampler>>,
}

impl SensorPort {
    /// The node this port belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This port's sensor id.
    pub fn sensor(&self) -> SensorId {
        self.sensor
    }

    /// Sequence number the next record will get.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Emit a record with the given event type, timestamp and fields.
    /// Returns `Ok(true)` if published, `Ok(false)` if dropped (ring full);
    /// the sequence number advances either way.
    pub fn emit(
        &mut self,
        event_type: EventTypeId,
        ts: UtcMicros,
        mut fields: Vec<Value>,
    ) -> Result<bool> {
        self.maybe_attach_trace(ts, &mut fields);
        let rec = EventRecord::new(self.node, self.sensor, event_type, self.seq, ts, fields)?;
        self.seq += 1;
        Ok(self.push_encoded(&rec))
    }

    /// Emit a pre-built record, overriding its origin and sequence fields
    /// with this port's. Used by the `notice!` macro expansion.
    pub fn emit_record(&mut self, mut rec: EventRecord) -> bool {
        rec.node = self.node;
        rec.sensor = self.sensor;
        rec.seq = self.seq;
        self.seq += 1;
        let ts = rec.ts;
        self.maybe_attach_trace(ts, &mut rec.fields);
        self.push_encoded(&rec)
    }

    /// If the sampler fires and a field slot is free, append an
    /// `X_TRACE` context whose origin stamp is the notice timestamp.
    /// A record already at [`MAX_FIELDS`] keeps its payload and the
    /// sampler counts the skip instead.
    #[inline]
    fn maybe_attach_trace(&self, ts: UtcMicros, fields: &mut Vec<Value>) {
        let Some(tracer) = &self.tracer else {
            return;
        };
        let Some(trace_id) = tracer.sample() else {
            return;
        };
        if fields.len() >= MAX_FIELDS {
            tracer.note_full_skip();
            return;
        }
        fields.push(Value::Trace(TraceContext::origin(trace_id, ts)));
    }

    fn push_encoded(&mut self, rec: &EventRecord) -> bool {
        if let Some(c) = &self.notices {
            c.inc();
        }
        self.scratch.clear();
        binenc::encode_record(rec, &mut self.scratch);
        self.producer.push(&self.scratch)
    }

    /// Traffic counters of the underlying ring.
    pub fn stats(&self) -> RingStats {
        self.producer.stats()
    }

    /// Bytes currently buffered in this port's ring (producer view:
    /// never negative, at most stale-high).
    pub fn occupancy(&self) -> usize {
        self.producer.occupancy()
    }

    /// Attach a notice counter incremented once per emitted record
    /// (whether or not the ring accepts it). Used by the telemetry
    /// overhead benchmark and by [`RingSet::bind_telemetry`].
    pub fn set_notice_counter(&mut self, counter: Arc<Counter>) {
        self.notices = Some(counter);
    }

    /// Attach a trace sampler. Sampled emits gain an `X_TRACE` field;
    /// unsampled emits pay one relaxed `fetch_add`.
    pub fn set_trace_sampler(&mut self, sampler: Arc<TraceSampler>) {
        self.tracer = Some(sampler);
    }
}

/// Consumer handle for one sensor's ring.
pub struct RecordConsumer {
    sensor: SensorId,
    consumer: RingConsumer,
    scratch: Vec<u8>,
}

impl RecordConsumer {
    /// The sensor this consumer reads from.
    pub fn sensor(&self) -> SensorId {
        self.sensor
    }

    /// Pop one record, if available. A frame that fails to decode is a
    /// logic error (the port encoded it) and is surfaced as `Err`.
    pub fn pop(&mut self) -> Result<Option<EventRecord>> {
        if !self.consumer.pop(&mut self.scratch) {
            return Ok(None);
        }
        let (rec, used) = binenc::decode_record(&self.scratch)?;
        debug_assert_eq!(used, self.scratch.len());
        Ok(Some(rec))
    }

    /// Drain up to `max` records into `out`. Returns how many were read.
    pub fn drain_into(&mut self, max: usize, out: &mut Vec<EventRecord>) -> Result<usize> {
        let mut n = 0;
        while n < max {
            match self.pop()? {
                Some(rec) => {
                    out.push(rec);
                    n += 1;
                }
                None => break,
            }
        }
        Ok(n)
    }

    /// True if no record is currently buffered.
    pub fn is_empty(&self) -> bool {
        self.consumer.is_empty()
    }

    /// Traffic counters of the underlying ring.
    pub fn stats(&self) -> RingStats {
        self.consumer.stats()
    }

    /// Bytes currently buffered (consumer view: exact or stale-low).
    pub fn occupancy(&self) -> usize {
        self.consumer.occupancy()
    }
}

/// One ring per record-producing sensor plus its consumer side; what the
/// external sensor polls.
pub struct RecordRing;

impl RecordRing {
    /// Create one sensor ring, returning the sensor-side port and the
    /// EXS-side consumer.
    pub fn create(node: NodeId, sensor: SensorId, capacity: usize) -> (SensorPort, RecordConsumer) {
        let (producer, consumer) = ByteRing::with_capacity(capacity);
        (
            SensorPort {
                node,
                sensor,
                seq: 0,
                producer,
                scratch: Vec::with_capacity(256),
                notices: None,
                tracer: None,
            },
            RecordConsumer {
                sensor,
                consumer,
                scratch: Vec::with_capacity(256),
            },
        )
    }
}

/// The per-node collection of sensor rings.
///
/// Registration may happen while the external sensor is draining (new
/// threads can be instrumented at any time), so the consumer list is behind
/// a mutex; the drain path holds the lock only while it works, which is
/// fine because there is exactly one drainer (the EXS).
pub struct RingSet {
    node: NodeId,
    capacity_per_ring: usize,
    consumers: Mutex<Vec<RecordConsumer>>,
    next_sensor: Mutex<u32>,
    tracer: Mutex<Option<Arc<TraceSampler>>>,
}

impl RingSet {
    /// New ring set for the given node. `capacity_per_ring` sizes each
    /// sensor's ring (the `ring_capacity` knob).
    pub fn new(node: NodeId, capacity_per_ring: usize) -> Arc<Self> {
        Arc::new(RingSet {
            node,
            capacity_per_ring,
            consumers: Mutex::new(Vec::new()),
            next_sensor: Mutex::new(0),
            tracer: Mutex::new(None),
        })
    }

    /// Install a node-wide trace sampler shared by every port registered
    /// *after* this call (ports registered earlier are unaffected; call
    /// this before instrumented threads start).
    pub fn set_trace_sampler(&self, sampler: Arc<TraceSampler>) {
        *self.tracer.lock() = Some(sampler);
    }

    /// The node-wide trace sampler, if one was installed.
    pub fn trace_sampler(&self) -> Option<Arc<TraceSampler>> {
        self.tracer.lock().clone()
    }

    /// The node this set belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Register a new internal sensor, allocating the next sensor id.
    pub fn register(self: &Arc<Self>) -> SensorPort {
        let mut next = self.next_sensor.lock();
        let sensor = SensorId(*next);
        *next += 1;
        drop(next);
        self.register_with_id(sensor)
    }

    /// Register a sensor with an explicit id.
    pub fn register_with_id(self: &Arc<Self>, sensor: SensorId) -> SensorPort {
        let (mut port, consumer) = RecordRing::create(self.node, sensor, self.capacity_per_ring);
        if let Some(sampler) = self.trace_sampler() {
            port.set_trace_sampler(sampler);
        }
        self.consumers.lock().push(consumer);
        port
    }

    /// Number of registered sensors.
    pub fn sensor_count(&self) -> usize {
        self.consumers.lock().len()
    }

    /// Drain up to `max_total` records across all rings (round-robin over
    /// rings, in registration order) into `out`. Returns how many records
    /// were read.
    pub fn drain_into(&self, max_total: usize, out: &mut Vec<EventRecord>) -> Result<usize> {
        let mut consumers = self.consumers.lock();
        let mut total = 0;
        for c in consumers.iter_mut() {
            if total >= max_total {
                break;
            }
            total += c.drain_into(max_total - total, out)?;
        }
        Ok(total)
    }

    /// Aggregated traffic counters across all rings.
    pub fn stats(&self) -> RingStats {
        let consumers = self.consumers.lock();
        let mut agg = RingStats::default();
        for c in consumers.iter() {
            let s = c.stats();
            agg.produced += s.produced;
            agg.dropped += s.dropped;
            agg.consumed += s.consumed;
        }
        agg
    }

    /// True if every ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.consumers.lock().iter().all(|c| c.is_empty())
    }

    /// Bytes currently buffered across all rings (consumer view, so the
    /// reading never races the drain loop into a negative value).
    pub fn occupancy_bytes(&self) -> usize {
        self.consumers.lock().iter().map(|c| c.occupancy()).sum()
    }

    /// Total ring capacity across all registered sensors.
    pub fn capacity_bytes(&self) -> usize {
        self.sensor_count() * self.capacity_per_ring
    }

    /// Register this set's live state with a telemetry registry.
    ///
    /// Everything is exported as computed sources reading the rings'
    /// own monotonic counters, so the hot paths pay nothing extra:
    ///
    /// - `brisk_ring_occupancy_bytes{node=..}` (gauge)
    /// - `brisk_ring_capacity_bytes{node=..}` (gauge)
    /// - `brisk_ring_produced_total{node=..}` / `_dropped_total` /
    ///   `_consumed_total` (counters)
    pub fn bind_telemetry(self: &Arc<Self>, registry: &Registry) {
        let node = self.node.0.to_string();
        let labels = [("node", node.as_str())];
        let s = Arc::clone(self);
        registry.gauge_fn(
            "brisk_ring_occupancy_bytes",
            "Bytes currently buffered in the node's sensor rings",
            &labels,
            move || s.occupancy_bytes() as i64,
        );
        let s = Arc::clone(self);
        registry.gauge_fn(
            "brisk_ring_capacity_bytes",
            "Total capacity of the node's sensor rings",
            &labels,
            move || s.capacity_bytes() as i64,
        );
        let s = Arc::clone(self);
        registry.counter_fn(
            "brisk_ring_produced_total",
            "Records accepted by the sensor rings",
            &labels,
            move || s.stats().produced,
        );
        let s = Arc::clone(self);
        registry.counter_fn(
            "brisk_ring_dropped_total",
            "Records dropped because a sensor ring was full",
            &labels,
            move || s.stats().dropped,
        );
        let s = Arc::clone(self);
        registry.counter_fn(
            "brisk_ring_consumed_total",
            "Records drained from the sensor rings by the EXS",
            &labels,
            move || s.stats().consumed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn fields(i: i32) -> Vec<Value> {
        vec![Value::I32(i), Value::Str(format!("e{i}"))]
    }

    #[test]
    fn port_round_trips_records() {
        let (mut port, mut cons) = RecordRing::create(NodeId(1), SensorId(2), 4096);
        assert!(port
            .emit(EventTypeId(7), UtcMicros::from_micros(10), fields(0))
            .unwrap());
        let rec = cons.pop().unwrap().unwrap();
        assert_eq!(rec.node, NodeId(1));
        assert_eq!(rec.sensor, SensorId(2));
        assert_eq!(rec.event_type, EventTypeId(7));
        assert_eq!(rec.seq, 0);
        assert_eq!(rec.fields, fields(0));
        assert!(cons.pop().unwrap().is_none());
    }

    #[test]
    fn seq_advances_even_on_drop() {
        let (mut port, mut cons) = RecordRing::create(NodeId(1), SensorId(0), 64);
        // Fill the tiny ring until a drop occurs.
        let mut dropped = false;
        for i in 0..20 {
            let ok = port
                .emit(EventTypeId(1), UtcMicros::ZERO, fields(i))
                .unwrap();
            if !ok {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "64-byte ring must overflow");
        let stats = port.stats();
        assert!(stats.dropped >= 1);
        // Drain and observe the seq gap once more records flow.
        let mut out = Vec::new();
        cons.drain_into(usize::MAX, &mut out).unwrap();
        let last_seq = out.last().unwrap().seq;
        assert!(port.emit(EventTypeId(1), UtcMicros::ZERO, vec![]).unwrap());
        let next = cons.pop().unwrap().unwrap();
        assert!(
            next.seq > last_seq + 1,
            "gap {} -> {} must reveal the drop",
            last_seq,
            next.seq
        );
    }

    #[test]
    fn emit_record_overrides_origin() {
        let (mut port, mut cons) = RecordRing::create(NodeId(5), SensorId(6), 1024);
        let rec = EventRecord::new(
            NodeId(99),
            SensorId(99),
            EventTypeId(3),
            99,
            UtcMicros::from_micros(1),
            vec![],
        )
        .unwrap();
        assert!(port.emit_record(rec));
        let got = cons.pop().unwrap().unwrap();
        assert_eq!(got.node, NodeId(5));
        assert_eq!(got.sensor, SensorId(6));
        assert_eq!(got.seq, 0);
    }

    #[test]
    fn ring_set_round_robin_drain() {
        let set = RingSet::new(NodeId(1), 4096);
        let mut a = set.register();
        let mut b = set.register();
        assert_eq!(set.sensor_count(), 2);
        assert_ne!(a.sensor(), b.sensor());
        for i in 0..5 {
            a.emit(EventTypeId(1), UtcMicros::from_micros(i), vec![])
                .unwrap();
            b.emit(EventTypeId(2), UtcMicros::from_micros(i), vec![])
                .unwrap();
        }
        let mut out = Vec::new();
        let n = set.drain_into(usize::MAX, &mut out).unwrap();
        assert_eq!(n, 10);
        assert_eq!(out.iter().filter(|r| r.sensor == a.sensor()).count(), 5);
        assert_eq!(out.iter().filter(|r| r.sensor == b.sensor()).count(), 5);
        assert!(set.is_empty());
    }

    #[test]
    fn ring_set_drain_respects_budget() {
        let set = RingSet::new(NodeId(1), 4096);
        let mut a = set.register();
        for i in 0..10 {
            a.emit(EventTypeId(1), UtcMicros::from_micros(i), vec![])
                .unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(set.drain_into(3, &mut out).unwrap(), 3);
        assert_eq!(set.drain_into(100, &mut out).unwrap(), 7);
    }

    #[test]
    fn ring_set_aggregated_stats() {
        let set = RingSet::new(NodeId(1), 4096);
        let mut a = set.register();
        let mut b = set.register();
        a.emit(EventTypeId(1), UtcMicros::ZERO, vec![]).unwrap();
        b.emit(EventTypeId(1), UtcMicros::ZERO, vec![]).unwrap();
        b.emit(EventTypeId(1), UtcMicros::ZERO, vec![]).unwrap();
        let stats = set.stats();
        assert_eq!(stats.produced, 3);
        assert_eq!(stats.consumed, 0);
        let mut out = Vec::new();
        set.drain_into(usize::MAX, &mut out).unwrap();
        assert_eq!(set.stats().consumed, 3);
    }

    #[test]
    fn bind_telemetry_exports_live_ring_state() {
        let registry = Registry::new();
        let set = RingSet::new(NodeId(3), 4096);
        set.bind_telemetry(&registry);
        let mut port = set.register();
        port.set_notice_counter(registry.counter("brisk_notices_total", "notices emitted"));
        for i in 0..4 {
            port.emit(EventTypeId(1), UtcMicros::from_micros(i), fields(0))
                .unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_labeled("brisk_ring_produced_total", &[("node", "3")]),
            Some(4)
        );
        assert_eq!(snap.counter_total("brisk_notices_total"), 4);
        let occ = snap.gauge("brisk_ring_occupancy_bytes").unwrap();
        assert!(occ > 0, "4 buffered records must show as occupancy");
        assert_eq!(snap.gauge("brisk_ring_capacity_bytes"), Some(4096));

        let mut out = Vec::new();
        set.drain_into(usize::MAX, &mut out).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("brisk_ring_occupancy_bytes"), Some(0));
        assert_eq!(
            snap.counter_labeled("brisk_ring_consumed_total", &[("node", "3")]),
            Some(4)
        );
    }

    #[test]
    fn sampler_attaches_trace_context_at_notice_time() {
        let set = RingSet::new(NodeId(1), 1 << 16);
        set.set_trace_sampler(Arc::new(TraceSampler::with_seed(2, 42)));
        let mut port = set.register();
        for i in 0..6 {
            port.emit(EventTypeId(1), UtcMicros::from_micros(100 + i), fields(0))
                .unwrap();
        }
        let mut out = Vec::new();
        set.drain_into(usize::MAX, &mut out).unwrap();
        let traced: Vec<_> = out.iter().filter(|r| r.trace().is_some()).collect();
        assert_eq!(traced.len(), 3, "1-in-2 sampling over 6 emits");
        for rec in &traced {
            let ctx = rec.trace().unwrap();
            assert_ne!(ctx.trace_id, 0);
            assert_eq!(ctx.stamps().len(), 1, "origin stamp only at notice time");
            let (stage, ts) = ctx.stamps()[0];
            assert_eq!(stage, brisk_core::TraceStage::Notice);
            assert_eq!(ts, rec.ts, "origin stamp is the notice timestamp");
        }
        let ids: std::collections::HashSet<u64> =
            traced.iter().map(|r| r.trace().unwrap().trace_id).collect();
        assert_eq!(ids.len(), 3, "trace ids must be unique");
    }

    #[test]
    fn full_record_skips_trace_attach() {
        let set = RingSet::new(NodeId(1), 1 << 16);
        let sampler = Arc::new(TraceSampler::with_seed(1, 7));
        set.set_trace_sampler(Arc::clone(&sampler));
        let mut port = set.register();
        let full: Vec<Value> = (0..8).map(Value::I32).collect();
        port.emit(EventTypeId(1), UtcMicros::ZERO, full).unwrap();
        port.emit(EventTypeId(1), UtcMicros::ZERO, fields(1))
            .unwrap();
        assert_eq!(sampler.full_skips(), 1);
        let mut out = Vec::new();
        set.drain_into(usize::MAX, &mut out).unwrap();
        assert!(out[0].trace().is_none(), "full record keeps its payload");
        assert!(out[1].trace().is_some());
    }

    #[test]
    fn multi_threaded_sensors_one_drainer() {
        let set = RingSet::new(NodeId(1), 1 << 16);
        const SENSORS: usize = 4;
        const PER_SENSOR: u64 = 5_000;
        let mut handles = Vec::new();
        for _ in 0..SENSORS {
            let mut port = set.register();
            handles.push(thread::spawn(move || {
                let mut sent = 0u64;
                for i in 0..PER_SENSOR {
                    if port
                        .emit(
                            EventTypeId(1),
                            UtcMicros::from_micros(i as i64),
                            vec![Value::U64(i)],
                        )
                        .unwrap()
                    {
                        sent += 1;
                    } else {
                        // Ring full: spin briefly and retry once.
                        std::thread::yield_now();
                        if port
                            .emit(
                                EventTypeId(1),
                                UtcMicros::from_micros(i as i64),
                                vec![Value::U64(i)],
                            )
                            .unwrap()
                        {
                            sent += 1;
                        }
                    }
                }
                sent
            }));
        }
        let drainer = {
            let set = Arc::clone(&set);
            thread::spawn(move || {
                let mut out = Vec::new();
                let mut idle = 0;
                while idle < 1000 {
                    if set.drain_into(1024, &mut out).unwrap() == 0 {
                        idle += 1;
                        thread::yield_now();
                    } else {
                        idle = 0;
                    }
                }
                out
            })
        };
        let sent: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let drained = drainer.join().unwrap();
        assert_eq!(drained.len() as u64, sent);
        // Per-sensor sequence order must be preserved.
        for s in 0..SENSORS as u32 {
            let seqs: Vec<u64> = drained
                .iter()
                .filter(|r| r.sensor == SensorId(s))
                .map(|r| r.seq)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "sensor {s} out of order"
            );
        }
    }
}
