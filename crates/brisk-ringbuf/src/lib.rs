//! # brisk-ringbuf — the sensor→EXS shared-memory rings
//!
//! In BRISK, "internal sensors use cpp macros to write instrumentation data
//! records to the memory. The memory is read by an external sensor, which
//! runs as another process on the same node" (§3.1). The original used a
//! SysV shared-memory segment holding "a ring-buffer data structure"; here
//! the equivalent is an in-process lock-free ring shared between sensor
//! threads and the external-sensor thread. Threads stand in for the
//! original's processes — the synchronization discipline (single-writer /
//! single-reader, no locks, never block the application) is identical, and
//! it is what experiments E1/E2 measure.
//!
//! Two layers:
//!
//! * [`spsc::ByteRing`] — a fixed-capacity single-producer single-consumer
//!   byte ring carrying length-prefixed frames. Writes never block: if the
//!   ring is full the frame is *dropped* and counted, because a sensor must
//!   never stall the target application (§2, "degree of intrusion").
//! * [`record::RecordRing`] / [`record::RingSet`] — typed wrappers that
//!   frame [`brisk_core::EventRecord`]s using the native binary encoding.
//!   A [`record::RingSet`] holds one SPSC ring per internal sensor, mirroring
//!   the paper's one-segment-per-instrumented-process layout; the EXS
//!   drains them all.

#![deny(missing_docs)]

pub mod record;
pub mod spsc;

pub use record::{RecordConsumer, RecordRing, RingSet, SensorPort};
pub use spsc::{ByteRing, RingConsumer, RingProducer, RingStats};
