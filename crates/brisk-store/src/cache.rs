//! Shared query-result cache.
//!
//! Dashboards refresh the same handful of queries on a timer; without a
//! cache, N identical viewers cost N decode-scans of the same segments.
//! The cache maps a *query fingerprint* — the predicate plus the exact
//! segment set (ids and byte lengths) it would scan — to the materialized
//! result. Appends, retention, and compaction all change the segment set
//! or a segment's length, so a stale entry simply stops being addressed;
//! entries need no explicit invalidation, just LRU-ish bounded space.

use crate::query::QueryReport;
use brisk_core::EventRecord;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on cached results.
pub const DEFAULT_CACHE_ENTRIES: usize = 32;

/// One cached query result.
#[derive(Debug)]
pub struct CachedQuery {
    /// The matching records, in store order.
    pub records: Vec<EventRecord>,
    /// The report of the scan that produced them (with `cache_hit`
    /// false; hits re-stamp it).
    pub report: QueryReport,
}

/// A bounded, thread-safe map from query fingerprint to result, shared
/// across any number of [`crate::StoreReader`]s over the same store.
#[derive(Debug)]
pub struct QueryCache {
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<u64, Arc<CachedQuery>>,
    /// Insertion order for eviction.
    order: VecDeque<u64>,
}

impl QueryCache {
    /// A cache bounded to `cap` results (at least 1).
    pub fn new(cap: usize) -> Arc<QueryCache> {
        Arc::new(QueryCache {
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        })
    }

    /// A cache with the default bound.
    pub fn with_default_capacity() -> Arc<QueryCache> {
        QueryCache::new(DEFAULT_CACHE_ENTRIES)
    }

    /// Look up a fingerprint.
    pub fn get(&self, key: u64) -> Option<Arc<CachedQuery>> {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let hit = inner.map.get(&key).cloned();
        drop(inner);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Insert a result, evicting the oldest entry past the bound.
    pub fn put(&self, key: u64, value: Arc<CachedQuery>) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.map.insert(key, value).is_none() {
            inner.order.push_back(key);
        }
        while inner.order.len() > self.cap {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .map
            .len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (hits, misses).
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drop every entry (tests; operators never need this — stale entries
    /// age out by fingerprint change + LRU).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Arc<CachedQuery> {
        Arc::new(CachedQuery {
            records: Vec::new(),
            report: QueryReport::default(),
        })
    }

    #[test]
    fn bounded_fifo_eviction() {
        let cache = QueryCache::new(2);
        cache.put(1, entry());
        cache.put(2, entry());
        cache.put(3, entry());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(1).is_none(), "oldest evicted");
        assert!(cache.get(2).is_some() && cache.get(3).is_some());
        let (hits, misses) = cache.hit_miss();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn reinsert_does_not_duplicate_order() {
        let cache = QueryCache::new(2);
        cache.put(1, entry());
        cache.put(1, entry());
        cache.put(2, entry());
        cache.put(3, entry());
        assert_eq!(cache.len(), 2);
    }
}
