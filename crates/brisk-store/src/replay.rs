//! Replay: feed a stored trace back through [`EventSink`]s.
//!
//! A stored trace is already globally sorted (it is the ISM's *output*), so
//! replay is a single pass. The driver reproduces the original inter-record
//! timing — or compresses it by a speed factor — so downstream consumers
//! (latency trackers, visual objects) observe the same temporal shape as
//! the live run. Gaps are capped so a trace with an hour of idle time does
//! not stall a replay for an hour.

use brisk_core::sink::EventSink;
use brisk_core::{EventRecord, Result};
use std::time::{Duration, Instant};

/// Longest single gap a paced replay will sleep through.
const MAX_GAP: Duration = Duration::from_secs(1);

/// Drives records through a sink at original or accelerated speed.
#[derive(Clone, Copy, Debug)]
pub struct Replayer {
    /// Time-compression factor: 1.0 = original pacing, 10.0 = ten times
    /// faster, `f64::INFINITY` (or anything non-finite / non-positive) =
    /// as fast as the sink accepts records.
    speed: f64,
}

impl Replayer {
    /// Replay at the trace's original pacing.
    pub fn original_speed() -> Replayer {
        Replayer { speed: 1.0 }
    }

    /// Replay as fast as the sink accepts records (no sleeping).
    pub fn flat_out() -> Replayer {
        Replayer {
            speed: f64::INFINITY,
        }
    }

    /// Replay with the given time-compression factor.
    pub fn at_speed(speed: f64) -> Replayer {
        Replayer { speed }
    }

    fn paced(&self) -> bool {
        self.speed.is_finite() && self.speed > 0.0
    }

    /// Push every record through `sink` (flushing it at the end) and report
    /// what was replayed.
    pub fn replay(&self, records: &[EventRecord], sink: &mut dyn EventSink) -> Result<ReplayStats> {
        let start = Instant::now();
        let mut prev_ts = None;
        // Pacing accumulates a *deadline* instead of sleeping per gap:
        // truncating each scaled gap to whole microseconds (or to a sleep
        // the OS rounds up anyway) would, at high speed factors, turn every
        // sub-microsecond gap into zero — a dense trace replayed at 16×
        // busy-spins through thousands of records and then lands at the
        // wrong overall pace. Summing gaps at nanosecond resolution and
        // sleeping toward `start + trace_elapsed` keeps the cumulative
        // error bounded regardless of speed or timestamp spacing.
        let mut trace_elapsed = Duration::ZERO;
        for rec in records {
            if let (true, Some(prev)) = (self.paced(), prev_ts) {
                let gap_us = rec.ts.micros_since(prev).max(0) as f64 / self.speed;
                let gap = Duration::from_nanos((gap_us * 1_000.0) as u64).min(MAX_GAP);
                trace_elapsed += gap;
                let deadline = start + trace_elapsed;
                let now = Instant::now();
                if deadline > now {
                    std::thread::sleep(deadline - now);
                }
            }
            prev_ts = Some(rec.ts);
            sink.on_record(rec)?;
        }
        sink.flush()?;
        let trace_span = match (records.first(), records.last()) {
            (Some(f), Some(l)) => Duration::from_micros(l.ts.micros_since(f.ts).max(0) as u64),
            _ => Duration::ZERO,
        };
        Ok(ReplayStats {
            records: records.len() as u64,
            wall: start.elapsed(),
            trace_span,
        })
    }
}

/// What a [`Replayer::replay`] run delivered.
#[derive(Clone, Copy, Debug)]
pub struct ReplayStats {
    /// Records pushed through the sink.
    pub records: u64,
    /// Wall-clock duration of the replay.
    pub wall: Duration,
    /// Timestamp span of the trace itself.
    pub trace_span: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, UtcMicros, Value};

    fn rec(seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::U64(seq)],
        )
        .unwrap()
    }

    #[test]
    fn flat_out_delivers_everything_in_order() {
        let records: Vec<_> = (0..100).map(|i| rec(i, i as i64 * 1000)).collect();
        let mut seen = Vec::new();
        let mut sink = |r: &EventRecord| -> Result<()> {
            seen.push(r.seq);
            Ok(())
        };
        let stats = Replayer::flat_out().replay(&records, &mut sink).unwrap();
        assert_eq!(stats.records, 100);
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert_eq!(stats.trace_span, Duration::from_micros(99_000));
    }

    #[test]
    fn paced_replay_takes_roughly_trace_time() {
        // 20 records, 2 ms apart → ~38 ms at original speed, ~3.8 ms at 10×.
        let records: Vec<_> = (0..20).map(|i| rec(i, i as i64 * 2_000)).collect();
        let mut count = 0u64;
        let mut sink = |_r: &EventRecord| -> Result<()> {
            count += 1;
            Ok(())
        };
        let stats = Replayer::at_speed(10.0)
            .replay(&records, &mut sink)
            .unwrap();
        assert_eq!(count, 20);
        assert!(
            stats.wall >= Duration::from_millis(3),
            "10x replay of a 38 ms trace must take at least ~3.8 ms, took {:?}",
            stats.wall
        );
        assert!(
            stats.wall < Duration::from_millis(500),
            "10x replay must be much faster than the original, took {:?}",
            stats.wall
        );
    }

    #[test]
    fn accelerated_replay_of_dense_trace_keeps_pace() {
        // 3000 records 10 µs apart: a 30 ms trace, ~1.9 ms at 16×. Each
        // scaled gap is 0.625 µs — per-gap truncation to whole microseconds
        // sleeps zero for every record and replays the whole trace flat
        // out; deadline accumulation must preserve the overall pace.
        let records: Vec<_> = (0..3000).map(|i| rec(i, i as i64 * 10)).collect();
        let mut sink = |_r: &EventRecord| -> Result<()> { Ok(()) };
        let stats = Replayer::at_speed(16.0)
            .replay(&records, &mut sink)
            .unwrap();
        assert!(
            stats.wall >= Duration::from_micros(1_500),
            "16x replay of a 30 ms trace must take at least ~1.9 ms, took {:?}",
            stats.wall
        );
        assert!(
            stats.wall < Duration::from_millis(500),
            "16x replay must stay accelerated, took {:?}",
            stats.wall
        );
    }

    #[test]
    fn duplicate_timestamp_burst_does_not_stall() {
        // 50k records sharing one timestamp: zero gaps end to end. A paced
        // replay must pass the burst straight through without sleeping or
        // spinning per record.
        let records: Vec<_> = (0..50_000).map(|i| rec(i, 42)).collect();
        let mut count = 0u64;
        let mut sink = |_r: &EventRecord| -> Result<()> {
            count += 1;
            Ok(())
        };
        let start = Instant::now();
        Replayer::original_speed()
            .replay(&records, &mut sink)
            .unwrap();
        assert_eq!(count, 50_000);
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn giant_gaps_are_capped() {
        let records = vec![rec(0, 0), rec(1, 3_600_000_000)]; // one hour apart
        let mut sink = |_r: &EventRecord| -> Result<()> { Ok(()) };
        let start = Instant::now();
        Replayer::original_speed()
            .replay(&records, &mut sink)
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
