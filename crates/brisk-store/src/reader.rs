//! Reading a store back: segment scanning, CRC validation, torn-tail
//! recovery, timestamp seek and live tailing.
//!
//! The scan is deliberately forgiving: a record whose CRC does not match is
//! *reported and skipped* (the length prefix lets the scan resynchronize on
//! the next frame), while a frame that is structurally incomplete — fewer
//! bytes on disk than its length word promises, or a length word that is
//! itself implausible — marks the *torn tail* left by a crash: everything
//! from there to the end of the segment is unrecoverable and is truncated
//! away. Every intact record before the tear is recovered.

use crate::crc::crc32;
use crate::segment::{
    index_path, parse_segment_file_name, segment_path, IndexEntry, SegmentHeader, SegmentIndex,
    FRAME_OVERHEAD, MAX_FRAME_BYTES,
};
use brisk_core::{binenc, BriskError, EventRecord, Result, UtcMicros};
use std::fs;
use std::path::{Path, PathBuf};

/// What recovery found while reading a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments visited.
    pub segments: u32,
    /// Intact records recovered.
    pub records: u64,
    /// Torn tails found (at most one per segment): frames cut short by a
    /// crash and truncated away.
    pub torn_tail_truncations: u32,
    /// Bytes discarded as torn tails.
    pub torn_bytes: u64,
    /// Structurally complete frames whose CRC or decode failed; the scan
    /// skipped them and resynchronized on the next frame.
    pub corrupt_frames: u64,
}

impl RecoveryReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.segments += other.segments;
        self.records += other.records;
        self.torn_tail_truncations += other.torn_tail_truncations;
        self.torn_bytes += other.torn_bytes;
        self.corrupt_frames += other.corrupt_frames;
    }
}

/// One record recovered from a segment, with its frame's file offset.
#[derive(Clone, Debug)]
pub struct ScannedRecord {
    /// Byte offset of the record's frame within the segment file.
    pub offset: u64,
    /// The decoded record.
    pub rec: EventRecord,
}

/// Full scan result of one segment's bytes.
#[derive(Debug)]
pub(crate) struct SegmentScan {
    /// The decoded header.
    pub header: SegmentHeader,
    /// Every intact record, in file order.
    pub records: Vec<ScannedRecord>,
    /// Offset just past the last structurally complete frame; bytes beyond
    /// this are a torn tail.
    pub structural_end: u64,
    /// Torn bytes past `structural_end` (0 when the segment ends cleanly).
    pub torn_bytes: u64,
    /// Complete frames with CRC/decode failures, skipped over.
    pub corrupt_frames: u64,
}

/// Scan a whole segment image starting at `start` (pass the header end to
/// resume mid-file; pass 0 to decode the header too — the returned header
/// is always decoded from the front of `bytes`).
pub(crate) fn scan_segment(bytes: &[u8], start: u64) -> Result<SegmentScan> {
    let (header, header_end) = SegmentHeader::decode(bytes)?;
    let mut off = if start == 0 {
        header_end
    } else {
        start as usize
    };
    let mut records = Vec::new();
    let mut corrupt_frames = 0u64;
    let mut structural_end = off as u64;
    loop {
        let remaining = bytes.len() - off;
        if remaining == 0 {
            break;
        }
        if remaining < FRAME_OVERHEAD {
            // A frame header cut short by the crash.
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_BYTES || (len as usize) > remaining - FRAME_OVERHEAD {
            // Either a torn tail (length word promises more bytes than the
            // file holds) or corruption of the length word itself; in both
            // cases the frame stream is unrecoverable from here on.
            break;
        }
        let payload = &bytes[off + FRAME_OVERHEAD..off + FRAME_OVERHEAD + len as usize];
        let frame_off = off as u64;
        off += FRAME_OVERHEAD + len as usize;
        structural_end = off as u64;
        if crc32(payload) != crc {
            corrupt_frames += 1;
            continue;
        }
        match binenc::decode_record(payload) {
            Ok((rec, used)) if used == payload.len() => records.push(ScannedRecord {
                offset: frame_off,
                rec,
            }),
            _ => corrupt_frames += 1,
        }
    }
    Ok(SegmentScan {
        header,
        records,
        torn_bytes: bytes.len() as u64 - structural_end,
        structural_end,
        corrupt_frames,
    })
}

/// Build the sparse index of a scanned segment (used when sealing and when
/// repairing a crashed store).
pub(crate) fn index_of_scan(scan: &SegmentScan, index_every: u32) -> SegmentIndex {
    let mut min_ts = UtcMicros::MAX;
    let mut max_ts = UtcMicros::from_micros(i64::MIN);
    let mut entries = Vec::new();
    for (i, sr) in scan.records.iter().enumerate() {
        min_ts = min_ts.min(sr.rec.ts);
        max_ts = max_ts.max(sr.rec.ts);
        if (i as u32).is_multiple_of(index_every.max(1)) {
            entries.push(IndexEntry {
                ordinal: i as u64,
                offset: sr.offset,
                ts: sr.rec.ts,
            });
        }
    }
    if scan.records.is_empty() {
        min_ts = scan.header.base_ts;
        max_ts = scan.header.base_ts;
    }
    SegmentIndex {
        segment_id: scan.header.segment_id,
        record_count: scan.records.len() as u64,
        min_ts,
        max_ts,
        entries,
    }
}

/// List the segment ids present under `dir`, ascending.
pub(crate) fn list_segment_ids(dir: &Path) -> Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(id) = parse_segment_file_name(name) {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Read-side handle on a store directory.
///
/// A `StoreReader` never writes: torn tails are *reported* (and their
/// records excluded) but the files are left untouched — repairing the
/// store on disk is the writer's job when it reopens the directory.
pub struct StoreReader {
    dir: PathBuf,
}

impl StoreReader {
    /// Open a store directory for reading.
    pub fn open(dir: impl Into<PathBuf>) -> Result<StoreReader> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(BriskError::Config(format!(
                "store directory {} does not exist",
                dir.display()
            )));
        }
        Ok(StoreReader { dir })
    }

    /// The directory this reader scans.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segment ids currently present, ascending.
    pub fn segment_ids(&self) -> Result<Vec<u64>> {
        list_segment_ids(&self.dir)
    }

    /// Load the sidecar index of a segment, if present and intact.
    pub fn load_index(&self, id: u64) -> Option<SegmentIndex> {
        let bytes = fs::read(index_path(&self.dir, id)).ok()?;
        SegmentIndex::decode(&bytes)
            .ok()
            .filter(|i| i.segment_id == id)
    }

    /// Read every intact record in the store, oldest segment first.
    pub fn read_all(&self) -> Result<(Vec<EventRecord>, RecoveryReport)> {
        self.read_filtered(None)
    }

    /// Read every intact record with `ts >= from`, using sidecar indexes to
    /// skip sealed segments (and the prefix of the first relevant segment)
    /// entirely below the bound. The indexed skip assumes the store holds
    /// the ISM's output — records in timestamp order; on an unsorted store
    /// the result still only contains records at or above the bound, but
    /// out-of-order records hiding below an index entry may be skipped.
    pub fn read_from(&self, from: UtcMicros) -> Result<(Vec<EventRecord>, RecoveryReport)> {
        self.read_filtered(Some(from))
    }

    fn read_filtered(&self, from: Option<UtcMicros>) -> Result<(Vec<EventRecord>, RecoveryReport)> {
        let mut out = Vec::new();
        let mut report = RecoveryReport::default();
        for id in self.segment_ids()? {
            let idx = from.and_then(|_| self.load_index(id));
            if let (Some(idx), Some(from)) = (&idx, from) {
                if idx.max_ts < from {
                    continue; // wholly below the bound; indexed skip
                }
            }
            let bytes = fs::read(segment_path(&self.dir, id))?;
            // Resume from the last index entry *strictly* below the bound.
            // An entry exactly at the bound is no good as a start point: in
            // a sorted segment records with the same timestamp may precede
            // the indexed one, and starting there would skip them even
            // though they satisfy `ts >= from`.
            let start = match (idx.as_ref(), from) {
                (Some(i), Some(from)) => i
                    .entries
                    .iter()
                    .rev()
                    .find(|e| e.ts < from)
                    .map(|e| e.offset)
                    .unwrap_or(0),
                _ => 0,
            };
            let scan = match scan_segment(&bytes, start) {
                Ok(s) => s,
                Err(_) if !out.is_empty() || report.segments > 0 => {
                    // An unreadable header mid-store: count the whole file
                    // as torn and keep whatever earlier segments held.
                    report.segments += 1;
                    report.torn_tail_truncations += 1;
                    report.torn_bytes += bytes.len() as u64;
                    continue;
                }
                Err(e) => return Err(e),
            };
            report.segments += 1;
            report.corrupt_frames += scan.corrupt_frames;
            if scan.torn_bytes > 0 {
                report.torn_tail_truncations += 1;
                report.torn_bytes += scan.torn_bytes;
            }
            for sr in scan.records {
                if from.is_none_or(|from| sr.rec.ts >= from) {
                    report.records += 1;
                    out.push(sr.rec);
                }
            }
        }
        Ok((out, report))
    }

    /// A cursor that follows the store as the writer appends: repeated
    /// [`StoreTailer::poll`] calls return newly durable records, crossing
    /// segment rotations automatically.
    pub fn tail(&self) -> StoreTailer {
        StoreTailer {
            dir: self.dir.clone(),
            current: None,
            corrupt_frames: 0,
        }
    }
}

/// Live-tail cursor over a store directory (see [`StoreReader::tail`]).
pub struct StoreTailer {
    dir: PathBuf,
    /// `(segment id, next byte offset)`; `None` before the first segment
    /// is found.
    current: Option<(u64, u64)>,
    corrupt_frames: u64,
}

impl StoreTailer {
    /// Frames skipped over CRC/decode failures so far.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames
    }

    /// Return all records that became visible since the last poll. An empty
    /// result means no complete frame is available right now; the caller
    /// decides how to pace retries.
    ///
    /// A frame that is only partially on disk is *not* an error while the
    /// segment is still the newest one — the writer may simply be mid-append
    /// — but once a newer segment exists the partial frame is abandoned as
    /// a torn tail and the cursor moves on.
    pub fn poll(&mut self) -> Result<Vec<EventRecord>> {
        let mut out = Vec::new();
        loop {
            let ids = list_segment_ids(&self.dir)?;
            let Some(&first) = ids.first() else {
                return Ok(out); // store is still empty
            };
            let (id, mut off) = match self.current {
                Some(cur) => cur,
                None => (first, 0),
            };
            let path = segment_path(&self.dir, id);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                // Evicted by retention while we were behind: skip forward.
                Err(_) => match ids.iter().find(|&&i| i > id) {
                    Some(&next) => {
                        self.current = Some((next, 0));
                        continue;
                    }
                    None => return Ok(out),
                },
            };
            if off == 0 {
                match SegmentHeader::decode(&bytes) {
                    Ok((_, end)) => off = end as u64,
                    // Header not fully written yet.
                    Err(_) => return Ok(out),
                }
            }
            let scan = scan_segment(&bytes, off)?;
            self.corrupt_frames += scan.corrupt_frames;
            out.extend(scan.records.into_iter().map(|sr| sr.rec));
            self.current = Some((id, scan.structural_end));
            match ids.iter().find(|&&i| i > id) {
                // Current segment is sealed: any partial tail is torn for
                // good, move to the next segment and keep polling.
                Some(&next) => {
                    self.current = Some((next, 0));
                }
                None => return Ok(out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::append_frame;
    use brisk_core::{EventTypeId, NodeId, SensorId, Value};

    fn rec(seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::U64(seq)],
        )
        .unwrap()
    }

    fn segment_image(id: u64, recs: &[EventRecord]) -> Vec<u8> {
        let header = SegmentHeader {
            version: crate::segment::FORMAT_VERSION,
            segment_id: id,
            base_ts: recs.first().map(|r| r.ts).unwrap_or(UtcMicros::ZERO),
            nodes: vec![1],
        };
        let mut bytes = header.encode();
        let mut payload = Vec::new();
        for r in recs {
            payload.clear();
            binenc::encode_record(r, &mut payload);
            append_frame(&payload, &mut bytes);
        }
        bytes
    }

    #[test]
    fn scan_recovers_all_records() {
        let recs: Vec<_> = (0..50).map(|i| rec(i, i as i64 * 10)).collect();
        let bytes = segment_image(3, &recs);
        let scan = scan_segment(&bytes, 0).unwrap();
        assert_eq!(scan.records.len(), 50);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.corrupt_frames, 0);
        assert_eq!(scan.structural_end, bytes.len() as u64);
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let recs: Vec<_> = (0..10).map(|i| rec(i, i as i64)).collect();
        let mut bytes = segment_image(0, &recs);
        // Tear the last frame: drop its final 5 bytes.
        let full = bytes.len();
        bytes.truncate(full - 5);
        let scan = scan_segment(&bytes, 0).unwrap();
        assert_eq!(scan.records.len(), 9, "all records before the tear");
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn corrupt_frame_is_skipped_rest_recovered() {
        let recs: Vec<_> = (0..10).map(|i| rec(i, i as i64)).collect();
        let mut bytes = segment_image(0, &recs);
        // Flip a byte inside record 4's payload (offsets via a clean scan).
        let clean = scan_segment(&bytes, 0).unwrap();
        let target = clean.records[4].offset as usize + FRAME_OVERHEAD + 3;
        bytes[target] ^= 0xFF;
        let scan = scan_segment(&bytes, 0).unwrap();
        assert_eq!(scan.corrupt_frames, 1);
        assert_eq!(scan.records.len(), 9);
        let seqs: Vec<u64> = scan.records.iter().map(|s| s.rec.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
    }

    /// Write a store directory containing `segments`, each with a sidecar
    /// index built at `index_every`, so `read_from` exercises the sparse
    /// probe exactly as it would against a sealed, indexed store.
    fn write_indexed_store(segments: &[(u64, Vec<EventRecord>)], index_every: u32) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "brisk-reader-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        for (id, recs) in segments {
            let bytes = segment_image(*id, recs);
            fs::write(segment_path(&dir, *id), &bytes).unwrap();
            let scan = scan_segment(&bytes, 0).unwrap();
            let idx = index_of_scan(&scan, index_every);
            fs::write(index_path(&dir, *id), idx.encode()).unwrap();
        }
        dir
    }

    #[test]
    fn seek_exact_boundary_keeps_equal_timestamps_before_index_entry() {
        // Duplicate timestamps straddle the index entry at ordinal 4: the
        // records at ordinals 2 and 3 share ts=100 with the indexed record.
        // A probe that starts *at* an entry whose ts equals the bound skips
        // them even though they satisfy `ts >= from`.
        let ts = [50i64, 50, 100, 100, 100, 100, 200, 200];
        let recs: Vec<_> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| rec(i as u64, t))
            .collect();
        let dir = write_indexed_store(&[(0, recs)], 4);
        let reader = StoreReader::open(&dir).unwrap();
        let (got, _) = reader.read_from(UtcMicros::from_micros(100)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(
            seqs,
            vec![2, 3, 4, 5, 6, 7],
            "equal-ts records before the index entry must not be skipped"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seek_before_first_record_returns_everything_once() {
        let recs: Vec<_> = (0..10).map(|i| rec(i, 1000 + i as i64)).collect();
        let dir = write_indexed_store(&[(0, recs)], 4);
        let reader = StoreReader::open(&dir).unwrap();
        // Bound below the whole segment: no index entry qualifies as a
        // start point, the scan must begin at the segment head.
        let (got, _) = reader.read_from(UtcMicros::from_micros(5)).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].seq, 0);
        // Bound exactly at the first record's timestamp (the segment
        // base_ts): everything still comes back, exactly once.
        let (got, _) = reader.read_from(UtcMicros::from_micros(1000)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seek_between_segments_skips_older_and_replays_nothing() {
        let seg0: Vec<_> = (0..6).map(|i| rec(i, 10 + i as i64)).collect();
        let seg1: Vec<_> = (10..16).map(|i| rec(i, 100 + i as i64)).collect();
        let dir = write_indexed_store(&[(0, seg0), (1, seg1)], 4);
        let reader = StoreReader::open(&dir).unwrap();
        // Bound between the segments: segment 0 is wholly below it and must
        // be skipped via its index; segment 1 must come back in full.
        let (got, report) = reader.read_from(UtcMicros::from_micros(50)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (10..16).collect::<Vec<u64>>());
        assert_eq!(
            report.segments, 1,
            "segment below the bound skipped without scanning"
        );
        // Bound exactly at segment 1's base_ts: same answer.
        let (got, _) = reader.read_from(UtcMicros::from_micros(110)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (10..16).collect::<Vec<u64>>());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_of_scan_covers_range() {
        let recs: Vec<_> = (0..130).map(|i| rec(i, 1000 + i as i64)).collect();
        let bytes = segment_image(7, &recs);
        let scan = scan_segment(&bytes, 0).unwrap();
        let idx = index_of_scan(&scan, 64);
        assert_eq!(idx.record_count, 130);
        assert_eq!(idx.min_ts, UtcMicros::from_micros(1000));
        assert_eq!(idx.max_ts, UtcMicros::from_micros(1129));
        assert_eq!(idx.entries.len(), 3); // ordinals 0, 64, 128
        assert_eq!(idx.entries[1].ordinal, 64);
    }
}
