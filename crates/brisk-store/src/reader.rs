//! Reading a store back: segment scanning, CRC validation, torn-tail
//! recovery, timestamp seek and live tailing.
//!
//! The scan is deliberately forgiving: a record whose CRC does not match is
//! *reported and skipped* (the length prefix lets the scan resynchronize on
//! the next frame), while a frame that is structurally incomplete — fewer
//! bytes on disk than its length word promises, or a length word that is
//! itself implausible — marks the *torn tail* left by a crash: everything
//! from there to the end of the segment is unrecoverable and is truncated
//! away. Every intact record before the tear is recovered.

use crate::crc::crc32;
use crate::segment::{
    decode_any_header, index_path, parse_segment_file_name, segment_path, IndexEntry, SegmentBody,
    SegmentHeader, SegmentIndex, SensorBloom, ZoneMap, FRAME_OVERHEAD, MAX_FRAME_BYTES,
};
use brisk_core::{binenc, BriskError, EventRecord, Result, UtcMicros};
use brisk_telemetry::Registry;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What recovery found while reading a store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segments visited.
    pub segments: u32,
    /// Intact records recovered.
    pub records: u64,
    /// Torn tails found (at most one per segment): frames cut short by a
    /// crash and truncated away.
    pub torn_tail_truncations: u32,
    /// Bytes discarded as torn tails.
    pub torn_bytes: u64,
    /// Structurally complete frames whose CRC or decode failed; the scan
    /// skipped them and resynchronized on the next frame.
    pub corrupt_frames: u64,
    /// Segments that vanished mid-scan (unlinked by retention between the
    /// directory listing and the read); their records were already gone,
    /// the scan skipped them.
    pub evicted_under_scan: u32,
}

impl RecoveryReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, other: &RecoveryReport) {
        self.segments += other.segments;
        self.records += other.records;
        self.torn_tail_truncations += other.torn_tail_truncations;
        self.torn_bytes += other.torn_bytes;
        self.corrupt_frames += other.corrupt_frames;
        self.evicted_under_scan += other.evicted_under_scan;
    }
}

/// Lock-free counters shared by one reader's scans, exportable through
/// [`StoreReader::bind_telemetry`].
#[derive(Debug, Default)]
pub struct ReaderStats {
    /// Segments that vanished mid-scan (retention eviction) and were
    /// skipped instead of surfacing an io error.
    pub evicted_under_scan: AtomicU64,
    /// Sidecar indexes ignored because their seal stamp disagreed with
    /// the segment bytes on disk.
    pub stale_indexes: AtomicU64,
    /// Segments skipped entirely by zone-map/time-range pruning during
    /// queries.
    pub segments_pruned: AtomicU64,
    /// Segments decode-scanned for queries.
    pub segments_scanned: AtomicU64,
    /// Queries answered from the shared result cache.
    pub cache_hits: AtomicU64,
    /// Queries that had to scan (cache miss or no cache attached).
    pub cache_misses: AtomicU64,
}

/// One record recovered from a segment, with its frame's file offset.
#[derive(Clone, Debug)]
pub struct ScannedRecord {
    /// Byte offset of the record's frame within the segment file.
    pub offset: u64,
    /// The decoded record.
    pub rec: EventRecord,
}

/// Full scan result of one segment's bytes.
#[derive(Debug)]
pub(crate) struct SegmentScan {
    /// The decoded header.
    pub header: SegmentHeader,
    /// Every intact record, in file order. For compacted segments every
    /// record of a block carries the block frame's offset.
    pub records: Vec<ScannedRecord>,
    /// Offset just past the last structurally complete frame; bytes beyond
    /// this are a torn tail.
    pub structural_end: u64,
    /// Torn bytes past `structural_end` (0 when the segment ends cleanly).
    pub torn_bytes: u64,
    /// Complete frames with CRC/decode failures, skipped over.
    pub corrupt_frames: u64,
    /// Offset and stored CRC word of the last structurally complete frame
    /// seen, if any (feeds the sidecar's seal stamp).
    pub last_frame: Option<(u64, u32)>,
}

/// Scan a whole segment image starting at `start` (pass the header end to
/// resume mid-file; pass 0 to decode the header too — the returned header
/// is always decoded from the front of `bytes`). Dispatches on the format
/// version: plain segments decode one binenc record per frame, compacted
/// segments one delta block per frame.
pub(crate) fn scan_segment(bytes: &[u8], start: u64) -> Result<SegmentScan> {
    let (header, body, header_end) = decode_any_header(bytes)?;
    let mut off = if start == 0 {
        header_end
    } else {
        start as usize
    };
    if off > bytes.len() {
        // A resume offset past EOF can only come from an index that does
        // not describe these bytes (stale sidecar): nothing to scan there.
        return Err(BriskError::Codec(format!(
            "scan offset {off} past segment end {}",
            bytes.len()
        )));
    }
    let mut records = Vec::new();
    let mut corrupt_frames = 0u64;
    let mut structural_end = off as u64;
    let mut last_frame = None;
    loop {
        let remaining = bytes.len() - off;
        if remaining == 0 {
            break;
        }
        if remaining < FRAME_OVERHEAD {
            // A frame header cut short by the crash.
            break;
        }
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_BYTES || (len as usize) > remaining - FRAME_OVERHEAD {
            // Either a torn tail (length word promises more bytes than the
            // file holds) or corruption of the length word itself; in both
            // cases the frame stream is unrecoverable from here on.
            break;
        }
        let payload = &bytes[off + FRAME_OVERHEAD..off + FRAME_OVERHEAD + len as usize];
        let frame_off = off as u64;
        off += FRAME_OVERHEAD + len as usize;
        structural_end = off as u64;
        last_frame = Some((frame_off, crc));
        if crc32(payload) != crc {
            corrupt_frames += 1;
            continue;
        }
        match &body {
            SegmentBody::Plain => match binenc::decode_record(payload) {
                Ok((rec, used)) if used == payload.len() => records.push(ScannedRecord {
                    offset: frame_off,
                    rec,
                }),
                _ => corrupt_frames += 1,
            },
            SegmentBody::Compact(dict) => match crate::compact::decode_block(payload, dict) {
                Ok(recs) => records.extend(recs.into_iter().map(|rec| ScannedRecord {
                    offset: frame_off,
                    rec,
                })),
                Err(_) => corrupt_frames += 1,
            },
        }
    }
    Ok(SegmentScan {
        header,
        records,
        torn_bytes: bytes.len() as u64 - structural_end,
        structural_end,
        corrupt_frames,
        last_frame,
    })
}

/// Build the zoned sparse index of a scanned segment (used when sealing,
/// when repairing a crashed store, and after compaction). `seg_len` is
/// the segment file's byte length the sidecar will describe — the seal
/// stamp that later lets readers detect a sidecar gone stale.
pub(crate) fn index_of_scan(scan: &SegmentScan, index_every: u32, seg_len: u64) -> SegmentIndex {
    let mut min_ts = UtcMicros::MAX;
    let mut max_ts = UtcMicros::from_micros(i64::MIN);
    let mut entries = Vec::new();
    let mut nodes = std::collections::BTreeSet::new();
    let mut sensors = SensorBloom::new();
    for (i, sr) in scan.records.iter().enumerate() {
        min_ts = min_ts.min(sr.rec.ts);
        max_ts = max_ts.max(sr.rec.ts);
        nodes.insert(sr.rec.node.0);
        sensors.insert(sr.rec.sensor.0);
        if (i as u32).is_multiple_of(index_every.max(1)) {
            entries.push(IndexEntry {
                ordinal: i as u64,
                offset: sr.offset,
                ts: sr.rec.ts,
            });
        }
    }
    if scan.records.is_empty() {
        min_ts = scan.header.base_ts;
        max_ts = scan.header.base_ts;
    }
    let (last_frame_offset, tail_crc) = scan.last_frame.unwrap_or((0, 0));
    SegmentIndex {
        segment_id: scan.header.segment_id,
        record_count: scan.records.len() as u64,
        min_ts,
        max_ts,
        entries,
        zone: Some(ZoneMap {
            nodes: nodes.into_iter().collect(),
            sensors,
            seg_len,
            last_frame_offset,
            tail_crc,
        }),
    }
}

/// List the segment ids present under `dir`, ascending.
pub(crate) fn list_segment_ids(dir: &Path) -> Result<Vec<u64>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(id) = parse_segment_file_name(name) {
                ids.push(id);
            }
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

/// Read-side handle on a store directory.
///
/// A `StoreReader` never writes: torn tails are *reported* (and their
/// records excluded) but the files are left untouched — repairing the
/// store on disk is the writer's job when it reopens the directory.
pub struct StoreReader {
    pub(crate) dir: PathBuf,
    pub(crate) stats: Arc<ReaderStats>,
    pub(crate) cache: Option<Arc<crate::cache::QueryCache>>,
    /// Query scan latency, when telemetry is bound.
    pub(crate) scan_micros: Option<Arc<brisk_telemetry::Histogram>>,
}

impl StoreReader {
    /// Open a store directory for reading.
    pub fn open(dir: impl Into<PathBuf>) -> Result<StoreReader> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(BriskError::Config(format!(
                "store directory {} does not exist",
                dir.display()
            )));
        }
        Ok(StoreReader {
            dir,
            stats: Arc::new(ReaderStats::default()),
            cache: None,
            scan_micros: None,
        })
    }

    /// Attach a shared query-result cache (see [`crate::QueryCache`]):
    /// identical queries over an unchanged segment set are answered
    /// without a scan. Multiple readers may share one cache.
    pub fn with_cache(mut self, cache: Arc<crate::cache::QueryCache>) -> StoreReader {
        self.cache = Some(cache);
        self
    }

    /// The directory this reader scans.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This reader's scan counters.
    pub fn stats(&self) -> Arc<ReaderStats> {
        Arc::clone(&self.stats)
    }

    /// Register the reader's counters and the query scan-latency
    /// histogram on `registry`.
    pub fn bind_telemetry(&mut self, registry: &Registry) {
        macro_rules! counter {
            ($name:literal, $help:literal, $field:ident) => {{
                let stats = Arc::clone(&self.stats);
                registry.counter_fn($name, $help, &[], move || {
                    stats.$field.load(Ordering::Relaxed)
                });
            }};
        }
        counter!(
            "brisk_store_reader_evicted_under_scan_total",
            "Segments unlinked by retention mid-scan, skipped by readers",
            evicted_under_scan
        );
        counter!(
            "brisk_store_reader_stale_indexes_total",
            "Sidecar indexes ignored because their seal stamp mismatched",
            stale_indexes
        );
        counter!(
            "brisk_store_segments_pruned_total",
            "Segments skipped entirely by zone-map/time-range pruning",
            segments_pruned
        );
        counter!(
            "brisk_store_segments_scanned_total",
            "Segments decode-scanned to answer queries",
            segments_scanned
        );
        counter!(
            "brisk_store_query_cache_hits_total",
            "Queries answered from the shared result cache",
            cache_hits
        );
        counter!(
            "brisk_store_query_cache_misses_total",
            "Queries that had to scan segments",
            cache_misses
        );
        self.scan_micros = Some(registry.histogram(
            "brisk_store_query_scan_micros",
            "Wall time spent scanning segments per query (µs)",
        ));
    }

    /// Segment ids currently present, ascending.
    pub fn segment_ids(&self) -> Result<Vec<u64>> {
        list_segment_ids(&self.dir)
    }

    /// Load the sidecar index of a segment, if present and intact.
    pub fn load_index(&self, id: u64) -> Option<SegmentIndex> {
        let bytes = fs::read(index_path(&self.dir, id)).ok()?;
        SegmentIndex::decode(&bytes)
            .ok()
            .filter(|i| i.segment_id == id)
    }

    /// Read every intact record in the store, oldest segment first.
    pub fn read_all(&self) -> Result<(Vec<EventRecord>, RecoveryReport)> {
        self.read_filtered(None)
    }

    /// Read every intact record with `ts >= from`, using sidecar indexes to
    /// skip sealed segments (and the prefix of the first relevant segment)
    /// entirely below the bound. The indexed skip assumes the store holds
    /// the ISM's output — records in timestamp order; on an unsorted store
    /// the result still only contains records at or above the bound, but
    /// out-of-order records hiding below an index entry may be skipped.
    pub fn read_from(&self, from: UtcMicros) -> Result<(Vec<EventRecord>, RecoveryReport)> {
        self.read_filtered(Some(from))
    }

    fn read_filtered(&self, from: Option<UtcMicros>) -> Result<(Vec<EventRecord>, RecoveryReport)> {
        let mut out = Vec::new();
        let mut report = RecoveryReport::default();
        for id in self.segment_ids()? {
            let idx = from.and_then(|_| self.load_index(id));
            if let (Some(idx), Some(from)) = (&idx, from) {
                if idx.max_ts < from {
                    continue; // wholly below the bound; indexed skip
                }
            }
            // Retention may unlink a sealed segment between the directory
            // listing above and this read: that is not an error, those
            // records were evicted — skip and count.
            let bytes = match fs::read(segment_path(&self.dir, id)) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    report.evicted_under_scan += 1;
                    self.stats
                        .evicted_under_scan
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            // Resume from the last index entry *strictly* below the bound.
            // An entry exactly at the bound is no good as a start point: in
            // a sorted segment records with the same timestamp may precede
            // the indexed one, and starting there would skip them even
            // though they satisfy `ts >= from`.
            let mut start = match (idx.as_ref(), from) {
                (Some(i), Some(from)) => i
                    .entries
                    .iter()
                    .rev()
                    .find(|e| e.ts < from)
                    .map(|e| e.offset)
                    .unwrap_or(0),
                _ => 0,
            };
            // Never trust a resume offset from a sidecar that demonstrably
            // does not describe these bytes (stale after a crash in the
            // seal window, or a compaction swap between the sidecar load
            // and the segment read): fall back to a full scan.
            if start != 0 && !crate::segment::frame_checks_out(&bytes, start, None) {
                self.stats.stale_indexes.fetch_add(1, Ordering::Relaxed);
                start = 0;
            }
            let scan = match scan_segment(&bytes, start) {
                Ok(s) => s,
                Err(_) if !out.is_empty() || report.segments > 0 => {
                    // An unreadable header mid-store: count the whole file
                    // as torn and keep whatever earlier segments held.
                    report.segments += 1;
                    report.torn_tail_truncations += 1;
                    report.torn_bytes += bytes.len() as u64;
                    continue;
                }
                Err(e) => return Err(e),
            };
            report.segments += 1;
            report.corrupt_frames += scan.corrupt_frames;
            if scan.torn_bytes > 0 {
                report.torn_tail_truncations += 1;
                report.torn_bytes += scan.torn_bytes;
            }
            for sr in scan.records {
                if from.is_none_or(|from| sr.rec.ts >= from) {
                    report.records += 1;
                    out.push(sr.rec);
                }
            }
        }
        Ok((out, report))
    }

    /// A cursor that follows the store as the writer appends: repeated
    /// [`StoreTailer::poll`] calls return newly durable records, crossing
    /// segment rotations automatically.
    pub fn tail(&self) -> StoreTailer {
        StoreTailer {
            dir: self.dir.clone(),
            current: None,
            corrupt_frames: 0,
        }
    }
}

/// Live-tail cursor over a store directory (see [`StoreReader::tail`]).
pub struct StoreTailer {
    dir: PathBuf,
    /// `(segment id, next byte offset)`; `None` before the first segment
    /// is found.
    current: Option<(u64, u64)>,
    corrupt_frames: u64,
}

impl StoreTailer {
    /// Frames skipped over CRC/decode failures so far.
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames
    }

    /// Return all records that became visible since the last poll. An empty
    /// result means no complete frame is available right now; the caller
    /// decides how to pace retries.
    ///
    /// A frame that is only partially on disk is *not* an error while the
    /// segment is still the newest one — the writer may simply be mid-append
    /// — but once a newer segment exists the partial frame is abandoned as
    /// a torn tail and the cursor moves on.
    pub fn poll(&mut self) -> Result<Vec<EventRecord>> {
        let mut out = Vec::new();
        loop {
            let ids = list_segment_ids(&self.dir)?;
            let Some(&first) = ids.first() else {
                return Ok(out); // store is still empty
            };
            let (id, mut off) = match self.current {
                Some(cur) => cur,
                None => (first, 0),
            };
            let path = segment_path(&self.dir, id);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                // Evicted by retention while we were behind: skip forward.
                Err(_) => match ids.iter().find(|&&i| i > id) {
                    Some(&next) => {
                        self.current = Some((next, 0));
                        continue;
                    }
                    None => return Ok(out),
                },
            };
            if off == 0 {
                match SegmentHeader::decode(&bytes) {
                    Ok((_, end)) => off = end as u64,
                    // Header not fully written yet.
                    Err(_) => return Ok(out),
                }
            }
            let scan = scan_segment(&bytes, off)?;
            self.corrupt_frames += scan.corrupt_frames;
            out.extend(scan.records.into_iter().map(|sr| sr.rec));
            self.current = Some((id, scan.structural_end));
            match ids.iter().find(|&&i| i > id) {
                // Current segment is sealed: any partial tail is torn for
                // good, move to the next segment and keep polling.
                Some(&next) => {
                    self.current = Some((next, 0));
                }
                None => return Ok(out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::append_frame;
    use brisk_core::{EventTypeId, NodeId, SensorId, Value};

    fn rec(seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::U64(seq)],
        )
        .unwrap()
    }

    fn segment_image(id: u64, recs: &[EventRecord]) -> Vec<u8> {
        let header = SegmentHeader {
            version: crate::segment::FORMAT_VERSION,
            segment_id: id,
            base_ts: recs.first().map(|r| r.ts).unwrap_or(UtcMicros::ZERO),
            nodes: vec![1],
        };
        let mut bytes = header.encode();
        let mut payload = Vec::new();
        for r in recs {
            payload.clear();
            binenc::encode_record(r, &mut payload);
            append_frame(&payload, &mut bytes);
        }
        bytes
    }

    #[test]
    fn scan_recovers_all_records() {
        let recs: Vec<_> = (0..50).map(|i| rec(i, i as i64 * 10)).collect();
        let bytes = segment_image(3, &recs);
        let scan = scan_segment(&bytes, 0).unwrap();
        assert_eq!(scan.records.len(), 50);
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.corrupt_frames, 0);
        assert_eq!(scan.structural_end, bytes.len() as u64);
    }

    #[test]
    fn torn_tail_is_detected_not_fatal() {
        let recs: Vec<_> = (0..10).map(|i| rec(i, i as i64)).collect();
        let mut bytes = segment_image(0, &recs);
        // Tear the last frame: drop its final 5 bytes.
        let full = bytes.len();
        bytes.truncate(full - 5);
        let scan = scan_segment(&bytes, 0).unwrap();
        assert_eq!(scan.records.len(), 9, "all records before the tear");
        assert!(scan.torn_bytes > 0);
    }

    #[test]
    fn corrupt_frame_is_skipped_rest_recovered() {
        let recs: Vec<_> = (0..10).map(|i| rec(i, i as i64)).collect();
        let mut bytes = segment_image(0, &recs);
        // Flip a byte inside record 4's payload (offsets via a clean scan).
        let clean = scan_segment(&bytes, 0).unwrap();
        let target = clean.records[4].offset as usize + FRAME_OVERHEAD + 3;
        bytes[target] ^= 0xFF;
        let scan = scan_segment(&bytes, 0).unwrap();
        assert_eq!(scan.corrupt_frames, 1);
        assert_eq!(scan.records.len(), 9);
        let seqs: Vec<u64> = scan.records.iter().map(|s| s.rec.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 5, 6, 7, 8, 9]);
    }

    /// Write a store directory containing `segments`, each with a sidecar
    /// index built at `index_every`, so `read_from` exercises the sparse
    /// probe exactly as it would against a sealed, indexed store.
    fn write_indexed_store(segments: &[(u64, Vec<EventRecord>)], index_every: u32) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "brisk-reader-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        for (id, recs) in segments {
            let bytes = segment_image(*id, recs);
            fs::write(segment_path(&dir, *id), &bytes).unwrap();
            let scan = scan_segment(&bytes, 0).unwrap();
            let idx = index_of_scan(&scan, index_every, bytes.len() as u64);
            fs::write(index_path(&dir, *id), idx.encode()).unwrap();
        }
        dir
    }

    #[test]
    fn seek_exact_boundary_keeps_equal_timestamps_before_index_entry() {
        // Duplicate timestamps straddle the index entry at ordinal 4: the
        // records at ordinals 2 and 3 share ts=100 with the indexed record.
        // A probe that starts *at* an entry whose ts equals the bound skips
        // them even though they satisfy `ts >= from`.
        let ts = [50i64, 50, 100, 100, 100, 100, 200, 200];
        let recs: Vec<_> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| rec(i as u64, t))
            .collect();
        let dir = write_indexed_store(&[(0, recs)], 4);
        let reader = StoreReader::open(&dir).unwrap();
        let (got, _) = reader.read_from(UtcMicros::from_micros(100)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(
            seqs,
            vec![2, 3, 4, 5, 6, 7],
            "equal-ts records before the index entry must not be skipped"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seek_before_first_record_returns_everything_once() {
        let recs: Vec<_> = (0..10).map(|i| rec(i, 1000 + i as i64)).collect();
        let dir = write_indexed_store(&[(0, recs)], 4);
        let reader = StoreReader::open(&dir).unwrap();
        // Bound below the whole segment: no index entry qualifies as a
        // start point, the scan must begin at the segment head.
        let (got, _) = reader.read_from(UtcMicros::from_micros(5)).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].seq, 0);
        // Bound exactly at the first record's timestamp (the segment
        // base_ts): everything still comes back, exactly once.
        let (got, _) = reader.read_from(UtcMicros::from_micros(1000)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seek_between_segments_skips_older_and_replays_nothing() {
        let seg0: Vec<_> = (0..6).map(|i| rec(i, 10 + i as i64)).collect();
        let seg1: Vec<_> = (10..16).map(|i| rec(i, 100 + i as i64)).collect();
        let dir = write_indexed_store(&[(0, seg0), (1, seg1)], 4);
        let reader = StoreReader::open(&dir).unwrap();
        // Bound between the segments: segment 0 is wholly below it and must
        // be skipped via its index; segment 1 must come back in full.
        let (got, report) = reader.read_from(UtcMicros::from_micros(50)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (10..16).collect::<Vec<u64>>());
        assert_eq!(
            report.segments, 1,
            "segment below the bound skipped without scanning"
        );
        // Bound exactly at segment 1's base_ts: same answer.
        let (got, _) = reader.read_from(UtcMicros::from_micros(110)).unwrap();
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (10..16).collect::<Vec<u64>>());
        fs::remove_dir_all(&dir).ok();
    }

    /// Retention eviction racing a live scan (satellite bugfix 1): the
    /// directory listing returns a segment that is unlinked before the
    /// reader gets to `fs::read` it. A dangling symlink reproduces that
    /// window deterministically — `read_dir` lists it, the read fails with
    /// `NotFound` — exactly what a concurrent eviction produces. The reader
    /// must skip it, count it, and return every surviving record instead of
    /// surfacing a raw io error.
    #[cfg(unix)]
    #[test]
    fn eviction_under_scan_is_skipped_not_fatal() {
        let recs: Vec<_> = (0..10).map(|i| rec(i, i as i64)).collect();
        let dir = write_indexed_store(&[(0, recs)], 4);
        std::os::unix::fs::symlink(dir.join("nonexistent-target"), segment_path(&dir, 1)).unwrap();
        let reader = StoreReader::open(&dir).unwrap();
        let (got, report) = reader.read_all().unwrap();
        assert_eq!(got.len(), 10, "surviving segment fully recovered");
        assert_eq!(report.evicted_under_scan, 1);
        assert_eq!(
            reader.stats().evicted_under_scan.load(Ordering::Relaxed),
            1,
            "eviction race must be counted for telemetry"
        );
        // The seek path takes the same branch.
        let (got, report) = reader.read_from(UtcMicros::from_micros(0)).unwrap();
        assert_eq!(got.len(), 10);
        assert_eq!(report.evicted_under_scan, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_of_scan_covers_range() {
        let recs: Vec<_> = (0..130).map(|i| rec(i, 1000 + i as i64)).collect();
        let bytes = segment_image(7, &recs);
        let scan = scan_segment(&bytes, 0).unwrap();
        let idx = index_of_scan(&scan, 64, bytes.len() as u64);
        assert_eq!(idx.record_count, 130);
        assert_eq!(idx.min_ts, UtcMicros::from_micros(1000));
        assert_eq!(idx.max_ts, UtcMicros::from_micros(1129));
        assert_eq!(idx.entries.len(), 3); // ordinals 0, 64, 128
        assert_eq!(idx.entries[1].ordinal, 64);
    }
}
