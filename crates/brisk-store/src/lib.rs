//! # brisk-store — durable segmented trace store with crash recovery
//!
//! The paper's ISM keeps the merged trace "in a memory buffer" with an
//! optional PICL text file (§3.5); both lose data — the memory buffer by
//! evicting under pressure, the whole trace on an ISM crash. Protocol v2
//! made EXS→ISM delivery exactly-once; this crate closes the remaining
//! loss hole *after* the ISM by appending every sorted record to a
//! segmented, append-only on-disk log:
//!
//! * [`writer::StoreWriter`] — an [`brisk_core::sink::EventSink`] appending
//!   CRC32-framed [`brisk_core::binenc`]-encoded records into fixed-size
//!   segment files, with a configurable fsync policy, segment rotation,
//!   byte/age retention, and a sparse timestamp index per segment.
//! * [`reader::StoreReader`] — scans segments, validates CRCs, truncates
//!   torn tails after a crash (recovering every intact record), seeks by
//!   timestamp and live-tails a store another process is writing.
//! * [`replay::Replayer`] — feeds a stored trace back through `EventSink`s
//!   at original or accelerated speed, so consumers can be re-driven
//!   offline from a capture.
//!
//! The on-disk format is specified in [`segment`]; durability trade-offs
//! are selected with [`brisk_core::config::FsyncPolicy`] via
//! [`brisk_core::config::StoreConfig`].

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod compact;
pub mod crc;
pub mod query;
pub mod reader;
pub mod replay;
pub mod segment;
pub mod writer;

pub use cache::{CachedQuery, QueryCache};
pub use compact::{CompactConfig, CompactReport, Compactor};
pub use query::{
    causal_chain, windowed_aggregate, AggSource, CausalEvent, Predicate, QueryReport, WindowAgg,
};
pub use reader::{ReaderStats, RecoveryReport, StoreReader, StoreTailer};
pub use replay::{ReplayStats, Replayer};
pub use writer::{StoreStats, StoreWriter};
