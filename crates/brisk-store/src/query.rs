//! Query engine: predicate scans with zone-map pruning, windowed
//! aggregations, and causal-chain walks.
//!
//! A query is a [`Predicate`] — time range × node set × sensor set. The
//! engine answers it in O(segments *touched*): every sealed segment whose
//! sidecar zone map (or timestamp range) proves it cannot contain a
//! matching record is pruned without reading its `.seg` file; only the
//! rest are decode-scanned. Pruning decisions are counted in
//! `brisk_store_segments_pruned_total`, the scans in
//! `brisk_store_segments_scanned_total`.
//!
//! Pruning rules, applied per segment in order (any hit prunes):
//!
//! 1. sidecar `max_ts < from` — wholly before the range;
//! 2. sidecar `min_ts > to` — wholly after the range;
//! 3. zone node set ∩ predicate node set = ∅;
//! 4. every predicate sensor id is definitely absent from the zone's
//!    sensor bloom filter.
//!
//! Rules 3–4 need a v2 (zoned) sidecar; segments sealed before zone maps
//! existed fall back to rules 1–2 until the writer back-fills them.

use crate::cache::CachedQuery;
use crate::reader::{scan_segment, StoreReader};
use crate::segment::segment_path;
use brisk_core::{CorrelationId, EventRecord, Result, UtcMicros, Value};
use brisk_telemetry::Histogram;
use std::collections::BTreeSet;
use std::fs;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// A time-range × node × sensor filter. `None` dimensions match
/// everything; both timestamp bounds are inclusive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Predicate {
    /// Match records with `ts >= from`.
    pub from: Option<UtcMicros>,
    /// Match records with `ts <= to`.
    pub to: Option<UtcMicros>,
    /// Match records from these node ids.
    pub nodes: Option<BTreeSet<u32>>,
    /// Match records from these sensor ids.
    pub sensors: Option<BTreeSet<u32>>,
}

impl Predicate {
    /// Match everything.
    pub fn all() -> Predicate {
        Predicate::default()
    }

    /// Restrict to `ts >= from`.
    pub fn since(mut self, from: UtcMicros) -> Predicate {
        self.from = Some(from);
        self
    }

    /// Restrict to `ts <= to`.
    pub fn until(mut self, to: UtcMicros) -> Predicate {
        self.to = Some(to);
        self
    }

    /// Restrict to one more node id.
    pub fn node(mut self, id: u32) -> Predicate {
        self.nodes.get_or_insert_with(BTreeSet::new).insert(id);
        self
    }

    /// Restrict to one more sensor id.
    pub fn sensor(mut self, id: u32) -> Predicate {
        self.sensors.get_or_insert_with(BTreeSet::new).insert(id);
        self
    }

    /// Does `rec` satisfy every dimension?
    pub fn matches(&self, rec: &EventRecord) -> bool {
        if let Some(from) = self.from {
            if rec.ts < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if rec.ts > to {
                return false;
            }
        }
        if let Some(nodes) = &self.nodes {
            if !nodes.contains(&rec.node.0) {
                return false;
            }
        }
        if let Some(sensors) = &self.sensors {
            if !sensors.contains(&rec.sensor.0) {
                return false;
            }
        }
        true
    }

    /// Fold this predicate into an FNV-1a fingerprint.
    fn fingerprint_into(&self, h: &mut u64) {
        fnv_i64(h, self.from.map(UtcMicros::as_micros).unwrap_or(i64::MIN));
        fnv_i64(h, self.to.map(UtcMicros::as_micros).unwrap_or(i64::MAX));
        for set in [&self.nodes, &self.sensors] {
            match set {
                None => fnv_u64(h, u64::MAX),
                Some(ids) => {
                    fnv_u64(h, ids.len() as u64);
                    for &id in ids.iter() {
                        fnv_u64(h, id as u64);
                    }
                }
            }
        }
    }
}

fn fnv_u64(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn fnv_i64(h: &mut u64, v: i64) {
    fnv_u64(h, v as u64);
}

/// How a query was answered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryReport {
    /// Segments present when the query started.
    pub segments_total: u32,
    /// Segments skipped without reading their `.seg` file.
    pub segments_pruned: u32,
    /// Segments decode-scanned.
    pub segments_scanned: u32,
    /// Segments that vanished (retention) between listing and reading.
    pub evicted_under_scan: u32,
    /// Records matching the predicate.
    pub records_matched: u64,
    /// True when the result came from the shared cache without scanning.
    pub cache_hit: bool,
}

impl StoreReader {
    /// Answer `pred`, scanning only segments the zone maps cannot rule
    /// out. With a cache attached ([`StoreReader::with_cache`]), an
    /// identical query over an unchanged segment set is answered without
    /// touching segment files at all.
    pub fn query(&self, pred: &Predicate) -> Result<(Arc<CachedQuery>, QueryReport)> {
        // Snapshot the segment set (id + byte length). Lengths make the
        // cache fingerprint change when the active segment grows or a
        // segment is compacted.
        let mut segments = Vec::new();
        for id in self.segment_ids()? {
            match fs::metadata(segment_path(&self.dir, id)) {
                Ok(m) => segments.push((id, m.len())),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let mut fp = 0xCBF2_9CE4_8422_2325u64;
        pred.fingerprint_into(&mut fp);
        for &(id, len) in &segments {
            fnv_u64(&mut fp, id);
            fnv_u64(&mut fp, len);
        }
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.get(fp) {
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                let mut report = hit.report;
                report.cache_hit = true;
                return Ok((hit, report));
            }
        }
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);

        let started = Instant::now();
        let mut report = QueryReport {
            segments_total: segments.len() as u32,
            ..QueryReport::default()
        };
        let mut records = Vec::new();
        for &(id, _) in &segments {
            let idx = self.load_index(id);
            if let Some(idx) = &idx {
                if self.pruned_by_index(pred, idx) {
                    report.segments_pruned += 1;
                    self.stats.segments_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            let bytes = match fs::read(segment_path(&self.dir, id)) {
                Ok(b) => b,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    report.evicted_under_scan += 1;
                    self.stats
                        .evicted_under_scan
                        .fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Err(e) => return Err(e.into()),
            };
            // Unlike read_from, touched segments are scanned from the top:
            // the mid-segment index resume assumes timestamp order, and the
            // query contract is exact equivalence with scan+filter even on
            // stores that were fed unsorted records. Segment-level pruning
            // above stays sound regardless of order (min/max are exact).
            let Ok(scan) = scan_segment(&bytes, 0) else {
                continue; // unreadable header: repair is the writer's job
            };
            report.segments_scanned += 1;
            self.stats.segments_scanned.fetch_add(1, Ordering::Relaxed);
            for sr in scan.records {
                if pred.matches(&sr.rec) {
                    records.push(sr.rec);
                }
            }
        }
        report.records_matched = records.len() as u64;
        if let Some(h) = &self.scan_micros {
            record_elapsed(h, started);
        }
        let entry = Arc::new(CachedQuery { records, report });
        if let Some(cache) = &self.cache {
            cache.put(fp, Arc::clone(&entry));
        }
        Ok((entry, report))
    }

    /// Can `idx` prove its segment holds no matching record?
    fn pruned_by_index(&self, pred: &Predicate, idx: &crate::segment::SegmentIndex) -> bool {
        if let Some(from) = pred.from {
            if idx.max_ts < from {
                return true;
            }
        }
        if let Some(to) = pred.to {
            if idx.min_ts > to {
                return true;
            }
        }
        let Some(zone) = &idx.zone else {
            return false; // v1 sidecar: time rules only
        };
        if let Some(nodes) = &pred.nodes {
            if !nodes.iter().any(|n| zone.nodes.binary_search(n).is_ok()) {
                return true;
            }
        }
        if let Some(sensors) = &pred.sensors {
            if sensors.iter().all(|&s| !zone.sensors.may_contain(s)) {
                return true;
            }
        }
        false
    }
}

fn record_elapsed(h: &Histogram, started: Instant) {
    h.record(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
}

/// What a windowed aggregation measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggSource {
    /// Inter-arrival gaps between consecutive records, in µs.
    Gaps,
    /// A numeric record field by index (negative values clamp to 0;
    /// floats round).
    Field(usize),
}

/// One aggregation window over a record stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowAgg {
    /// Window start (inclusive, aligned to the window size).
    pub start: UtcMicros,
    /// Records in the window.
    pub count: u64,
    /// Records per second.
    pub rate_hz: f64,
    /// Mean of the measured values.
    pub mean: f64,
    /// Estimated 50th percentile (log2 bucket upper bound).
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// Numeric view of a field for aggregation.
fn field_value(rec: &EventRecord, i: usize) -> Option<u64> {
    Some(match rec.fields.get(i)? {
        Value::I8(x) => (*x).max(0) as u64,
        Value::U8(x) => *x as u64,
        Value::I16(x) => (*x).max(0) as u64,
        Value::U16(x) => *x as u64,
        Value::I32(x) => (*x).max(0) as u64,
        Value::U32(x) => *x as u64,
        Value::I64(x) => (*x).max(0) as u64,
        Value::U64(x) => *x,
        Value::F32(x) => x.max(0.0).round() as u64,
        Value::F64(x) => x.max(0.0).round() as u64,
        Value::Bool(x) => *x as u64,
        Value::Ts(t) => t.as_micros().max(0) as u64,
        _ => return None,
    })
}

/// Aggregate `records` (assumed in timestamp order, as stores hold the
/// ISM's sorted output) into fixed windows of `window_us` microseconds,
/// using the existing log2-bucket histograms for the percentiles. Windows
/// with no records are omitted.
pub fn windowed_aggregate(
    records: &[EventRecord],
    window_us: i64,
    source: AggSource,
) -> Vec<WindowAgg> {
    let window_us = window_us.max(1);
    let mut out: Vec<WindowAgg> = Vec::new();
    let mut cur: Option<(i64, Histogram, u64)> = None; // (window idx, hist, count)
    let mut prev_ts: Option<i64> = None;
    for rec in records {
        let ts = rec.ts.as_micros();
        let w = ts.div_euclid(window_us);
        match &mut cur {
            Some((cw, hist, count)) if *cw == w => {
                measure(hist, rec, prev_ts, source);
                *count += 1;
            }
            _ => {
                if let Some(done) = cur.take() {
                    out.push(finish_window(done, window_us));
                }
                let hist = Histogram::new();
                measure(&hist, rec, prev_ts, source);
                cur = Some((w, hist, 1));
            }
        }
        prev_ts = Some(ts);
    }
    if let Some(done) = cur.take() {
        out.push(finish_window(done, window_us));
    }
    out
}

fn measure(hist: &Histogram, rec: &EventRecord, prev_ts: Option<i64>, source: AggSource) {
    match source {
        AggSource::Gaps => {
            let gap = prev_ts
                .map(|p| (rec.ts.as_micros() - p).max(0) as u64)
                .unwrap_or(0);
            hist.record(gap);
        }
        AggSource::Field(i) => {
            if let Some(v) = field_value(rec, i) {
                hist.record(v);
            }
        }
    }
}

fn finish_window((w, hist, count): (i64, Histogram, u64), window_us: i64) -> WindowAgg {
    let snap = hist.snapshot();
    WindowAgg {
        start: UtcMicros::from_micros(w * window_us),
        count,
        rate_hz: count as f64 / (window_us as f64 / 1_000_000.0),
        mean: snap.mean(),
        p50: snap.p50(),
        p95: snap.p95(),
        p99: snap.p99(),
    }
}

/// One event on a causal chain.
#[derive(Clone, Debug, PartialEq)]
pub struct CausalEvent {
    /// Hops from the chain's starting correlation id: reason events carry
    /// the depth at which their id was reached, their consequences that
    /// depth + 1.
    pub depth: u32,
    /// The event record.
    pub record: EventRecord,
}

/// Walk the CRE reason/conseq links reachable from `start`: records
/// marked `X_REASON start` are the causes (depth d), records marked
/// `X_CONSEQ start` their effects (depth d+1); an effect that is itself
/// marked as a reason extends the chain. Returns events ordered by depth
/// then stream position, capped at `max_events`.
pub fn causal_chain(
    records: &[EventRecord],
    start: CorrelationId,
    max_events: usize,
) -> Vec<CausalEvent> {
    use std::collections::{HashMap, HashSet, VecDeque};
    let mut by_reason: HashMap<CorrelationId, Vec<usize>> = HashMap::new();
    let mut by_conseq: HashMap<CorrelationId, Vec<usize>> = HashMap::new();
    for (i, rec) in records.iter().enumerate() {
        if let Some(id) = rec.reason_id() {
            by_reason.entry(id).or_default().push(i);
        }
        if let Some(id) = rec.conseq_id() {
            by_conseq.entry(id).or_default().push(i);
        }
    }
    let mut emitted: HashSet<usize> = HashSet::new();
    let mut visited: HashSet<CorrelationId> = HashSet::new();
    let mut out: Vec<CausalEvent> = Vec::new();
    let mut frontier: VecDeque<(CorrelationId, u32)> = VecDeque::new();
    visited.insert(start);
    frontier.push_back((start, 0));
    while let Some((id, depth)) = frontier.pop_front() {
        if out.len() >= max_events {
            break;
        }
        for &i in by_reason.get(&id).into_iter().flatten() {
            if emitted.insert(i) && out.len() < max_events {
                out.push(CausalEvent {
                    depth,
                    record: records[i].clone(),
                });
            }
        }
        for &i in by_conseq.get(&id).into_iter().flatten() {
            if emitted.insert(i) && out.len() < max_events {
                out.push(CausalEvent {
                    depth: depth + 1,
                    record: records[i].clone(),
                });
            }
            if let Some(next) = records[i].reason_id() {
                if visited.insert(next) {
                    frontier.push_back((next, depth + 1));
                }
            }
        }
    }
    out.sort_by_key(|e| e.depth);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId};

    fn rec(node: u32, sensor: u32, seq: u64, ts: i64, fields: Vec<Value>) -> EventRecord {
        EventRecord {
            node: NodeId(node),
            sensor: SensorId(sensor),
            event_type: EventTypeId(1),
            seq,
            ts: UtcMicros::from_micros(ts),
            fields,
        }
    }

    #[test]
    fn predicate_matches_all_dimensions() {
        let p = Predicate::all()
            .since(UtcMicros::from_micros(10))
            .until(UtcMicros::from_micros(20))
            .node(1)
            .sensor(5);
        assert!(p.matches(&rec(1, 5, 0, 15, vec![])));
        assert!(p.matches(&rec(1, 5, 0, 10, vec![])), "from is inclusive");
        assert!(p.matches(&rec(1, 5, 0, 20, vec![])), "to is inclusive");
        assert!(!p.matches(&rec(1, 5, 0, 9, vec![])));
        assert!(!p.matches(&rec(1, 5, 0, 21, vec![])));
        assert!(!p.matches(&rec(2, 5, 0, 15, vec![])));
        assert!(!p.matches(&rec(1, 6, 0, 15, vec![])));
    }

    #[test]
    fn windows_aggregate_counts_and_rates() {
        // 100 records at 1 ms spacing: 10 windows of 10 ms, 10 records each.
        let recs: Vec<EventRecord> = (0..100)
            .map(|i| rec(1, 1, i, i as i64 * 1_000, vec![Value::U32(7)]))
            .collect();
        let aggs = windowed_aggregate(&recs, 10_000, AggSource::Field(0));
        assert_eq!(aggs.len(), 10);
        for a in &aggs {
            assert_eq!(a.count, 10);
            assert!((a.rate_hz - 1000.0).abs() < 1e-6);
            assert!(a.p50 >= 7, "log2 bucket upper bound at or above the value");
        }
        let gaps = windowed_aggregate(&recs, 10_000, AggSource::Gaps);
        assert_eq!(gaps.len(), 10);
        assert!(gaps[1].p95 >= 1_000);
    }

    #[test]
    fn causal_chain_follows_reason_conseq_links() {
        // 1 --(A)--> 2 --(B)--> 3, plus an unrelated record.
        let recs = vec![
            rec(1, 1, 0, 10, vec![Value::Reason(CorrelationId(0xA))]),
            rec(
                2,
                1,
                1,
                20,
                vec![
                    Value::Conseq(CorrelationId(0xA)),
                    Value::Reason(CorrelationId(0xB)),
                ],
            ),
            rec(3, 1, 2, 30, vec![Value::Conseq(CorrelationId(0xB))]),
            rec(9, 9, 3, 40, vec![]),
        ];
        let chain = causal_chain(&recs, CorrelationId(0xA), 100);
        let got: Vec<(u32, u64)> = chain.iter().map(|e| (e.depth, e.record.seq)).collect();
        assert_eq!(got, vec![(0, 0), (1, 1), (2, 2)]);
        // Capped walks stop early.
        assert_eq!(causal_chain(&recs, CorrelationId(0xA), 2).len(), 2);
        // Unknown id: empty chain.
        assert!(causal_chain(&recs, CorrelationId(0xF), 10).is_empty());
    }
}
