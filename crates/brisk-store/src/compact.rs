//! Compacted segment format and the background compactor.
//!
//! The transfer protocol compresses each record's meta-information header
//! on the wire; compaction applies the same idea *at rest*. A cold sealed
//! segment is rewritten as a format-version-2 segment file:
//!
//! * the header carries a [`DescriptorDict`] of the distinct record
//!   shapes `(node, sensor, event type, descriptor)` in the segment;
//! * each CRC frame holds a *block* of records (not one record), encoded
//!   as varint deltas against per-shape state that resets at every block
//!   boundary, so a corrupt block loses only itself and the frame stream
//!   resynchronizes exactly as it does for plain segments.
//!
//! Block payload layout (all varints are LEB128; `zz` is zigzag):
//!
//! ```text
//! varint record_count
//! record* {
//!   varint shape id                  (dictionary reference)
//!   varint zz(seq  - prev seq of this shape)      (init 0)
//!   varint zz(ts   - prev record ts in block)     (init 0)
//!   field*                           (types from the shape's descriptor)
//! }
//! ```
//!
//! Field encodings, each against the previous value of the *same field of
//! the same shape* within the block (integers start at 0, blobs empty):
//!
//! * integer-like (`I8..U64`, `Bool`, `Ts`, `Reason`, `Conseq`) —
//!   `varint zz(delta)` in 64-bit two's complement;
//! * floats — `varint (bits ^ prev bits)`, XOR of the IEEE-754 bit
//!   patterns (bit-exact round-trip, tiny varints for repeated values);
//! * `Str` / `Bytes` / `Trace` — `varint 0` when identical to the
//!   previous value, else `varint (len + 1)` followed by the raw bytes
//!   (for `Trace`, its native binary encoding).
//!
//! Slowly-varying telemetry — the common cold-trace shape — lands around
//! one byte per header field and one or two per payload field, versus the
//! plain format's 28-byte header + packed descriptor + fixed-width
//! payloads + an 8-byte frame per record.

use crate::reader::{index_of_scan, list_segment_ids, scan_segment};
use crate::segment::{
    append_frame, decode_any_header, index_path, segment_path, SegmentBody, FRAME_OVERHEAD,
};
use brisk_core::{
    BriskError, CorrelationId, EventRecord, EventTypeId, NodeId, Result, SensorId, TraceContext,
    UtcMicros, Value, ValueType,
};
use brisk_proto::{DescriptorDict, DictKey};
use brisk_telemetry::Registry;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Records per block frame. Large enough to amortize the frame header and
/// give deltas a long run, small enough that one corrupt block stays a
/// small loss.
pub const DEFAULT_BLOCK_RECORDS: usize = 512;

/// Decode-side cap on a block's declared record count (a block is at most
/// one frame, and a frame is capped, but the count varint is read before
/// the records are).
const MAX_BLOCK_RECORDS: usize = 1 << 20;

/// Cap on a varint-length-prefixed blob inside a block.
const MAX_BLOB_BYTES: u64 = 1 << 24;

fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or_else(|| BriskError::Codec("truncated varint in block".into()))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(BriskError::Codec("varint overflow in block".into()));
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Map an integer-like value onto the 64-bit two's-complement delta
/// domain.
fn int_bits(v: &Value) -> Option<u64> {
    Some(match *v {
        Value::I8(x) => x as i64 as u64,
        Value::U8(x) => x as u64,
        Value::I16(x) => x as i64 as u64,
        Value::U16(x) => x as u64,
        Value::I32(x) => x as i64 as u64,
        Value::U32(x) => x as u64,
        Value::I64(x) => x as u64,
        Value::U64(x) => x,
        Value::Bool(x) => x as u64,
        Value::Ts(t) => t.as_micros() as u64,
        Value::Reason(c) => c.0,
        Value::Conseq(c) => c.0,
        _ => return None,
    })
}

/// Inverse of [`int_bits`] for `ty`. Fails when the bits do not fit the
/// type (possible only on corrupt input).
fn value_from_bits(ty: ValueType, bits: u64) -> Result<Value> {
    let narrow = |what: &str| BriskError::Codec(format!("compact block: {what} out of range"));
    Ok(match ty {
        ValueType::I8 => Value::I8(i8::try_from(bits as i64).map_err(|_| narrow("i8"))?),
        ValueType::U8 => Value::U8(u8::try_from(bits).map_err(|_| narrow("u8"))?),
        ValueType::I16 => Value::I16(i16::try_from(bits as i64).map_err(|_| narrow("i16"))?),
        ValueType::U16 => Value::U16(u16::try_from(bits).map_err(|_| narrow("u16"))?),
        ValueType::I32 => Value::I32(i32::try_from(bits as i64).map_err(|_| narrow("i32"))?),
        ValueType::U32 => Value::U32(u32::try_from(bits).map_err(|_| narrow("u32"))?),
        ValueType::I64 => Value::I64(bits as i64),
        ValueType::U64 => Value::U64(bits),
        ValueType::Bool => match bits {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            _ => return Err(narrow("bool")),
        },
        ValueType::Ts => Value::Ts(UtcMicros::from_micros(bits as i64)),
        ValueType::Reason => Value::Reason(CorrelationId(bits)),
        ValueType::Conseq => Value::Conseq(CorrelationId(bits)),
        _ => return Err(BriskError::Codec("not an integer-like type".into())),
    })
}

/// Per-field delta state within a block.
#[derive(Clone)]
enum PrevField {
    Num(u64),
    Blob(Vec<u8>),
}

/// Per-shape delta state within a block.
#[derive(Clone)]
struct ShapeState {
    seq: u64,
    fields: Vec<PrevField>,
}

fn fresh_state(key: &DictKey) -> ShapeState {
    ShapeState {
        seq: 0,
        fields: key
            .descriptor
            .types()
            .iter()
            .map(|t| match t {
                ValueType::Str | ValueType::Bytes | ValueType::Trace => PrevField::Blob(Vec::new()),
                _ => PrevField::Num(0),
            })
            .collect(),
    }
}

/// Encode one block of records, interning shapes into `dict`.
pub fn encode_block(records: &[EventRecord], dict: &mut DescriptorDict) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(records.len() * 8);
    put_varint(records.len() as u64, &mut out);
    let mut states: Vec<Option<ShapeState>> = Vec::new();
    let mut prev_ts = 0i64;
    let mut scratch = Vec::new();
    for rec in records {
        let shape = dict.intern_record(rec)?;
        put_varint(shape as u64, &mut out);
        if states.len() <= shape as usize {
            states.resize(dict.len(), None);
        }
        let key = dict
            .get(shape)
            .ok_or_else(|| BriskError::Codec("dictionary lost a shape".into()))?
            .clone();
        let state = states[shape as usize].get_or_insert_with(|| fresh_state(&key));
        put_varint(zigzag(rec.seq.wrapping_sub(state.seq) as i64), &mut out);
        state.seq = rec.seq;
        let ts = rec.ts.as_micros();
        put_varint(zigzag(ts.wrapping_sub(prev_ts)), &mut out);
        prev_ts = ts;
        for (value, prev) in rec.fields.iter().zip(state.fields.iter_mut()) {
            match value {
                Value::F32(x) => {
                    let bits = x.to_bits() as u64;
                    let PrevField::Num(p) = prev else {
                        return Err(BriskError::Codec("field state mismatch".into()));
                    };
                    put_varint(bits ^ *p, &mut out);
                    *p = bits;
                }
                Value::F64(x) => {
                    let bits = x.to_bits();
                    let PrevField::Num(p) = prev else {
                        return Err(BriskError::Codec("field state mismatch".into()));
                    };
                    put_varint(bits ^ *p, &mut out);
                    *p = bits;
                }
                Value::Str(s) => encode_blob(s.as_bytes(), prev, &mut out)?,
                Value::Bytes(b) => encode_blob(b, prev, &mut out)?,
                Value::Trace(ctx) => {
                    scratch.clear();
                    ctx.encode_into(&mut scratch);
                    encode_blob(&scratch, prev, &mut out)?;
                }
                v => {
                    let bits = int_bits(v)
                        .ok_or_else(|| BriskError::Codec("unexpected field type".into()))?;
                    let PrevField::Num(p) = prev else {
                        return Err(BriskError::Codec("field state mismatch".into()));
                    };
                    put_varint(zigzag(bits.wrapping_sub(*p) as i64), &mut out);
                    *p = bits;
                }
            }
        }
    }
    Ok(out)
}

fn encode_blob(bytes: &[u8], prev: &mut PrevField, out: &mut Vec<u8>) -> Result<()> {
    let PrevField::Blob(p) = prev else {
        return Err(BriskError::Codec("field state mismatch".into()));
    };
    if bytes == p.as_slice() {
        put_varint(0, out);
    } else {
        put_varint(bytes.len() as u64 + 1, out);
        out.extend_from_slice(bytes);
        p.clear();
        p.extend_from_slice(bytes);
    }
    Ok(())
}

/// Decode a block payload against the segment's dictionary.
pub fn decode_block(payload: &[u8], dict: &DescriptorDict) -> Result<Vec<EventRecord>> {
    let mut pos = 0usize;
    let count = get_varint(payload, &mut pos)? as usize;
    if count > MAX_BLOCK_RECORDS {
        return Err(BriskError::Codec(format!(
            "absurd block record count {count}"
        )));
    }
    let mut records = Vec::with_capacity(count.min(4096));
    let mut states: Vec<Option<ShapeState>> = vec![None; dict.len()];
    let mut prev_ts = 0i64;
    for _ in 0..count {
        let shape = get_varint(payload, &mut pos)?;
        let key = dict
            .get(u32::try_from(shape).unwrap_or(u32::MAX))
            .ok_or_else(|| BriskError::Codec(format!("unknown shape id {shape}")))?;
        let state = states
            .get_mut(shape as usize)
            .ok_or_else(|| BriskError::Codec("shape id out of range".into()))?
            .get_or_insert_with(|| fresh_state(key));
        let dseq = unzigzag(get_varint(payload, &mut pos)?);
        let seq = state.seq.wrapping_add(dseq as u64);
        state.seq = seq;
        let dts = unzigzag(get_varint(payload, &mut pos)?);
        let ts = prev_ts.wrapping_add(dts);
        prev_ts = ts;
        let types = key.descriptor.types().to_vec();
        let mut fields = Vec::with_capacity(types.len());
        for (i, ty) in types.iter().enumerate() {
            let prev = state
                .fields
                .get_mut(i)
                .ok_or_else(|| BriskError::Codec("field state missing".into()))?;
            let value = match ty {
                ValueType::F32 => {
                    let PrevField::Num(p) = prev else {
                        return Err(BriskError::Codec("field state mismatch".into()));
                    };
                    let bits = (get_varint(payload, &mut pos)? ^ *p) & 0xFFFF_FFFF;
                    *p = bits;
                    Value::F32(f32::from_bits(bits as u32))
                }
                ValueType::F64 => {
                    let PrevField::Num(p) = prev else {
                        return Err(BriskError::Codec("field state mismatch".into()));
                    };
                    let bits = get_varint(payload, &mut pos)? ^ *p;
                    *p = bits;
                    Value::F64(f64::from_bits(bits))
                }
                ValueType::Str => {
                    let bytes = decode_blob(payload, &mut pos, prev)?;
                    Value::Str(
                        String::from_utf8(bytes)
                            .map_err(|_| BriskError::Codec("invalid UTF-8 in block".into()))?,
                    )
                }
                ValueType::Bytes => Value::Bytes(decode_blob(payload, &mut pos, prev)?),
                ValueType::Trace => {
                    let bytes = decode_blob(payload, &mut pos, prev)?;
                    let (ctx, used) = TraceContext::decode(&bytes)?;
                    if used != bytes.len() {
                        return Err(BriskError::Codec("trailing trace bytes in block".into()));
                    }
                    Value::Trace(ctx)
                }
                ty => {
                    let PrevField::Num(p) = prev else {
                        return Err(BriskError::Codec("field state mismatch".into()));
                    };
                    let delta = unzigzag(get_varint(payload, &mut pos)?);
                    let bits = p.wrapping_add(delta as u64);
                    *p = bits;
                    value_from_bits(*ty, bits)?
                }
            };
            fields.push(value);
        }
        records.push(EventRecord {
            node: NodeId(key.node),
            sensor: SensorId(key.sensor),
            event_type: EventTypeId(key.event_type),
            seq,
            ts: UtcMicros::from_micros(ts),
            fields,
        });
    }
    if pos != payload.len() {
        return Err(BriskError::Codec("trailing bytes after block".into()));
    }
    Ok(records)
}

fn decode_blob(payload: &[u8], pos: &mut usize, prev: &mut PrevField) -> Result<Vec<u8>> {
    let PrevField::Blob(p) = prev else {
        return Err(BriskError::Codec("field state mismatch".into()));
    };
    let tag = get_varint(payload, pos)?;
    if tag == 0 {
        return Ok(p.clone());
    }
    let len = tag - 1;
    if len > MAX_BLOB_BYTES {
        return Err(BriskError::Codec(format!("absurd blob length {len}")));
    }
    let len = len as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= payload.len())
        .ok_or_else(|| BriskError::Codec("truncated blob in block".into()))?;
    let bytes = payload[*pos..end].to_vec();
    *pos = end;
    p.clear();
    p.extend_from_slice(&bytes);
    Ok(bytes)
}

/// Build a complete compacted segment image (header + block frames) for
/// `records`, which must be the full intact record stream of segment
/// `segment_id` in file order.
pub fn build_compact_image(
    segment_id: u64,
    base_ts: UtcMicros,
    header_nodes: &[u32],
    records: &[EventRecord],
    block_records: usize,
) -> Result<Vec<u8>> {
    let block_records = block_records.max(1);
    let mut dict = DescriptorDict::new();
    let mut blocks = Vec::new();
    for chunk in records.chunks(block_records) {
        blocks.push(encode_block(chunk, &mut dict)?);
    }
    let mut out = crate::segment::encode_compact_header(segment_id, base_ts, header_nodes, &dict);
    for block in &blocks {
        append_frame(block, &mut out);
    }
    Ok(out)
}

/// Compaction tuning knobs.
#[derive(Clone, Debug)]
pub struct CompactConfig {
    /// Newest sealed segments to leave untouched — they may still be read
    /// hot (tailers, recent-window queries) and retention reaps oldest
    /// first, so compacting them would be wasted work.
    pub keep_hot: usize,
    /// Records per block frame.
    pub block_records: usize,
    /// Sparse-index stride for the rebuilt sidecar.
    pub index_every: u32,
}

impl Default for CompactConfig {
    fn default() -> CompactConfig {
        CompactConfig {
            keep_hot: 2,
            block_records: DEFAULT_BLOCK_RECORDS,
            index_every: 64,
        }
    }
}

/// Lock-free counters describing compactor activity.
#[derive(Debug, Default)]
pub struct CompactStats {
    /// Segments rewritten in the compacted format.
    pub segments_compacted: AtomicU64,
    /// Records carried through compaction.
    pub records_compacted: AtomicU64,
    /// Sum of segment byte sizes before compaction.
    pub bytes_before: AtomicU64,
    /// Sum of segment byte sizes after compaction.
    pub bytes_after: AtomicU64,
    /// Eligible segments skipped (torn/corrupt frames, no win, raced with
    /// retention, already compacted).
    pub segments_skipped: AtomicU64,
}

/// What one compaction sweep did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Segments rewritten this sweep.
    pub compacted: u32,
    /// Segments examined but left alone.
    pub skipped: u32,
    /// Byte size of rewritten segments before.
    pub bytes_before: u64,
    /// Byte size of rewritten segments after.
    pub bytes_after: u64,
}

/// Rewrites cold sealed segments in the compacted format, in place
/// (atomic rename), leaving readers none the wiser.
///
/// Safe to run while a [`crate::StoreWriter`] appends to the same
/// directory: only sealed segments older than the `keep_hot` window are
/// touched, the segment file is swapped with `rename(2)`, and the sidecar
/// is rewritten *after* the swap — a reader that loads the sidecar in the
/// window between the two sees a seal stamp that no longer matches the
/// file and falls back to a full scan (see `SegmentIndex::validate_against`).
pub struct Compactor {
    dir: PathBuf,
    cfg: CompactConfig,
    stats: Arc<CompactStats>,
}

impl Compactor {
    /// A compactor over `dir`.
    pub fn new(dir: impl Into<PathBuf>, cfg: CompactConfig) -> Compactor {
        Compactor {
            dir: dir.into(),
            cfg,
            stats: Arc::new(CompactStats::default()),
        }
    }

    /// Shared activity counters.
    pub fn stats(&self) -> Arc<CompactStats> {
        Arc::clone(&self.stats)
    }

    /// Register compaction counters on `registry`.
    pub fn bind_telemetry(&self, registry: &Registry) {
        macro_rules! counter {
            ($name:literal, $help:literal, $field:ident) => {{
                let stats = Arc::clone(&self.stats);
                registry.counter_fn($name, $help, &[], move || {
                    stats.$field.load(Ordering::Relaxed)
                });
            }};
        }
        counter!(
            "brisk_store_compactions_total",
            "Cold sealed segments rewritten in the compacted format",
            segments_compacted
        );
        counter!(
            "brisk_store_compacted_records_total",
            "Records carried through compaction",
            records_compacted
        );
        counter!(
            "brisk_store_compaction_bytes_before_total",
            "Byte size of compacted segments before rewriting",
            bytes_before
        );
        counter!(
            "brisk_store_compaction_bytes_after_total",
            "Byte size of compacted segments after rewriting",
            bytes_after
        );
        counter!(
            "brisk_store_compaction_skipped_total",
            "Eligible segments left alone (damaged, empty, or no win)",
            segments_skipped
        );
    }

    /// One sweep: examine every eligible cold sealed segment and rewrite
    /// the plain ones. Returns what happened.
    pub fn run_once(&self) -> Result<CompactReport> {
        let mut report = CompactReport::default();
        let ids = list_segment_ids(&self.dir)?;
        if ids.len() < 2 {
            return Ok(report); // nothing sealed
        }
        // The last id is the active segment; of the sealed rest, leave the
        // newest `keep_hot` alone.
        let sealed = &ids[..ids.len() - 1];
        let cold = &sealed[..sealed.len().saturating_sub(self.cfg.keep_hot)];
        for &id in cold {
            match self.compact_segment(id) {
                Ok(Some((before, after))) => {
                    report.compacted += 1;
                    report.bytes_before += before;
                    report.bytes_after += after;
                    self.stats
                        .segments_compacted
                        .fetch_add(1, Ordering::Relaxed);
                    self.stats.bytes_before.fetch_add(before, Ordering::Relaxed);
                    self.stats.bytes_after.fetch_add(after, Ordering::Relaxed);
                    brisk_telemetry::flight_log!(
                        Info,
                        "store.compact",
                        "compacted",
                        "segment {id} compacted {before} -> {after} bytes"
                    );
                }
                Ok(None) => {
                    report.skipped += 1;
                    self.stats.segments_skipped.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Compact one segment. `Ok(None)` means it was (no longer) eligible.
    fn compact_segment(&self, id: u64) -> Result<Option<(u64, u64)>> {
        let path = segment_path(&self.dir, id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            // Raced with retention eviction: fine, it is gone.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let Ok((header, body, _)) = decode_any_header(&bytes) else {
            return Ok(None); // unreadable header: leave for the writer's repair
        };
        if matches!(body, SegmentBody::Compact(_)) {
            return Ok(None); // already compacted
        }
        let scan = scan_segment(&bytes, 0)?;
        if scan.torn_bytes > 0 || scan.corrupt_frames > 0 || scan.records.is_empty() {
            // Damaged or empty segments keep their original bytes: the
            // plain format is the recoverable source of truth for them.
            return Ok(None);
        }
        let records: Vec<EventRecord> = scan.records.iter().map(|sr| sr.rec.clone()).collect();
        let image = build_compact_image(
            id,
            header.base_ts,
            &header.nodes,
            &records,
            self.cfg.block_records,
        )?;
        if image.len() >= bytes.len() {
            return Ok(None); // no win (tiny or high-entropy segment)
        }
        // Swap the segment first, then rebuild the sidecar from the new
        // bytes; the stale-sidecar window in between is covered by the
        // seal-stamp validation on the read side.
        let tmp = path.with_extension("seg.tmp");
        write_sync(&tmp, &image)?;
        fs::rename(&tmp, &path)?;
        let new_scan = scan_segment(&image, 0)?;
        let idx = index_of_scan(&new_scan, self.cfg.index_every, image.len() as u64);
        let idx_path = index_path(&self.dir, id);
        let idx_tmp = idx_path.with_extension("idx.tmp");
        write_sync(&idx_tmp, &idx.encode())?;
        fs::rename(&idx_tmp, &idx_path)?;
        self.stats
            .records_compacted
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        Ok(Some((bytes.len() as u64, image.len() as u64)))
    }
}

/// Write + fsync a file (used for both halves of the atomic swaps).
fn write_sync(path: &Path, bytes: &[u8]) -> Result<()> {
    use std::io::Write;
    let mut f = fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

/// Sanity floor used by tests and the bench: the plain-format byte cost
/// of `records` (header excluded), for size-reduction accounting.
pub fn plain_frames_len(records: &[EventRecord]) -> usize {
    records
        .iter()
        .map(|r| FRAME_OVERHEAD + brisk_core::binenc::record_size(r))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, sensor: u32, seq: u64, ts: i64, fields: Vec<Value>) -> EventRecord {
        EventRecord {
            node: NodeId(node),
            sensor: SensorId(sensor),
            event_type: EventTypeId(1),
            seq,
            ts: UtcMicros::from_micros(ts),
            fields,
        }
    }

    #[test]
    fn block_round_trips_mixed_shapes() {
        let recs = vec![
            rec(1, 1, 1, 100, vec![Value::I32(5), Value::Str("ok".into())]),
            rec(1, 1, 2, 105, vec![Value::I32(6), Value::Str("ok".into())]),
            rec(2, 4, 7, 105, vec![Value::F64(0.25)]),
            rec(1, 1, 3, 90, vec![Value::I32(-9), Value::Str("err".into())]),
            rec(2, 4, 8, 200, vec![Value::F64(0.25)]),
            rec(3, 9, 1, 201, vec![]),
            rec(
                1,
                2,
                1,
                202,
                vec![
                    Value::Bool(true),
                    Value::Ts(UtcMicros::from_micros(7)),
                    Value::Reason(CorrelationId(u64::MAX)),
                    Value::Bytes(vec![0, 1, 2]),
                ],
            ),
        ];
        let mut dict = DescriptorDict::new();
        let block = encode_block(&recs, &mut dict).unwrap();
        let back = decode_block(&block, &dict).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn compact_image_scans_identically() {
        let recs: Vec<EventRecord> = (0..1500)
            .map(|i| {
                rec(
                    1 + (i % 3) as u32,
                    (i % 5) as u32,
                    i,
                    1_000_000 + i as i64 * 7,
                    vec![Value::I32(i as i32 / 10), Value::U64(i * 3)],
                )
            })
            .collect();
        let image = build_compact_image(3, recs[0].ts, &[1, 2, 3], &recs, 512).unwrap();
        let scan = scan_segment(&image, 0).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.corrupt_frames, 0);
        let back: Vec<EventRecord> = scan.records.into_iter().map(|sr| sr.rec).collect();
        assert_eq!(back, recs);
    }

    #[test]
    fn compact_image_is_much_smaller_for_telemetry_shapes() {
        // The paper's evaluation workload: six i32 fields, slowly varying.
        let recs: Vec<EventRecord> = (0..4000)
            .map(|i| {
                rec(
                    1,
                    2,
                    i,
                    5_000_000 + i as i64 * 13,
                    (0..6).map(|f| Value::I32((i as i32 / 50) + f)).collect(),
                )
            })
            .collect();
        let plain = plain_frames_len(&recs);
        let image = build_compact_image(0, recs[0].ts, &[1], &recs, 512).unwrap();
        assert!(
            image.len() * 5 <= plain,
            "compacted {} bytes vs plain {} bytes: less than 5x",
            image.len(),
            plain
        );
    }

    #[test]
    fn corrupt_block_loses_only_itself() {
        let recs: Vec<EventRecord> = (0..300)
            .map(|i| rec(1, 1, i, i as i64, vec![Value::U32(i as u32)]))
            .collect();
        let mut image = build_compact_image(0, recs[0].ts, &[1], &recs, 100).unwrap();
        // Flip a payload byte inside the second block frame.
        let scan = scan_segment(&image, 0).unwrap();
        let second_block_off = scan.records[100].offset as usize;
        image[second_block_off + FRAME_OVERHEAD + 10] ^= 0xFF;
        let damaged = scan_segment(&image, 0).unwrap();
        assert_eq!(damaged.corrupt_frames, 1);
        let seqs: Vec<u64> = damaged.records.iter().map(|sr| sr.rec.seq).collect();
        let want: Vec<u64> = (0..100).chain(200..300).collect();
        assert_eq!(seqs, want, "first and third blocks intact");
    }
}
