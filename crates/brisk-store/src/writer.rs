//! The write side: segment rotation, fsync policy, retention, repair.
//!
//! [`StoreWriter`] is an [`EventSink`], so the ISM's output stage can fan
//! sorted records into it exactly like any other consumer. Appends go
//! through a small write-behind buffer; full buffers are handed to a
//! background writer thread, so the append path does one encode, one CRC
//! and a copy, and an OS `write` stall (page reclaim, dirty throttling)
//! overlaps the pipeline instead of blocking it. The queue is bounded, so
//! a persistently slow device exerts backpressure rather than growing the
//! heap. Every fsync point, rotation, [`EventSink::flush`] and drop drains
//! the queue first (a barrier round-trip), so the durability loss window
//! is still governed by the [`FsyncPolicy`] alone; `fsync=always` bypasses
//! the thread entirely — each append writes and syncs inline.
//!
//! A writer never appends to a pre-existing segment: on open it *repairs*
//! the directory (truncates torn tails left by a crash, rebuilds missing
//! sidecar indexes) and then starts a fresh segment, so the repaired
//! history is immutable from that point on.

use crate::reader::{index_of_scan, list_segment_ids, scan_segment};
use crate::segment::{
    append_frame, index_path, segment_path, IndexEntry, SegmentHeader, SegmentIndex, SensorBloom,
    ZoneMap, FORMAT_VERSION,
};
use brisk_core::sink::EventSink;
use brisk_core::{binenc, BriskError, EventRecord, FsyncPolicy, Result, StoreConfig, UtcMicros};
use brisk_telemetry::{Histogram, Registry};
use std::collections::BTreeSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Flush the write-behind buffer once it holds this many bytes.
const WRITE_BEHIND_BYTES: usize = 64 * 1024;

/// Full buffers in flight to the writer thread before `submit` blocks.
/// Bounds the store's heap use at `(QUEUE + 1) × WRITE_BEHIND_BYTES`ish
/// and turns a persistently slow device into backpressure on the caller.
const WRITE_QUEUE_DEPTH: usize = 8;

enum WriteJob {
    /// Append `buf` to `file` (a shared handle to the active segment;
    /// appends from one queue stay in order, and the main thread never
    /// writes to a segment file again once its first buffer is queued).
    Write { file: Arc<File>, buf: Vec<u8> },
    /// Ack once every previously queued write has hit the OS.
    Barrier(mpsc::SyncSender<()>),
}

/// Background writer: the append path swaps its full write-behind buffer
/// for a recycled empty one and queues the full one here. First write
/// error is sticky and surfaces at the next submit/barrier.
struct WriteBehind {
    jobs: Option<mpsc::SyncSender<WriteJob>>,
    recycled: mpsc::Receiver<Vec<u8>>,
    error: Arc<Mutex<Option<std::io::Error>>>,
    thread: Option<JoinHandle<()>>,
}

impl WriteBehind {
    fn spawn() -> WriteBehind {
        let (jobs_tx, jobs_rx) = mpsc::sync_channel::<WriteJob>(WRITE_QUEUE_DEPTH);
        let (recycled_tx, recycled_rx) = mpsc::channel::<Vec<u8>>();
        let error = Arc::new(Mutex::new(None));
        let sticky = Arc::clone(&error);
        let thread = std::thread::Builder::new()
            .name("brisk-store-write".into())
            .spawn(move || {
                while let Ok(job) = jobs_rx.recv() {
                    match job {
                        WriteJob::Write { file, mut buf } => {
                            if sticky.lock().unwrap().is_none() {
                                if let Err(e) = (&*file).write_all(&buf) {
                                    *sticky.lock().unwrap() = Some(e);
                                }
                            }
                            buf.clear();
                            let _ = recycled_tx.send(buf);
                        }
                        WriteJob::Barrier(ack) => {
                            let _ = ack.send(());
                        }
                    }
                }
            })
            .expect("spawn brisk-store writer thread");
        WriteBehind {
            jobs: Some(jobs_tx),
            recycled: recycled_rx,
            error,
            thread: Some(thread),
        }
    }

    /// An empty buffer with warmed-up capacity, recycled from a completed
    /// write when one is available.
    fn take_buffer(&self) -> Vec<u8> {
        self.recycled
            .try_recv()
            .unwrap_or_else(|_| Vec::with_capacity(WRITE_BEHIND_BYTES + 1024))
    }

    fn submit(&self, file: Arc<File>, buf: Vec<u8>) -> Result<()> {
        self.check()?;
        self.jobs
            .as_ref()
            .expect("sender lives until drop")
            .send(WriteJob::Write { file, buf })
            .map_err(|_| thread_gone())?;
        Ok(())
    }

    /// Block until every queued write has been handed to the OS.
    fn barrier(&self) -> Result<()> {
        let (ack_tx, ack_rx) = mpsc::sync_channel(1);
        self.jobs
            .as_ref()
            .expect("sender lives until drop")
            .send(WriteJob::Barrier(ack_tx))
            .map_err(|_| thread_gone())?;
        ack_rx.recv().map_err(|_| thread_gone())?;
        self.check()
    }

    fn check(&self) -> Result<()> {
        match self.error.lock().unwrap().take() {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }
}

impl Drop for WriteBehind {
    fn drop(&mut self) {
        // Close the queue so the thread drains what is left and exits.
        drop(self.jobs.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Write `bytes` to `path` durably and atomically: a temp file is written
/// and fsynced, then renamed over the destination, so a crash leaves either
/// the old file or the complete new one — never a torn or page-cache-only
/// sidecar.
fn write_durable(path: &std::path::Path, bytes: &[u8]) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    Ok(())
}

fn thread_gone() -> BriskError {
    std::io::Error::new(
        std::io::ErrorKind::BrokenPipe,
        "store write-behind thread exited",
    )
    .into()
}

/// Monotonic totals the writer maintains; shared with telemetry `counter_fn`
/// sources so binding a registry costs nothing on the append path.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// Records appended.
    pub records: AtomicU64,
    /// Payload + framing bytes handed to the OS.
    pub bytes_written: AtomicU64,
    /// Segments created (including the repair pass's successor segment).
    pub segments_created: AtomicU64,
    /// Sealed segments currently retained.
    pub segments_live: AtomicU64,
    /// `fdatasync` calls issued.
    pub fsyncs: AtomicU64,
    /// Torn tails truncated during the open-time repair pass.
    pub torn_tail_truncations: AtomicU64,
    /// Sealed segments evicted by the retention policy.
    pub retention_evictions: AtomicU64,
    /// Sidecar indexes rebuilt during the open-time repair pass — missing,
    /// damaged, pre-zone-map (v1, back-filled), or stale (their seal stamp
    /// disagreed with the segment bytes, e.g. after a crash mid-seal).
    pub idx_rebuilds: AtomicU64,
}

/// A sealed segment the writer still tracks for retention accounting.
#[derive(Clone, Debug)]
struct SealedSegment {
    id: u64,
    bytes: u64,
    max_ts: UtcMicros,
}

struct ActiveSegment {
    id: u64,
    /// Shared with queued [`WriteJob`]s; cloning the `Arc` per handoff
    /// beats a `dup(2)` per flush.
    file: Arc<File>,
    /// Bytes logically appended (buffered + written).
    bytes: u64,
    /// Frames not yet handed to the OS.
    pending: Vec<u8>,
    records: u64,
    min_ts: UtcMicros,
    max_ts: UtcMicros,
    index: Vec<IndexEntry>,
    /// Node ids seen in this segment (zone map).
    nodes: BTreeSet<u32>,
    /// Sensor ids seen in this segment (zone map).
    sensors: SensorBloom,
    /// Offset and CRC word of the most recent frame (the sidecar's seal
    /// stamp).
    last_frame: Option<(u64, u32)>,
    /// Appends remaining until the next sparse-index entry (a countdown
    /// beats `records % index_every` on the hot path — the modulo by a
    /// runtime divisor was measurable per record).
    index_countdown: u32,
}

/// Append-only writer over a store directory (see module docs).
pub struct StoreWriter {
    cfg: StoreConfig,
    dir: PathBuf,
    active: Option<ActiveSegment>,
    sealed: Vec<SealedSegment>,
    next_segment_id: u64,
    known_nodes: BTreeSet<u32>,
    /// Node of the most recent append; skips the set lookup on the (vastly
    /// common) run of records from one node.
    last_node: Option<u32>,
    /// Appends not yet published to `stats` (drained at every flush point;
    /// two `fetch_add`s per record were measurable on the append path).
    unpublished_records: u64,
    /// Frame bytes not yet published to `stats`.
    unpublished_bytes: u64,
    /// Stream timestamp at the last sync; `FsyncPolicy::Interval` compares
    /// record timestamps against this (stream time, like retention, so the
    /// append path never reads the wall clock — an `Instant::now()` per
    /// record was measurable).
    last_sync_ts: UtcMicros,
    /// Newest appended record timestamp; drives age-based retention (the
    /// stream's own clock, so retention behaves identically under replay).
    last_ts: UtcMicros,
    stats: Arc<StoreStats>,
    fsync_micros: Option<Arc<Histogram>>,
    scratch: Vec<u8>,
    /// Background writer; `None` under `fsync=always`, which writes and
    /// syncs inline so each append's durability is settled on return.
    write_behind: Option<WriteBehind>,
}

impl StoreWriter {
    /// Open (and if necessary repair) the store at `cfg.dir`.
    pub fn open(cfg: &StoreConfig) -> Result<StoreWriter> {
        cfg.validate()?;
        let dir = cfg
            .dir
            .clone()
            .ok_or_else(|| BriskError::Config("StoreConfig.dir is required".into()))?;
        fs::create_dir_all(&dir)?;
        let stats = Arc::new(StoreStats::default());
        let mut sealed = Vec::new();
        let mut next_segment_id = 0u64;
        let mut known_nodes = BTreeSet::new();
        let mut last_ts = UtcMicros::from_micros(i64::MIN);
        for id in list_segment_ids(&dir)? {
            next_segment_id = id + 1;
            let seg_path = segment_path(&dir, id);
            let idx_path = index_path(&dir, id);
            let bytes = fs::read(&seg_path)?;
            // Trust a sidecar only when its seal stamp provably describes
            // these segment bytes: a crash in the seal window (or between a
            // compaction's two renames) can leave a sidecar whose offsets
            // point into bytes that never made it to disk. Pre-zone-map (v1)
            // sidecars carry no stamp and are back-filled here.
            let idx = match fs::read(&idx_path)
                .ok()
                .and_then(|b| SegmentIndex::decode(&b).ok())
                .filter(|i| i.segment_id == id && i.validate_against(&bytes))
            {
                Some(idx) => idx,
                None => {
                    // Crash before seal, a damaged/stale sidecar, or a v1
                    // sidecar: scan the segment, truncate any torn tail,
                    // rebuild the index.
                    let scan = match scan_segment(&bytes, 0) {
                        Ok(s) => s,
                        Err(_) => {
                            // Header never made it to disk: nothing in this
                            // file is recoverable.
                            brisk_telemetry::flight_log!(
                                Error,
                                "store.writer",
                                "torn_tail",
                                "segment {id} unreadable (header lost in crash): removed"
                            );
                            fs::remove_file(&seg_path)?;
                            stats.torn_tail_truncations.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    if scan.torn_bytes > 0 {
                        brisk_telemetry::flight_log!(
                            Warn,
                            "store.writer",
                            "torn_tail",
                            "segment {id}: {} torn bytes truncated at offset {} during crash repair",
                            scan.torn_bytes,
                            scan.structural_end
                        );
                        let f = OpenOptions::new().write(true).open(&seg_path)?;
                        f.set_len(scan.structural_end)?;
                        f.sync_all()?;
                        stats.torn_tail_truncations.fetch_add(1, Ordering::Relaxed);
                        stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                    }
                    let idx = index_of_scan(&scan, cfg.index_every, scan.structural_end);
                    write_durable(&idx_path, &idx.encode())?;
                    stats.idx_rebuilds.fetch_add(1, Ordering::Relaxed);
                    idx
                }
            };
            last_ts = last_ts.max(idx.max_ts);
            sealed.push(SealedSegment {
                id,
                bytes: fs::metadata(&seg_path)?.len(),
                max_ts: idx.max_ts,
            });
        }
        // Seed the known-node set from the newest segment's header.
        if let Some(last) = sealed.last() {
            if let Ok(bytes) = fs::read(segment_path(&dir, last.id)) {
                if let Ok((header, _)) = SegmentHeader::decode(&bytes) {
                    known_nodes.extend(header.nodes);
                }
            }
        }
        stats
            .segments_live
            .store(sealed.len() as u64, Ordering::Relaxed);
        Ok(StoreWriter {
            cfg: cfg.clone(),
            dir,
            active: None,
            sealed,
            next_segment_id,
            known_nodes,
            last_node: None,
            unpublished_records: 0,
            unpublished_bytes: 0,
            last_sync_ts: last_ts,
            last_ts,
            stats,
            fsync_micros: None,
            scratch: Vec::with_capacity(256),
            write_behind: (cfg.fsync != FsyncPolicy::Always).then(WriteBehind::spawn),
        })
    }

    /// The directory this writer appends into.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Shared handle to the writer's monotonic totals.
    pub fn stats(&self) -> Arc<StoreStats> {
        Arc::clone(&self.stats)
    }

    /// Register the store's telemetry series (`brisk_store_*`) with a
    /// metrics registry.
    pub fn bind_telemetry(&mut self, registry: &Registry) {
        let s = self.stats();
        macro_rules! counter {
            ($name:literal, $help:literal, $field:ident) => {{
                let s = Arc::clone(&s);
                registry.counter_fn($name, $help, &[], move || s.$field.load(Ordering::Relaxed));
            }};
        }
        counter!(
            "brisk_store_records_total",
            "Records appended to the durable trace store",
            records
        );
        counter!(
            "brisk_store_bytes_written_total",
            "Frame bytes appended to segment files",
            bytes_written
        );
        counter!(
            "brisk_store_segments_created_total",
            "Segment files created",
            segments_created
        );
        counter!(
            "brisk_store_fsyncs_total",
            "fdatasync calls issued by the store writer",
            fsyncs
        );
        counter!(
            "brisk_store_torn_tail_truncations_total",
            "Torn segment tails truncated during crash repair",
            torn_tail_truncations
        );
        counter!(
            "brisk_store_retention_evictions_total",
            "Sealed segments evicted by the retention policy",
            retention_evictions
        );
        counter!(
            "brisk_store_idx_rebuilds_total",
            "Sidecar indexes rebuilt on open (missing, damaged, v1 or stale)",
            idx_rebuilds
        );
        {
            let s = Arc::clone(&s);
            registry.gauge_fn(
                "brisk_store_segments_live",
                "Sealed segments currently on disk",
                &[],
                move || s.segments_live.load(Ordering::Relaxed) as i64,
            );
        }
        self.fsync_micros = Some(registry.histogram(
            "brisk_store_fsync_micros",
            "Latency of store fdatasync calls (µs)",
        ));
    }

    /// Append one record; durability is governed by the fsync policy.
    pub fn append(&mut self, rec: &EventRecord) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        binenc::encode_record(rec, &mut scratch);
        let result = self.append_encoded(rec, &scratch);
        self.scratch = scratch;
        result
    }

    /// Append a record whose `binenc` payload the caller already produced.
    ///
    /// `payload` **must** be `binenc::encode_record(rec)` — the record is
    /// used for index/retention bookkeeping, the payload is what lands in
    /// the frame. The ISM delivery path encodes each record once for its
    /// memory buffer and hands the same bytes here, so attaching the store
    /// adds framing and a CRC but no second encode.
    pub fn append_encoded(&mut self, rec: &EventRecord, payload: &[u8]) -> Result<()> {
        let frame_len = (payload.len() + crate::segment::FRAME_OVERHEAD) as u64;

        // Rotate before the append that would overflow the segment bound.
        if let Some(active) = &self.active {
            if active.records > 0 && active.bytes + frame_len > self.cfg.segment_bytes {
                self.seal_active()?;
            }
        }
        if self.active.is_none() {
            self.open_segment(rec)?;
        }
        let active = self.active.as_mut().expect("opened above");
        if active.index_countdown == 0 {
            active.index.push(IndexEntry {
                ordinal: active.records,
                offset: active.bytes,
                ts: rec.ts,
            });
            active.index_countdown = self.cfg.index_every;
        }
        active.index_countdown -= 1;
        let before = active.pending.len();
        append_frame(payload, &mut active.pending);
        let crc = u32::from_le_bytes(
            active.pending[before + 4..before + 8]
                .try_into()
                .expect("4 bytes"),
        );
        active.last_frame = Some((active.bytes, crc));
        active.bytes += (active.pending.len() - before) as u64;
        active.records += 1;
        active.min_ts = active.min_ts.min(rec.ts);
        active.max_ts = active.max_ts.max(rec.ts);
        active.nodes.insert(rec.node.0);
        active.sensors.insert(rec.sensor.0);
        let pending_len = active.pending.len();
        if self.last_node != Some(rec.node.0) {
            self.known_nodes.insert(rec.node.0);
            self.last_node = Some(rec.node.0);
        }
        self.last_ts = self.last_ts.max(rec.ts);
        self.unpublished_records += 1;
        self.unpublished_bytes += frame_len;

        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::Interval(d) => {
                if pending_len >= WRITE_BEHIND_BYTES {
                    self.write_pending()?;
                }
                let elapsed = rec
                    .ts
                    .as_micros()
                    .saturating_sub(self.last_sync_ts.as_micros());
                if elapsed >= d.as_micros() as i64 {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {
                if pending_len >= WRITE_BEHIND_BYTES {
                    self.write_pending()?;
                }
            }
        }
        Ok(())
    }

    /// Hand buffered frames off the append path: queue them to the writer
    /// thread when one is running, else `write` them inline (no fsync).
    fn write_pending(&mut self) -> Result<()> {
        if self.unpublished_records > 0 {
            self.stats
                .records
                .fetch_add(self.unpublished_records, Ordering::Relaxed);
            self.stats
                .bytes_written
                .fetch_add(self.unpublished_bytes, Ordering::Relaxed);
            self.unpublished_records = 0;
            self.unpublished_bytes = 0;
        }
        if let Some(active) = &mut self.active {
            if !active.pending.is_empty() {
                if let Some(wb) = &self.write_behind {
                    let full = std::mem::replace(&mut active.pending, wb.take_buffer());
                    wb.submit(Arc::clone(&active.file), full)?;
                } else {
                    (&*active.file).write_all(&active.pending)?;
                    active.pending.clear();
                }
            }
        }
        Ok(())
    }

    /// Block until every frame handed to the writer thread has reached the
    /// OS. No-op when writes are inline.
    fn drain_writes(&self) -> Result<()> {
        match &self.write_behind {
            Some(wb) => wb.barrier(),
            None => Ok(()),
        }
    }

    /// Drain the write-behind buffer and `fdatasync` the active segment.
    pub fn sync(&mut self) -> Result<()> {
        self.write_pending()?;
        self.drain_writes()?;
        if let Some(active) = &self.active {
            let start = Instant::now();
            active.file.sync_data()?;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = &self.fsync_micros {
                h.record(start.elapsed().as_micros() as u64);
            }
        }
        self.last_sync_ts = self.last_ts;
        Ok(())
    }

    /// Seal the active segment (if any): drain buffers, write the sidecar
    /// index, fsync as the policy requires, then apply retention.
    pub fn seal_active(&mut self) -> Result<()> {
        self.write_pending()?;
        self.drain_writes()?;
        let Some(active) = self.active.take() else {
            return Ok(());
        };
        if self.cfg.fsync != FsyncPolicy::Never {
            let start = Instant::now();
            active.file.sync_data()?;
            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            if let Some(h) = &self.fsync_micros {
                h.record(start.elapsed().as_micros() as u64);
            }
        }
        let (last_frame_offset, tail_crc) = active.last_frame.unwrap_or((0, 0));
        let idx = SegmentIndex {
            segment_id: active.id,
            record_count: active.records,
            min_ts: active.min_ts,
            max_ts: active.max_ts,
            entries: active.index,
            zone: Some(ZoneMap {
                nodes: active.nodes.iter().copied().collect(),
                sensors: active.sensors,
                seg_len: active.bytes,
                last_frame_offset,
                tail_crc,
            }),
        };
        // Durable and atomic: a crash must never leave a half-written
        // sidecar that a later open would trust, and the segment's own
        // data is already synced above, so the sidecar must not be the
        // one thing the page cache still owns.
        write_durable(&index_path(&self.dir, active.id), &idx.encode())?;
        self.sealed.push(SealedSegment {
            id: active.id,
            bytes: active.bytes,
            max_ts: active.max_ts,
        });
        self.stats
            .segments_live
            .store(self.sealed.len() as u64, Ordering::Relaxed);
        self.apply_retention()?;
        Ok(())
    }

    fn open_segment(&mut self, first: &EventRecord) -> Result<()> {
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        let mut nodes: Vec<u32> = self.known_nodes.iter().copied().collect();
        if !self.known_nodes.contains(&first.node.0) {
            nodes.push(first.node.0);
            nodes.sort_unstable();
        }
        let header = SegmentHeader {
            version: FORMAT_VERSION,
            segment_id: id,
            base_ts: first.ts,
            nodes,
        };
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(&self.dir, id))?;
        let header_bytes = header.encode();
        file.write_all(&header_bytes)?;
        self.stats.segments_created.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(header_bytes.len() as u64, Ordering::Relaxed);
        self.active = Some(ActiveSegment {
            id,
            file: Arc::new(file),
            bytes: header_bytes.len() as u64,
            pending: Vec::with_capacity(WRITE_BEHIND_BYTES + 1024),
            records: 0,
            min_ts: UtcMicros::MAX,
            max_ts: first.ts,
            index: Vec::new(),
            nodes: BTreeSet::new(),
            sensors: SensorBloom::new(),
            last_frame: None,
            index_countdown: 0,
        });
        Ok(())
    }

    /// Evict sealed segments that exceed the byte or age bound. The active
    /// segment is never evicted.
    fn apply_retention(&mut self) -> Result<()> {
        let mut evict = 0usize;
        if let Some(age) = self.cfg.retain_age {
            let cutoff = self
                .last_ts
                .as_micros()
                .saturating_sub(age.as_micros() as i64);
            while evict < self.sealed.len().saturating_sub(1)
                && self.sealed[evict].max_ts.as_micros() < cutoff
            {
                evict += 1;
            }
        }
        if self.cfg.retain_bytes > 0 {
            let active_bytes = self.active.as_ref().map(|a| a.bytes).unwrap_or(0);
            let mut total: u64 = self.sealed.iter().map(|s| s.bytes).sum::<u64>() + active_bytes;
            let mut i = 0usize;
            while total > self.cfg.retain_bytes && i < self.sealed.len().saturating_sub(1) {
                total -= self.sealed[i].bytes;
                i += 1;
            }
            evict = evict.max(i);
        }
        for seg in self.sealed.drain(..evict) {
            let _ = fs::remove_file(segment_path(&self.dir, seg.id));
            let _ = fs::remove_file(index_path(&self.dir, seg.id));
            self.stats
                .retention_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        self.stats
            .segments_live
            .store(self.sealed.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

impl EventSink for StoreWriter {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self.append(rec)
    }

    fn flush(&mut self) -> Result<()> {
        match self.cfg.fsync {
            FsyncPolicy::Never => {
                // Drain so flushed frames are visible to readers (tailers
                // poll the file right after a flush) — but no fsync.
                self.write_pending()?;
                self.drain_writes()
            }
            _ => self.sync(),
        }
    }
}

impl Drop for StoreWriter {
    fn drop(&mut self) {
        // Seal so readers get a sidecar index and no repair pass is needed
        // after a clean shutdown. Errors are ignored: drop must not panic,
        // and a failed seal degrades to the crash-recovery path.
        let _ = self.seal_active();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StoreReader;
    use brisk_core::{EventTypeId, NodeId, SensorId, Value};
    use std::sync::atomic::AtomicU32;

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "brisk-store-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn rec(node: u32, seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::U64(seq), Value::Str("payload".into())],
        )
        .unwrap()
    }

    fn cfg(dir: &std::path::Path) -> StoreConfig {
        let mut c = StoreConfig::at(dir.to_path_buf());
        c.segment_bytes = 4096;
        c.fsync = FsyncPolicy::Never;
        c
    }

    #[test]
    fn write_reopen_read_round_trip() {
        let dir = temp_dir("roundtrip");
        let cfg = cfg(&dir);
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for i in 0..500 {
                w.append(&rec(1, i, i as i64 * 100)).unwrap();
            }
        } // drop seals
        let reader = StoreReader::open(&dir).unwrap();
        let (recs, report) = reader.read_all().unwrap();
        assert_eq!(recs.len(), 500);
        assert_eq!(report.torn_tail_truncations, 0);
        assert_eq!(report.corrupt_frames, 0);
        assert!(report.segments > 1, "4 KiB segments must have rotated");
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_writer_continues_segment_ids() {
        let dir = temp_dir("reopen");
        let cfg = cfg(&dir);
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for i in 0..100 {
                w.append(&rec(2, i, i as i64)).unwrap();
            }
        }
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for i in 100..200 {
                w.append(&rec(2, i, i as i64)).unwrap();
            }
        }
        let reader = StoreReader::open(&dir).unwrap();
        let (recs, _) = reader.read_all().unwrap();
        assert_eq!(recs.len(), 200);
        let ids = reader.segment_ids().unwrap();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
        assert_eq!(
            ids.len() as u64,
            ids.last().unwrap() + 1 - ids.first().unwrap(),
            "segment ids stay contiguous across reopen"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_repaired_on_reopen() {
        let dir = temp_dir("repair");
        let cfg = cfg(&dir);
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for i in 0..40 {
                w.append(&rec(1, i, i as i64)).unwrap();
            }
            w.flush().unwrap();
            // Simulate a crash: forget the writer without sealing.
            std::mem::forget(w);
        }
        // Tear the last segment by hand.
        let ids = list_segment_ids(&dir).unwrap();
        let last = segment_path(&dir, *ids.last().unwrap());
        let len = fs::metadata(&last).unwrap().len();
        let f = OpenOptions::new().write(true).open(&last).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let w = StoreWriter::open(&cfg).unwrap();
        assert_eq!(
            w.stats().torn_tail_truncations.load(Ordering::Relaxed),
            1,
            "repair pass must count the torn tail"
        );
        drop(w);
        let (recs, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        assert_eq!(recs.len(), 39, "every intact record survives");
        assert_eq!(report.torn_tail_truncations, 0, "tail already truncated");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Stale sidecar after a crash in the seal window (satellite bugfix 2):
    /// the sidecar index reached disk but part of the segment's data never
    /// did. Reopen used to trust any sidecar that merely decoded; it must
    /// instead validate the sidecar's seal stamp against the segment bytes,
    /// rebuild the index and truncate the torn tail.
    #[test]
    fn stale_sidecar_is_detected_and_rebuilt_on_reopen() {
        let dir = temp_dir("stale-idx");
        let cfg = cfg(&dir);
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for i in 0..40 {
                w.append(&rec(1, i, i as i64)).unwrap();
            }
        } // drop seals: segment 0 has a sidecar with a seal stamp
        let ids = list_segment_ids(&dir).unwrap();
        let first = segment_path(&dir, ids[0]);
        // Simulate the crash: the sidecar survived, the tail of the
        // segment's data did not (page cache lost it before the rename).
        let len = fs::metadata(&first).unwrap().len();
        let f = OpenOptions::new().write(true).open(&first).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);

        let w = StoreWriter::open(&cfg).unwrap();
        assert_eq!(
            w.stats().idx_rebuilds.load(Ordering::Relaxed),
            1,
            "stale sidecar must be detected and rebuilt"
        );
        assert_eq!(
            w.stats().torn_tail_truncations.load(Ordering::Relaxed),
            1,
            "the torn tail hiding behind the stale sidecar must be repaired"
        );
        drop(w);
        let (recs, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        assert_eq!(report.torn_tail_truncations, 0, "repair already done");
        assert!(
            recs.iter().take_while(|r| r.node.0 == 1).count() > 0,
            "intact records before the tear survive"
        );
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        let _ = fs::remove_dir_all(&dir);
    }

    /// Pre-zone-map (v1) sidecars carry no seal stamp: reopening a store
    /// sealed by an older writer back-fills them with zoned v2 sidecars.
    #[test]
    fn v1_sidecar_is_backfilled_with_zone_map_on_reopen() {
        let dir = temp_dir("backfill");
        let cfg = cfg(&dir);
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for i in 0..40 {
                w.append(&rec(3, i, i as i64)).unwrap();
            }
        }
        let ids = list_segment_ids(&dir).unwrap();
        // Strip segment 0's sidecar down to v1 (no zone map), as an older
        // writer would have written it.
        let idx_path = index_path(&dir, ids[0]);
        let mut idx = SegmentIndex::decode(&fs::read(&idx_path).unwrap()).unwrap();
        idx.zone = None;
        fs::write(&idx_path, idx.encode()).unwrap();

        let w = StoreWriter::open(&cfg).unwrap();
        assert!(w.stats().idx_rebuilds.load(Ordering::Relaxed) >= 1);
        drop(w);
        let reloaded = SegmentIndex::decode(&fs::read(&idx_path).unwrap()).unwrap();
        let zone = reloaded.zone.expect("back-filled sidecar is zoned");
        assert_eq!(zone.nodes, vec![3]);
        assert!(zone.sensors.may_contain(0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_retention_evicts_oldest() {
        let dir = temp_dir("retention");
        let mut cfg = cfg(&dir);
        cfg.retain_bytes = 12 * 1024;
        let mut w = StoreWriter::open(&cfg).unwrap();
        for i in 0..2000 {
            w.append(&rec(1, i, i as i64 * 10)).unwrap();
        }
        w.seal_active().unwrap();
        assert!(
            w.stats().retention_evictions.load(Ordering::Relaxed) > 0,
            "2000 records cannot fit in 12 KiB of 4 KiB segments"
        );
        let total: u64 = list_segment_ids(&dir)
            .unwrap()
            .iter()
            .map(|&id| fs::metadata(segment_path(&dir, id)).unwrap().len())
            .sum();
        assert!(total <= cfg.retain_bytes + cfg.segment_bytes);
        // Survivors are the newest records, contiguous to the end.
        let (recs, _) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        assert_eq!(recs.last().unwrap().seq, 1999);
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn age_retention_uses_stream_time() {
        let dir = temp_dir("age");
        let mut cfg = cfg(&dir);
        cfg.retain_age = Some(std::time::Duration::from_micros(500));
        let mut w = StoreWriter::open(&cfg).unwrap();
        for i in 0..2000 {
            w.append(&rec(1, i, i as i64)).unwrap(); // 1 µs per record
        }
        w.seal_active().unwrap();
        assert!(w.stats().retention_evictions.load(Ordering::Relaxed) > 0);
        let (recs, _) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        // Oldest surviving segment may reach below the cutoff, but whole
        // segments strictly older than it are gone.
        assert!(recs.first().unwrap().ts.as_micros() > 0);
        assert_eq!(recs.last().unwrap().seq, 1999);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_always_counts_syncs() {
        let dir = temp_dir("always");
        let mut cfg = cfg(&dir);
        cfg.fsync = FsyncPolicy::Always;
        let mut w = StoreWriter::open(&cfg).unwrap();
        for i in 0..10 {
            w.append(&rec(1, i, i as i64)).unwrap();
        }
        assert!(w.stats().fsyncs.load(Ordering::Relaxed) >= 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seek_by_timestamp() {
        let dir = temp_dir("seek");
        let cfg = cfg(&dir);
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for i in 0..1000 {
                w.append(&rec(1, i, 1_000_000 + i as i64 * 1000)).unwrap();
            }
        }
        let reader = StoreReader::open(&dir).unwrap();
        let from = UtcMicros::from_micros(1_000_000 + 700 * 1000);
        let (recs, _) = reader.read_from(from).unwrap();
        assert_eq!(recs.len(), 300);
        assert_eq!(recs[0].seq, 700);
        assert!(recs.iter().all(|r| r.ts >= from));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tailer_follows_rotation() {
        let dir = temp_dir("tail");
        let cfg = cfg(&dir);
        let mut w = StoreWriter::open(&cfg).unwrap();
        let reader = StoreReader::open(&dir).unwrap();
        let mut tail = reader.tail();
        let mut seen = 0u64;
        for i in 0..600 {
            w.append(&rec(1, i, i as i64)).unwrap();
            if i % 97 == 0 {
                w.flush().unwrap(); // make buffered frames visible
                for r in tail.poll().unwrap() {
                    assert_eq!(r.seq, seen);
                    seen += 1;
                }
            }
        }
        w.flush().unwrap();
        for r in tail.poll().unwrap() {
            assert_eq!(r.seq, seen);
            seen += 1;
        }
        assert_eq!(seen, 600);
        assert_eq!(tail.corrupt_frames(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_binds_store_series() {
        let dir = temp_dir("telemetry");
        let cfg = cfg(&dir);
        let registry = Registry::new();
        let mut w = StoreWriter::open(&cfg).unwrap();
        w.bind_telemetry(&registry);
        for i in 0..100 {
            w.append(&rec(1, i, i as i64)).unwrap();
        }
        w.sync().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_store_records_total"), 100);
        assert!(snap.counter_total("brisk_store_bytes_written_total") > 0);
        assert!(snap.counter_total("brisk_store_fsyncs_total") >= 1);
        let h = snap.histogram("brisk_store_fsync_micros").unwrap();
        assert!(h.count() >= 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
