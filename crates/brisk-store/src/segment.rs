//! On-disk segment format.
//!
//! A store directory holds a sequence of fixed-size-bounded segment files
//! named `seg-<id:016x>.seg`, each optionally accompanied by a sparse-index
//! sidecar `seg-<id:016x>.idx` written when the segment is sealed. Layout
//! of a `.seg` file:
//!
//! ```text
//! +----------------------------+
//! | magic  "BRISKSEG"  (8 B)   |
//! | XDR header:                |
//! |   uint    format version   |
//! |   uhyper  segment id       |
//! |   hyper   base timestamp   |   first record's UtcMicros
//! |   uint    node count       |
//! |   uint[]  node ids         |   nodes known when the segment opened
//! |   uint    CRC-32           |   over the XDR bytes above
//! +----------------------------+
//! | frame 0:                   |
//! |   u32 LE  payload length   |
//! |   u32 LE  CRC-32(payload)  |
//! |   payload (binenc record)  |
//! | frame 1: …                 |
//! +----------------------------+
//! ```
//!
//! The header is RFC-1832 XDR (big-endian, like every BRISK control
//! structure on the wire); frames use the native little-endian framing of
//! the data path, and each payload is exactly one
//! [`brisk_core::binenc`]-encoded record. A crash can leave a *torn tail*
//! — a final frame whose bytes were only partially written; recovery
//! truncates it (see `reader`).
//!
//! The `.idx` sidecar caches one `(record ordinal, file offset, timestamp)`
//! entry per `index_every` records plus the segment's record count and
//! timestamp range, so seeks do not scan sealed segments. It is a pure
//! cache: when missing or corrupt, readers fall back to scanning the `.seg`
//! file, which remains the single source of truth.
//!
//! ## Index v2: zone maps and the seal stamp
//!
//! Version-2 sidecars extend v1 with a *zone map* — the distinct node-id
//! set, a 256-bit bloom filter over sensor ids, and (inherited from v1)
//! the min/max timestamp — so a query can prune a sealed segment without
//! reading its `.seg` file at all. They also carry a *seal stamp*: the
//! segment's byte length, the offset of its last frame, and that frame's
//! CRC as they were at seal time. A sidecar whose stamp disagrees with
//! the segment bytes (crash between segment fsync and idx write, or a
//! compaction that swapped the segment under it) is *stale* and must be
//! ignored/rebuilt; see [`SegmentIndex::validate_against`]. V1 sidecars
//! decode fine (`zone: None`) and are back-filled to v2 on writer open.
//!
//! ## Compacted segments (format version 2)
//!
//! Cold sealed segments may be rewritten in a compacted format: the
//! header (version 2) additionally carries a descriptor dictionary of
//! the distinct record shapes, and each CRC frame holds a *block* of
//! delta-encoded records instead of a single binenc record (see
//! `compact`). [`decode_any_header`] dispatches on the version.

use crate::crc::crc32;
use brisk_core::{BriskError, Result, UtcMicros};
use brisk_proto::DescriptorDict;
use brisk_xdr::{XdrDecoder, XdrEncoder};
use std::path::{Path, PathBuf};

/// Magic prefix of a segment file.
pub const SEG_MAGIC: &[u8; 8] = b"BRISKSEG";
/// Magic prefix of an index sidecar.
pub const IDX_MAGIC: &[u8; 8] = b"BRISKIDX";
/// On-disk format version (plain, one binenc record per frame).
pub const FORMAT_VERSION: u32 = 1;
/// On-disk format version of compacted segments (dictionary + delta
/// blocks, one block per frame).
pub const COMPACT_VERSION: u32 = 2;
/// Sidecar format version carrying zone maps + the seal stamp.
pub const IDX_ZONED_VERSION: u32 = 2;
/// Bytes of frame header preceding each payload (length + CRC).
pub const FRAME_OVERHEAD: usize = 8;
/// Upper bound on a sane frame payload; anything larger in a length word
/// means the file is corrupt at that point.
pub const MAX_FRAME_BYTES: u32 = 1 << 24;
/// Upper bound on the node set recorded in a header.
const MAX_HEADER_NODES: usize = 64 * 1024;
/// Upper bound on index entries in a sidecar.
const MAX_INDEX_ENTRIES: usize = 1 << 24;

/// File name of segment `id` (zero-padded hex keeps lexicographic order
/// equal to numeric order).
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:016x}.seg")
}

/// File name of the index sidecar of segment `id`.
pub fn index_file_name(id: u64) -> String {
    format!("seg-{id:016x}.idx")
}

/// Path of segment `id` under `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(segment_file_name(id))
}

/// Path of the index sidecar of segment `id` under `dir`.
pub fn index_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(index_file_name(id))
}

/// Parse a segment id back out of a `seg-<id>.seg` file name.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The XDR-encoded metadata at the start of every segment file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// On-disk format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Monotonically increasing segment id, unique within a store.
    pub segment_id: u64,
    /// Timestamp of the first record appended to this segment.
    pub base_ts: UtcMicros,
    /// Node ids the store had seen when the segment was opened (advisory:
    /// later segments accumulate nodes as they appear in the stream).
    pub nodes: Vec<u32>,
}

impl SegmentHeader {
    /// Encode magic + header, returning the bytes to place at offset 0.
    pub fn encode(&self) -> Vec<u8> {
        let mut xdr = XdrEncoder::with_capacity(32 + 4 * self.nodes.len());
        xdr.uint(self.version)
            .uhyper(self.segment_id)
            .hyper(self.base_ts.as_micros())
            .uint(self.nodes.len() as u32);
        for &n in &self.nodes {
            xdr.uint(n);
        }
        let body = xdr.as_bytes().to_vec();
        let crc = crc32(&body);
        xdr.uint(crc);
        let mut out = Vec::with_capacity(8 + xdr.len());
        out.extend_from_slice(SEG_MAGIC);
        out.extend_from_slice(xdr.as_bytes());
        out
    }

    /// Decode a header from the start of a segment file. Returns the header
    /// and the offset of the first frame. Accepts both plain and compacted
    /// segments; use [`decode_any_header`] when the dictionary is needed.
    pub fn decode(bytes: &[u8]) -> Result<(SegmentHeader, usize)> {
        let (header, _, off) = decode_any_header(bytes)?;
        Ok((header, off))
    }
}

/// What follows a segment header: plain binenc frames, or compact blocks
/// decoded against the header's descriptor dictionary.
#[derive(Clone, Debug, PartialEq)]
pub enum SegmentBody {
    /// Format v1: each frame payload is one binenc record.
    Plain,
    /// Format v2: each frame payload is a delta-encoded block referring
    /// to this dictionary.
    Compact(DescriptorDict),
}

/// Decode a segment header of either format version. Returns the header,
/// the body kind (with the descriptor dictionary for compacted segments),
/// and the offset of the first frame.
pub fn decode_any_header(bytes: &[u8]) -> Result<(SegmentHeader, SegmentBody, usize)> {
    if bytes.len() < 8 || &bytes[..8] != SEG_MAGIC {
        return Err(BriskError::Codec("bad segment magic".into()));
    }
    let mut dec = XdrDecoder::new(&bytes[8..]);
    let version = dec.uint()?;
    if version != FORMAT_VERSION && version != COMPACT_VERSION {
        return Err(BriskError::Codec(format!(
            "unsupported segment format version {version}"
        )));
    }
    let segment_id = dec.uhyper()?;
    let base_ts = UtcMicros::from_micros(dec.hyper()?);
    let n = dec.uint()? as usize;
    if n > MAX_HEADER_NODES {
        return Err(BriskError::Codec(format!("absurd header node count {n}")));
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        nodes.push(dec.uint()?);
    }
    let body = if version == COMPACT_VERSION {
        SegmentBody::Compact(DescriptorDict::decode(&mut dec)?)
    } else {
        SegmentBody::Plain
    };
    let body_len = dec.position();
    let want = crc32(&bytes[8..8 + body_len]);
    let got = dec.uint()?;
    if want != got {
        return Err(BriskError::Codec("segment header CRC mismatch".into()));
    }
    let header = SegmentHeader {
        version,
        segment_id,
        base_ts,
        nodes,
    };
    Ok((header, body, 8 + dec.position()))
}

/// Encode magic + compacted (version-2) header: the common header fields
/// followed by the descriptor dictionary the segment's blocks refer to.
pub fn encode_compact_header(
    segment_id: u64,
    base_ts: UtcMicros,
    nodes: &[u32],
    dict: &DescriptorDict,
) -> Vec<u8> {
    let mut xdr = XdrEncoder::with_capacity(64 + 4 * nodes.len() + 16 * dict.len());
    xdr.uint(COMPACT_VERSION)
        .uhyper(segment_id)
        .hyper(base_ts.as_micros())
        .uint(nodes.len() as u32);
    for &n in nodes {
        xdr.uint(n);
    }
    dict.encode(&mut xdr);
    let crc = crc32(xdr.as_bytes());
    xdr.uint(crc);
    let mut out = Vec::with_capacity(8 + xdr.len());
    out.extend_from_slice(SEG_MAGIC);
    out.extend_from_slice(xdr.as_bytes());
    out
}

/// Append one CRC-framed payload to `out`.
pub fn append_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One sparse-index entry: every `index_every`-th record's position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Zero-based ordinal of the record within its segment.
    pub ordinal: u64,
    /// Byte offset of the record's frame within the segment file.
    pub offset: u64,
    /// The record's timestamp.
    pub ts: UtcMicros,
}

/// A 256-bit bloom filter over sensor ids (two probes per id). Sized for
/// the common case — tens of distinct sensors per segment — where the
/// false-positive rate stays under ~2%; at higher cardinality it degrades
/// toward "may contain anything", which only costs a wasted scan, never a
/// missed record.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SensorBloom(pub [u64; 4]);

impl SensorBloom {
    /// An empty filter (matches nothing).
    pub fn new() -> SensorBloom {
        SensorBloom::default()
    }

    fn probes(id: u32) -> (u32, u32) {
        // SplitMix64 finalizer: cheap, well-mixed 64 bits from the id;
        // the low and high halves give two independent probe positions.
        let mut x = (id as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        ((x & 0xFF) as u32, ((x >> 32) & 0xFF) as u32)
    }

    /// Insert a sensor id.
    pub fn insert(&mut self, id: u32) {
        let (a, b) = Self::probes(id);
        self.0[(a >> 6) as usize] |= 1 << (a & 63);
        self.0[(b >> 6) as usize] |= 1 << (b & 63);
    }

    /// False means the id is definitely absent; true means it may be
    /// present.
    pub fn may_contain(&self, id: u32) -> bool {
        let (a, b) = Self::probes(id);
        self.0[(a >> 6) as usize] & (1 << (a & 63)) != 0
            && self.0[(b >> 6) as usize] & (1 << (b & 63)) != 0
    }

    fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.0.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn from_bytes(bytes: &[u8]) -> Result<SensorBloom> {
        if bytes.len() != 32 {
            return Err(BriskError::Codec("bad sensor bloom length".into()));
        }
        let mut words = [0u64; 4];
        for (i, w) in words.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(b);
        }
        Ok(SensorBloom(words))
    }
}

/// The v2 sidecar extension: per-segment zone map plus the seal stamp
/// that binds the sidecar to the exact segment bytes it was built from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoneMap {
    /// Distinct node ids appearing in the segment, sorted ascending.
    pub nodes: Vec<u32>,
    /// Bloom filter over distinct sensor ids in the segment.
    pub sensors: SensorBloom,
    /// Segment file length, in bytes, at seal time.
    pub seg_len: u64,
    /// Offset of the last frame at seal time (0 when the segment holds
    /// no frames).
    pub last_frame_offset: u64,
    /// Stored CRC word of the last frame (0 when no frames).
    pub tail_crc: u32,
}

/// The sealed-segment summary stored in a `.idx` sidecar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentIndex {
    /// Segment this index describes.
    pub segment_id: u64,
    /// Total records in the segment.
    pub record_count: u64,
    /// Smallest record timestamp in the segment.
    pub min_ts: UtcMicros,
    /// Largest record timestamp in the segment.
    pub max_ts: UtcMicros,
    /// Sparse entries, ascending by ordinal.
    pub entries: Vec<IndexEntry>,
    /// Zone map + seal stamp. `None` for v1 sidecars written before zone
    /// maps existed; the writer back-fills these on open.
    pub zone: Option<ZoneMap>,
}

impl SegmentIndex {
    /// Encode magic + index for the sidecar file. Writes the v2 layout
    /// when a zone map is present, the original v1 layout otherwise.
    pub fn encode(&self) -> Vec<u8> {
        let mut xdr = XdrEncoder::with_capacity(128 + 24 * self.entries.len());
        let version = if self.zone.is_some() {
            IDX_ZONED_VERSION
        } else {
            FORMAT_VERSION
        };
        xdr.uint(version)
            .uhyper(self.segment_id)
            .uhyper(self.record_count)
            .hyper(self.min_ts.as_micros())
            .hyper(self.max_ts.as_micros())
            .uint(self.entries.len() as u32);
        for e in &self.entries {
            xdr.uhyper(e.ordinal)
                .uhyper(e.offset)
                .hyper(e.ts.as_micros());
        }
        if let Some(zone) = &self.zone {
            xdr.uint(zone.nodes.len() as u32);
            for &n in &zone.nodes {
                xdr.uint(n);
            }
            xdr.opaque_fixed(&zone.sensors.to_bytes());
            xdr.uhyper(zone.seg_len)
                .uhyper(zone.last_frame_offset)
                .uint(zone.tail_crc);
        }
        let crc = crc32(xdr.as_bytes());
        xdr.uint(crc);
        let mut out = Vec::with_capacity(8 + xdr.len());
        out.extend_from_slice(IDX_MAGIC);
        out.extend_from_slice(xdr.as_bytes());
        out
    }

    /// Decode a sidecar file. Any corruption is an error: callers treat a
    /// bad sidecar as absent and rescan the segment itself.
    pub fn decode(bytes: &[u8]) -> Result<SegmentIndex> {
        if bytes.len() < 8 || &bytes[..8] != IDX_MAGIC {
            return Err(BriskError::Codec("bad index magic".into()));
        }
        let mut dec = XdrDecoder::new(&bytes[8..]);
        let version = dec.uint()?;
        if version != FORMAT_VERSION && version != IDX_ZONED_VERSION {
            return Err(BriskError::Codec(format!(
                "unsupported index format version {version}"
            )));
        }
        let segment_id = dec.uhyper()?;
        let record_count = dec.uhyper()?;
        let min_ts = UtcMicros::from_micros(dec.hyper()?);
        let max_ts = UtcMicros::from_micros(dec.hyper()?);
        let n = dec.uint()? as usize;
        if n > MAX_INDEX_ENTRIES {
            return Err(BriskError::Codec(format!("absurd index entry count {n}")));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let ordinal = dec.uhyper()?;
            let offset = dec.uhyper()?;
            let ts = UtcMicros::from_micros(dec.hyper()?);
            entries.push(IndexEntry {
                ordinal,
                offset,
                ts,
            });
        }
        let zone = if version >= IDX_ZONED_VERSION {
            let nn = dec.uint()? as usize;
            if nn > MAX_HEADER_NODES {
                return Err(BriskError::Codec(format!("absurd zone node count {nn}")));
            }
            let mut nodes = Vec::with_capacity(nn);
            for _ in 0..nn {
                nodes.push(dec.uint()?);
            }
            let sensors = SensorBloom::from_bytes(dec.opaque_fixed(32)?)?;
            let seg_len = dec.uhyper()?;
            let last_frame_offset = dec.uhyper()?;
            let tail_crc = dec.uint()?;
            Some(ZoneMap {
                nodes,
                sensors,
                seg_len,
                last_frame_offset,
                tail_crc,
            })
        } else {
            None
        };
        let body_len = dec.position();
        let want = crc32(&bytes[8..8 + body_len]);
        if want != dec.uint()? {
            return Err(BriskError::Codec("index CRC mismatch".into()));
        }
        dec.finish()?;
        Ok(SegmentIndex {
            segment_id,
            record_count,
            min_ts,
            max_ts,
            entries,
            zone,
        })
    }

    /// True when this sidecar demonstrably describes `seg` — the actual
    /// bytes of its segment file. A v1 sidecar (no seal stamp) cannot be
    /// validated and returns false, which callers treat as "rebuild".
    ///
    /// The check is deliberately cheap relative to a full decode-scan:
    /// the seal stamp must match the file length and the tail frame's
    /// stored CRC, the tail frame payload must actually carry that CRC,
    /// and every sparse entry must point at a frame whose CRC verifies.
    pub fn validate_against(&self, seg: &[u8]) -> bool {
        let Some(zone) = &self.zone else {
            return false;
        };
        if zone.seg_len != seg.len() as u64 {
            return false;
        }
        if self.record_count == 0 {
            return true;
        }
        if !frame_checks_out(seg, zone.last_frame_offset, Some(zone.tail_crc)) {
            return false;
        }
        self.entries
            .iter()
            .all(|e| frame_checks_out(seg, e.offset, None))
    }
}

/// Verify the frame starting at `offset`: header in bounds, sane length,
/// payload CRC matches the stored word (and `expect_crc`, when given).
pub(crate) fn frame_checks_out(seg: &[u8], offset: u64, expect_crc: Option<u32>) -> bool {
    let Ok(off) = usize::try_from(offset) else {
        return false;
    };
    if off + FRAME_OVERHEAD > seg.len() {
        return false;
    }
    let len = u32::from_le_bytes([seg[off], seg[off + 1], seg[off + 2], seg[off + 3]]) as usize;
    let stored = u32::from_le_bytes([seg[off + 4], seg[off + 5], seg[off + 6], seg[off + 7]]);
    if len > MAX_FRAME_BYTES as usize || off + FRAME_OVERHEAD + len > seg.len() {
        return false;
    }
    if let Some(want) = expect_crc {
        if stored != want {
            return false;
        }
    }
    crc32(&seg[off + FRAME_OVERHEAD..off + FRAME_OVERHEAD + len]) == stored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = SegmentHeader {
            version: FORMAT_VERSION,
            segment_id: 42,
            base_ts: UtcMicros::from_micros(1_234_567),
            nodes: vec![1, 2, 7],
        };
        let bytes = h.encode();
        let (back, off) = SegmentHeader::decode(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(off, bytes.len());
        // Frames start right after; decode must also work with trailing data.
        let mut with_frames = bytes.clone();
        append_frame(b"payload", &mut with_frames);
        let (_, off2) = SegmentHeader::decode(&with_frames).unwrap();
        assert_eq!(off2, bytes.len());
    }

    #[test]
    fn header_crc_detects_corruption() {
        let h = SegmentHeader {
            version: FORMAT_VERSION,
            segment_id: 1,
            base_ts: UtcMicros::ZERO,
            nodes: vec![3],
        };
        let mut bytes = h.encode();
        let n = bytes.len();
        bytes[n - 6] ^= 0x40; // flip a bit inside the node list
        assert!(SegmentHeader::decode(&bytes).is_err());
    }

    #[test]
    fn index_round_trips() {
        let idx = SegmentIndex {
            segment_id: 9,
            record_count: 1000,
            min_ts: UtcMicros::from_micros(10),
            max_ts: UtcMicros::from_micros(99_999),
            entries: (0..16)
                .map(|i| IndexEntry {
                    ordinal: i * 64,
                    offset: 53 + i * 640,
                    ts: UtcMicros::from_micros(10 + i as i64 * 100),
                })
                .collect(),
            zone: None,
        };
        let bytes = idx.encode();
        assert_eq!(SegmentIndex::decode(&bytes).unwrap(), idx);
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n / 2] ^= 1;
        assert!(SegmentIndex::decode(&bad).is_err());
    }

    #[test]
    fn zoned_index_round_trips() {
        let mut sensors = SensorBloom::new();
        sensors.insert(7);
        sensors.insert(99);
        let idx = SegmentIndex {
            segment_id: 3,
            record_count: 128,
            min_ts: UtcMicros::from_micros(5),
            max_ts: UtcMicros::from_micros(500),
            entries: vec![IndexEntry {
                ordinal: 0,
                offset: 53,
                ts: UtcMicros::from_micros(5),
            }],
            zone: Some(ZoneMap {
                nodes: vec![1, 2, 9],
                sensors,
                seg_len: 4096,
                last_frame_offset: 4000,
                tail_crc: 0xDEAD_BEEF,
            }),
        };
        let bytes = idx.encode();
        let back = SegmentIndex::decode(&bytes).unwrap();
        assert_eq!(back, idx);
        let z = back.zone.unwrap();
        assert!(z.sensors.may_contain(7) && z.sensors.may_contain(99));
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut b = SensorBloom::new();
        for id in (0..400).step_by(7) {
            b.insert(id);
        }
        for id in (0..400).step_by(7) {
            assert!(b.may_contain(id), "false negative for {id}");
        }
        // Spot-check that it actually discriminates at low cardinality.
        let mut small = SensorBloom::new();
        small.insert(1);
        let misses = (1000u32..2000).filter(|&i| !small.may_contain(i)).count();
        assert!(misses > 900, "bloom too dense: {misses}/1000 misses");
    }

    #[test]
    fn validate_against_binds_sidecar_to_segment_bytes() {
        // Build a tiny segment image: header + two frames.
        let h = SegmentHeader {
            version: FORMAT_VERSION,
            segment_id: 0,
            base_ts: UtcMicros::from_micros(1),
            nodes: vec![1],
        };
        let mut seg = h.encode();
        let first_off = seg.len() as u64;
        append_frame(b"first-record", &mut seg);
        let tail_off = seg.len() as u64;
        append_frame(b"second-record", &mut seg);
        let tail_crc = crc32(b"second-record");
        let mut sensors = SensorBloom::new();
        sensors.insert(2);
        let idx = SegmentIndex {
            segment_id: 0,
            record_count: 2,
            min_ts: UtcMicros::from_micros(1),
            max_ts: UtcMicros::from_micros(2),
            entries: vec![IndexEntry {
                ordinal: 0,
                offset: first_off,
                ts: UtcMicros::from_micros(1),
            }],
            zone: Some(ZoneMap {
                nodes: vec![1],
                sensors,
                seg_len: seg.len() as u64,
                last_frame_offset: tail_off,
                tail_crc,
            }),
        };
        assert!(idx.validate_against(&seg));
        // Stale: segment truncated after the sidecar was written.
        assert!(!idx.validate_against(&seg[..seg.len() - 4]));
        // Stale: segment grew (extra frame) after the sidecar was written.
        let mut grown = seg.clone();
        append_frame(b"third", &mut grown);
        assert!(!idx.validate_against(&grown));
        // Corrupt frame under an entry.
        let mut bitrot = seg.clone();
        let p = first_off as usize + FRAME_OVERHEAD + 2;
        bitrot[p] ^= 0x10;
        assert!(!idx.validate_against(&bitrot));
        // V1 sidecars can never validate.
        let v1 = SegmentIndex { zone: None, ..idx };
        assert!(!v1.validate_against(&seg));
    }

    #[test]
    fn compact_header_round_trips() {
        use brisk_core::{EventTypeId, NodeId, SensorId, Value};
        let mut dict = DescriptorDict::new();
        dict.intern_record(&brisk_core::EventRecord {
            node: NodeId(1),
            sensor: SensorId(2),
            event_type: EventTypeId(3),
            seq: 0,
            ts: UtcMicros::ZERO,
            fields: vec![Value::I32(5), Value::Str("x".into())],
        })
        .unwrap();
        let bytes = encode_compact_header(7, UtcMicros::from_micros(42), &[1, 2], &dict);
        let (h, body, off) = decode_any_header(&bytes).unwrap();
        assert_eq!(h.version, COMPACT_VERSION);
        assert_eq!(h.segment_id, 7);
        assert_eq!(h.nodes, vec![1, 2]);
        assert_eq!(off, bytes.len());
        assert_eq!(body, SegmentBody::Compact(dict));
        // SegmentHeader::decode accepts it too (dictionary discarded).
        let (h2, off2) = SegmentHeader::decode(&bytes).unwrap();
        assert_eq!((h2.segment_id, off2), (7, bytes.len()));
    }

    #[test]
    fn file_names_sort_numerically() {
        assert_eq!(segment_file_name(0x2a), "seg-000000000000002a.seg");
        assert_eq!(
            parse_segment_file_name("seg-000000000000002a.seg"),
            Some(0x2a)
        );
        assert_eq!(parse_segment_file_name("seg-2a.seg"), None);
        assert_eq!(parse_segment_file_name("other.seg"), None);
        let names: Vec<String> = [1u64, 9, 10, 255, 4096]
            .iter()
            .map(|&i| segment_file_name(i))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names);
    }
}
