//! On-disk segment format.
//!
//! A store directory holds a sequence of fixed-size-bounded segment files
//! named `seg-<id:016x>.seg`, each optionally accompanied by a sparse-index
//! sidecar `seg-<id:016x>.idx` written when the segment is sealed. Layout
//! of a `.seg` file:
//!
//! ```text
//! +----------------------------+
//! | magic  "BRISKSEG"  (8 B)   |
//! | XDR header:                |
//! |   uint    format version   |
//! |   uhyper  segment id       |
//! |   hyper   base timestamp   |   first record's UtcMicros
//! |   uint    node count       |
//! |   uint[]  node ids         |   nodes known when the segment opened
//! |   uint    CRC-32           |   over the XDR bytes above
//! +----------------------------+
//! | frame 0:                   |
//! |   u32 LE  payload length   |
//! |   u32 LE  CRC-32(payload)  |
//! |   payload (binenc record)  |
//! | frame 1: …                 |
//! +----------------------------+
//! ```
//!
//! The header is RFC-1832 XDR (big-endian, like every BRISK control
//! structure on the wire); frames use the native little-endian framing of
//! the data path, and each payload is exactly one
//! [`brisk_core::binenc`]-encoded record. A crash can leave a *torn tail*
//! — a final frame whose bytes were only partially written; recovery
//! truncates it (see `reader`).
//!
//! The `.idx` sidecar caches one `(record ordinal, file offset, timestamp)`
//! entry per `index_every` records plus the segment's record count and
//! timestamp range, so seeks do not scan sealed segments. It is a pure
//! cache: when missing or corrupt, readers fall back to scanning the `.seg`
//! file, which remains the single source of truth.

use crate::crc::crc32;
use brisk_core::{BriskError, Result, UtcMicros};
use brisk_xdr::{XdrDecoder, XdrEncoder};
use std::path::{Path, PathBuf};

/// Magic prefix of a segment file.
pub const SEG_MAGIC: &[u8; 8] = b"BRISKSEG";
/// Magic prefix of an index sidecar.
pub const IDX_MAGIC: &[u8; 8] = b"BRISKIDX";
/// On-disk format version.
pub const FORMAT_VERSION: u32 = 1;
/// Bytes of frame header preceding each payload (length + CRC).
pub const FRAME_OVERHEAD: usize = 8;
/// Upper bound on a sane frame payload; anything larger in a length word
/// means the file is corrupt at that point.
pub const MAX_FRAME_BYTES: u32 = 1 << 24;
/// Upper bound on the node set recorded in a header.
const MAX_HEADER_NODES: usize = 64 * 1024;
/// Upper bound on index entries in a sidecar.
const MAX_INDEX_ENTRIES: usize = 1 << 24;

/// File name of segment `id` (zero-padded hex keeps lexicographic order
/// equal to numeric order).
pub fn segment_file_name(id: u64) -> String {
    format!("seg-{id:016x}.seg")
}

/// File name of the index sidecar of segment `id`.
pub fn index_file_name(id: u64) -> String {
    format!("seg-{id:016x}.idx")
}

/// Path of segment `id` under `dir`.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(segment_file_name(id))
}

/// Path of the index sidecar of segment `id` under `dir`.
pub fn index_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(index_file_name(id))
}

/// Parse a segment id back out of a `seg-<id>.seg` file name.
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The XDR-encoded metadata at the start of every segment file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentHeader {
    /// On-disk format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Monotonically increasing segment id, unique within a store.
    pub segment_id: u64,
    /// Timestamp of the first record appended to this segment.
    pub base_ts: UtcMicros,
    /// Node ids the store had seen when the segment was opened (advisory:
    /// later segments accumulate nodes as they appear in the stream).
    pub nodes: Vec<u32>,
}

impl SegmentHeader {
    /// Encode magic + header, returning the bytes to place at offset 0.
    pub fn encode(&self) -> Vec<u8> {
        let mut xdr = XdrEncoder::with_capacity(32 + 4 * self.nodes.len());
        xdr.uint(self.version)
            .uhyper(self.segment_id)
            .hyper(self.base_ts.as_micros())
            .uint(self.nodes.len() as u32);
        for &n in &self.nodes {
            xdr.uint(n);
        }
        let body = xdr.as_bytes().to_vec();
        let crc = crc32(&body);
        xdr.uint(crc);
        let mut out = Vec::with_capacity(8 + xdr.len());
        out.extend_from_slice(SEG_MAGIC);
        out.extend_from_slice(xdr.as_bytes());
        out
    }

    /// Decode a header from the start of a segment file. Returns the header
    /// and the offset of the first frame.
    pub fn decode(bytes: &[u8]) -> Result<(SegmentHeader, usize)> {
        if bytes.len() < 8 || &bytes[..8] != SEG_MAGIC {
            return Err(BriskError::Codec("bad segment magic".into()));
        }
        let mut dec = XdrDecoder::new(&bytes[8..]);
        let version = dec.uint()?;
        if version != FORMAT_VERSION {
            return Err(BriskError::Codec(format!(
                "unsupported segment format version {version}"
            )));
        }
        let segment_id = dec.uhyper()?;
        let base_ts = UtcMicros::from_micros(dec.hyper()?);
        let n = dec.uint()? as usize;
        if n > MAX_HEADER_NODES {
            return Err(BriskError::Codec(format!("absurd header node count {n}")));
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(dec.uint()?);
        }
        let body_len = dec.position();
        let want = crc32(&bytes[8..8 + body_len]);
        let got = dec.uint()?;
        if want != got {
            return Err(BriskError::Codec("segment header CRC mismatch".into()));
        }
        let header = SegmentHeader {
            version,
            segment_id,
            base_ts,
            nodes,
        };
        Ok((header, 8 + dec.position()))
    }
}

/// Append one CRC-framed payload to `out`.
pub fn append_frame(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One sparse-index entry: every `index_every`-th record's position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Zero-based ordinal of the record within its segment.
    pub ordinal: u64,
    /// Byte offset of the record's frame within the segment file.
    pub offset: u64,
    /// The record's timestamp.
    pub ts: UtcMicros,
}

/// The sealed-segment summary stored in a `.idx` sidecar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentIndex {
    /// Segment this index describes.
    pub segment_id: u64,
    /// Total records in the segment.
    pub record_count: u64,
    /// Smallest record timestamp in the segment.
    pub min_ts: UtcMicros,
    /// Largest record timestamp in the segment.
    pub max_ts: UtcMicros,
    /// Sparse entries, ascending by ordinal.
    pub entries: Vec<IndexEntry>,
}

impl SegmentIndex {
    /// Encode magic + index for the sidecar file.
    pub fn encode(&self) -> Vec<u8> {
        let mut xdr = XdrEncoder::with_capacity(48 + 24 * self.entries.len());
        xdr.uint(FORMAT_VERSION)
            .uhyper(self.segment_id)
            .uhyper(self.record_count)
            .hyper(self.min_ts.as_micros())
            .hyper(self.max_ts.as_micros())
            .uint(self.entries.len() as u32);
        for e in &self.entries {
            xdr.uhyper(e.ordinal)
                .uhyper(e.offset)
                .hyper(e.ts.as_micros());
        }
        let crc = crc32(xdr.as_bytes());
        xdr.uint(crc);
        let mut out = Vec::with_capacity(8 + xdr.len());
        out.extend_from_slice(IDX_MAGIC);
        out.extend_from_slice(xdr.as_bytes());
        out
    }

    /// Decode a sidecar file. Any corruption is an error: callers treat a
    /// bad sidecar as absent and rescan the segment itself.
    pub fn decode(bytes: &[u8]) -> Result<SegmentIndex> {
        if bytes.len() < 8 || &bytes[..8] != IDX_MAGIC {
            return Err(BriskError::Codec("bad index magic".into()));
        }
        let mut dec = XdrDecoder::new(&bytes[8..]);
        let version = dec.uint()?;
        if version != FORMAT_VERSION {
            return Err(BriskError::Codec(format!(
                "unsupported index format version {version}"
            )));
        }
        let segment_id = dec.uhyper()?;
        let record_count = dec.uhyper()?;
        let min_ts = UtcMicros::from_micros(dec.hyper()?);
        let max_ts = UtcMicros::from_micros(dec.hyper()?);
        let n = dec.uint()? as usize;
        if n > MAX_INDEX_ENTRIES {
            return Err(BriskError::Codec(format!("absurd index entry count {n}")));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let ordinal = dec.uhyper()?;
            let offset = dec.uhyper()?;
            let ts = UtcMicros::from_micros(dec.hyper()?);
            entries.push(IndexEntry {
                ordinal,
                offset,
                ts,
            });
        }
        let body_len = dec.position();
        let want = crc32(&bytes[8..8 + body_len]);
        if want != dec.uint()? {
            return Err(BriskError::Codec("index CRC mismatch".into()));
        }
        dec.finish()?;
        Ok(SegmentIndex {
            segment_id,
            record_count,
            min_ts,
            max_ts,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = SegmentHeader {
            version: FORMAT_VERSION,
            segment_id: 42,
            base_ts: UtcMicros::from_micros(1_234_567),
            nodes: vec![1, 2, 7],
        };
        let bytes = h.encode();
        let (back, off) = SegmentHeader::decode(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(off, bytes.len());
        // Frames start right after; decode must also work with trailing data.
        let mut with_frames = bytes.clone();
        append_frame(b"payload", &mut with_frames);
        let (_, off2) = SegmentHeader::decode(&with_frames).unwrap();
        assert_eq!(off2, bytes.len());
    }

    #[test]
    fn header_crc_detects_corruption() {
        let h = SegmentHeader {
            version: FORMAT_VERSION,
            segment_id: 1,
            base_ts: UtcMicros::ZERO,
            nodes: vec![3],
        };
        let mut bytes = h.encode();
        let n = bytes.len();
        bytes[n - 6] ^= 0x40; // flip a bit inside the node list
        assert!(SegmentHeader::decode(&bytes).is_err());
    }

    #[test]
    fn index_round_trips() {
        let idx = SegmentIndex {
            segment_id: 9,
            record_count: 1000,
            min_ts: UtcMicros::from_micros(10),
            max_ts: UtcMicros::from_micros(99_999),
            entries: (0..16)
                .map(|i| IndexEntry {
                    ordinal: i * 64,
                    offset: 53 + i * 640,
                    ts: UtcMicros::from_micros(10 + i as i64 * 100),
                })
                .collect(),
        };
        let bytes = idx.encode();
        assert_eq!(SegmentIndex::decode(&bytes).unwrap(), idx);
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n / 2] ^= 1;
        assert!(SegmentIndex::decode(&bad).is_err());
    }

    #[test]
    fn file_names_sort_numerically() {
        assert_eq!(segment_file_name(0x2a), "seg-000000000000002a.seg");
        assert_eq!(
            parse_segment_file_name("seg-000000000000002a.seg"),
            Some(0x2a)
        );
        assert_eq!(parse_segment_file_name("seg-2a.seg"), None);
        assert_eq!(parse_segment_file_name("other.seg"), None);
        let names: Vec<String> = [1u64, 9, 10, 255, 4096]
            .iter()
            .map(|&i| segment_file_name(i))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(sorted, names);
    }
}
