//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every frame and header in a segment file.
//!
//! Hand-rolled table-driven implementation: the container has no access to
//! crates.io, and the store needs only this one well-known variant (the
//! same one used by zlib, gzip and Ethernet, so segment files can be
//! checked with standard tools). The hot path uses slicing-by-8 — eight
//! compile-time tables consumed eight bytes per step — because the CRC
//! runs once per appended record and a byte-at-a-time loop was the single
//! largest CPU cost on the store's append path.

/// Slicing-by-8 lookup tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[k]` advances a byte through `k`
/// additional zero bytes.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

/// CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][c[4] as usize]
            ^ TABLES[2][c[5] as usize]
            ^ TABLES[1][c[6] as usize]
            ^ TABLES[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation, for equivalence checks.
    fn crc32_bytewise(data: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length() {
        // Cover every remainder length and several multi-chunk sizes.
        let data: Vec<u8> = (0..257u16)
            .map(|i| (i.wrapping_mul(31) >> 2) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_bytewise(&data[..len]),
                "divergence at length {len}"
            );
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&data), clean);
    }
}
