//! Property-based durability tests: arbitrary record batches must survive
//! segment write → reopen → read bit-for-bit, and random payload
//! corruption must be confined to the record it hits.

use brisk_core::prelude::*;
use brisk_store::reader::StoreReader;
use brisk_store::segment::FRAME_OVERHEAD;
use brisk_store::writer::StoreWriter;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "brisk-store-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Strategy producing an arbitrary `Value` of any type (mirrors the
/// brisk-core round-trip suite).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i8>().prop_map(Value::I8),
        any::<u8>().prop_map(Value::U8),
        any::<i16>().prop_map(Value::I16),
        any::<u16>().prop_map(Value::U16),
        any::<i32>().prop_map(Value::I32),
        any::<u32>().prop_map(Value::U32),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        any::<f32>().prop_map(Value::F32),
        any::<f64>().prop_map(Value::F64),
        any::<bool>().prop_map(Value::Bool),
        ".{0,40}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        any::<i64>().prop_map(|us| Value::Ts(UtcMicros::from_micros(us))),
        any::<u64>().prop_map(|id| Value::Reason(CorrelationId(id))),
        any::<u64>().prop_map(|id| Value::Conseq(CorrelationId(id))),
    ]
}

fn arb_record() -> impl Strategy<Value = EventRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<i64>(),
        proptest::collection::vec(arb_value(), 0..=8),
    )
        .prop_map(|(node, sensor, ety, seq, ts, fields)| {
            EventRecord::new(
                NodeId(node),
                SensorId(sensor),
                EventTypeId(ety),
                seq,
                UtcMicros::from_micros(ts),
                fields,
            )
            .expect("<=8 fields by construction")
        })
}

/// NaN-tolerant record equality: the store must preserve bit patterns.
fn bitwise_eq(a: &EventRecord, b: &EventRecord) -> bool {
    if (a.node, a.sensor, a.event_type, a.seq, a.ts)
        != (b.node, b.sensor, b.event_type, b.seq, b.ts)
    {
        return false;
    }
    if a.fields.len() != b.fields.len() {
        return false;
    }
    a.fields.iter().zip(&b.fields).all(|(x, y)| match (x, y) {
        (Value::F32(p), Value::F32(q)) => p.to_bits() == q.to_bits(),
        (Value::F64(p), Value::F64(q)) => p.to_bits() == q.to_bits(),
        _ => x == y,
    })
}

fn small_store_cfg(dir: &Path) -> StoreConfig {
    let mut cfg = StoreConfig::at(dir.to_path_buf());
    // Small segments so batches regularly cross rotation boundaries.
    cfg.segment_bytes = 4096;
    cfg.fsync = FsyncPolicy::Never;
    cfg.index_every = 7;
    cfg
}

proptest! {
    /// write → drop (seal) → reopen → read returns exactly the input.
    #[test]
    fn store_round_trips_arbitrary_batches(
        recs in proptest::collection::vec(arb_record(), 1..60)
    ) {
        let dir = temp_dir("roundtrip");
        let cfg = small_store_cfg(&dir);
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
        }
        let (back, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(report.corrupt_frames, 0);
        prop_assert_eq!(report.torn_tail_truncations, 0);
        prop_assert_eq!(back.len(), recs.len());
        for (x, y) in back.iter().zip(&recs) {
            prop_assert!(bitwise_eq(x, y));
        }
    }

    /// Flipping a byte inside one record's frame payload corrupts exactly
    /// that record: the reader reports one CRC error and recovers every
    /// other record intact.
    #[test]
    fn payload_corruption_is_confined(
        recs in proptest::collection::vec(arb_record(), 2..40),
        victim_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = temp_dir("corrupt");
        let mut cfg = small_store_cfg(&dir);
        // One segment: keep the victim arithmetic simple.
        cfg.segment_bytes = 64 << 20;
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
        }
        let ids = StoreReader::open(&dir).unwrap().segment_ids().unwrap();
        prop_assert_eq!(ids.len(), 1);
        let seg = brisk_store::segment::segment_path(&dir, ids[0]);
        let mut bytes = std::fs::read(&seg).unwrap();

        // Locate frame payloads with a clean decode of the segment image:
        // frames start after the XDR header; each is 8B of framing + payload.
        let (_, header_end) = brisk_store::segment::SegmentHeader::decode(&bytes).unwrap();
        let mut payload_spans = Vec::new();
        let mut off = header_end;
        while off + FRAME_OVERHEAD <= bytes.len() {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            payload_spans.push((off + FRAME_OVERHEAD, len));
            off += FRAME_OVERHEAD + len;
        }
        prop_assert_eq!(payload_spans.len(), recs.len());
        let victim = ((victim_frac * recs.len() as f64) as usize).min(recs.len() - 1);
        let (pstart, plen) = payload_spans[victim];
        // Every payload has at least the 28-byte binenc header.
        let target = pstart + ((byte_frac * plen as f64) as usize).min(plen - 1);
        bytes[target] ^= 1 << bit;
        std::fs::write(&seg, &bytes).unwrap();
        // Invalidate the sidecar so the reader rescans the segment bytes.
        let _ = std::fs::remove_file(brisk_store::segment::index_path(&dir, ids[0]));

        let (back, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(report.corrupt_frames, 1, "exactly the victim is reported");
        prop_assert_eq!(report.torn_tail_truncations, 0);
        prop_assert_eq!(back.len(), recs.len() - 1);
        let mut expect: Vec<&EventRecord> = recs.iter().collect();
        expect.remove(victim);
        for (x, y) in back.iter().zip(expect) {
            prop_assert!(bitwise_eq(x, y), "surviving records unchanged");
        }
    }

    /// Truncating the file at an arbitrary point inside the last frame is
    /// a torn tail: everything before it is recovered.
    #[test]
    fn torn_tail_recovers_prefix(
        recs in proptest::collection::vec(arb_record(), 2..40),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = temp_dir("torn");
        let mut cfg = small_store_cfg(&dir);
        cfg.segment_bytes = 64 << 20;
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
        }
        let ids = StoreReader::open(&dir).unwrap().segment_ids().unwrap();
        let seg = brisk_store::segment::segment_path(&dir, ids[0]);
        let bytes = std::fs::read(&seg).unwrap();
        // Find the last frame's start.
        let (_, header_end) = brisk_store::segment::SegmentHeader::decode(&bytes).unwrap();
        let mut off = header_end;
        let mut last_start = header_end;
        while off + FRAME_OVERHEAD <= bytes.len() {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            last_start = off;
            off += FRAME_OVERHEAD + len;
        }
        // Cut strictly inside the last frame: keep at least 1 of its bytes
        // (so a tear exists) and drop at least 1 (so it is incomplete).
        let frame_len = bytes.len() - last_start;
        let keep = last_start + 1 + ((cut_frac * (frame_len - 2) as f64) as usize).min(frame_len - 2);
        std::fs::write(&seg, &bytes[..keep]).unwrap();
        let _ = std::fs::remove_file(brisk_store::segment::index_path(&dir, ids[0]));

        let (back, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(report.torn_tail_truncations, 1);
        prop_assert_eq!(back.len(), recs.len() - 1, "all but the torn record");
        for (x, y) in back.iter().zip(&recs) {
            prop_assert!(bitwise_eq(x, y));
        }
    }
}

proptest! {
    /// Compacting a sealed store is invisible to readers: an arbitrary
    /// batch written across rotations, then rewritten by the compactor,
    /// reads back bit-for-bit identical to the original (NaN payloads
    /// included). Segments the compactor skips (already minimal, damaged,
    /// hot) must round-trip just the same.
    #[test]
    fn compacted_store_round_trips_bitwise(
        recs in proptest::collection::vec(arb_record(), 1..80)
    ) {
        let dir = temp_dir("compact-rt");
        let cfg = small_store_cfg(&dir); // 4 KiB segments: several per batch
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
        }
        let compactor = brisk_store::Compactor::new(
            &dir,
            brisk_store::CompactConfig {
                keep_hot: 0,
                ..Default::default()
            },
        );
        compactor.run_once().unwrap();
        let (back, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(report.corrupt_frames, 0);
        prop_assert_eq!(back.len(), recs.len());
        for (x, y) in back.iter().zip(&recs) {
            prop_assert!(bitwise_eq(x, y), "compaction must preserve records");
        }
    }

    /// The pruning query engine must agree with a full scan + filter for
    /// every predicate: zone maps may only skip segments that provably
    /// hold no match.
    #[test]
    fn query_agrees_with_full_scan(
        recs in proptest::collection::vec(arb_record(), 1..60),
        from in any::<i64>(), has_from in any::<bool>(),
        to in any::<i64>(), has_to in any::<bool>(),
        nodes in proptest::collection::vec(any::<u32>(), 0..4), has_nodes in any::<bool>(),
        sensors in proptest::collection::vec(any::<u32>(), 0..4), has_sensors in any::<bool>(),
        pick_present in any::<bool>(),
    ) {
        let dir = temp_dir("query-eq");
        let cfg = small_store_cfg(&dir);
        {
            let mut w = StoreWriter::open(&cfg).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
        }
        let mut pred = brisk_store::Predicate {
            from: has_from.then(|| UtcMicros::from_micros(from)),
            to: has_to.then(|| UtcMicros::from_micros(to)),
            nodes: has_nodes.then(|| nodes.iter().copied().collect()),
            sensors: has_sensors.then(|| sensors.iter().copied().collect()),
        };
        if pick_present {
            // Bias toward predicates that actually hit something.
            pred.nodes = Some([recs[0].node.0].into());
            pred.sensors = Some([recs[0].sensor.0].into());
        }
        let reader = StoreReader::open(&dir).unwrap();
        let (hit, _report) = reader.query(&pred).unwrap();
        let (all, _) = reader.read_all().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        let expect: Vec<&EventRecord> = all.iter().filter(|r| pred.matches(r)).collect();
        prop_assert_eq!(hit.records.len(), expect.len());
        for (x, y) in hit.records.iter().zip(expect) {
            prop_assert!(bitwise_eq(x, y), "query must equal scan+filter");
        }
    }
}
