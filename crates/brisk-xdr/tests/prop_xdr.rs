//! Property-based tests for the XDR codec.

use brisk_core::prelude::*;
use brisk_xdr::values::{decode_record_body, decode_value, encode_record_body, encode_value};
use brisk_xdr::{pad4, XdrDecoder, XdrEncoder};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i8>().prop_map(Value::I8),
        any::<u8>().prop_map(Value::U8),
        any::<i16>().prop_map(Value::I16),
        any::<u16>().prop_map(Value::U16),
        any::<i32>().prop_map(Value::I32),
        any::<u32>().prop_map(Value::U32),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        any::<f32>().prop_map(Value::F32),
        any::<f64>().prop_map(Value::F64),
        any::<bool>().prop_map(Value::Bool),
        ".{0,32}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Value::Bytes),
        any::<i64>().prop_map(|us| Value::Ts(UtcMicros::from_micros(us))),
        any::<u64>().prop_map(|id| Value::Reason(CorrelationId(id))),
        any::<u64>().prop_map(|id| Value::Conseq(CorrelationId(id))),
    ]
}

fn values_bitwise_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::F32(p), Value::F32(q)) => p.to_bits() == q.to_bits(),
        (Value::F64(p), Value::F64(q)) => p.to_bits() == q.to_bits(),
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn value_round_trips_and_is_aligned(v in arb_value()) {
        let mut e = XdrEncoder::new();
        encode_value(&v, &mut e);
        let bytes = e.into_bytes();
        prop_assert_eq!(bytes.len() % 4, 0);
        prop_assert_eq!(bytes.len(), v.xdr_size());
        let mut d = XdrDecoder::new(&bytes);
        let back = decode_value(v.value_type(), &mut d).unwrap();
        prop_assert!(values_bitwise_eq(&back, &v));
        d.finish().unwrap();
    }

    #[test]
    fn int_round_trip(v in any::<i32>()) {
        let mut e = XdrEncoder::new();
        e.int(v);
        let b = e.into_bytes();
        prop_assert_eq!(XdrDecoder::new(&b).int().unwrap(), v);
    }

    #[test]
    fn hyper_round_trip(v in any::<i64>()) {
        let mut e = XdrEncoder::new();
        e.hyper(v);
        let b = e.into_bytes();
        prop_assert_eq!(XdrDecoder::new(&b).hyper().unwrap(), v);
    }

    #[test]
    fn opaque_round_trip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut e = XdrEncoder::new();
        e.opaque(&data);
        let b = e.into_bytes();
        prop_assert_eq!(b.len(), 4 + pad4(data.len()));
        let mut d = XdrDecoder::new(&b);
        prop_assert_eq!(d.opaque().unwrap(), &data[..]);
        d.finish().unwrap();
    }

    #[test]
    fn string_round_trip(s in ".{0,64}") {
        let mut e = XdrEncoder::new();
        e.string(&s);
        let b = e.into_bytes();
        let mut d = XdrDecoder::new(&b);
        prop_assert_eq!(d.string().unwrap(), &s[..]);
    }

    #[test]
    fn record_body_round_trips(
        node in any::<u32>(),
        sensor in any::<u32>(),
        ety in any::<u32>(),
        seq in any::<u64>(),
        ts in any::<i64>(),
        fields in proptest::collection::vec(arb_value(), 0..=8),
    ) {
        let rec = EventRecord::new(
            NodeId(node), SensorId(sensor), EventTypeId(ety), seq,
            UtcMicros::from_micros(ts), fields,
        ).unwrap();
        let mut e = XdrEncoder::new();
        encode_record_body(&rec, &mut e);
        let bytes = e.into_bytes();
        prop_assert_eq!(bytes.len() % 4, 0);
        let mut d = XdrDecoder::new(&bytes);
        let back = decode_record_body(NodeId(node), &mut d).unwrap();
        d.finish().unwrap();
        prop_assert_eq!(back.node, rec.node);
        prop_assert_eq!(back.sensor, rec.sensor);
        prop_assert_eq!(back.event_type, rec.event_type);
        prop_assert_eq!(back.seq, rec.seq);
        prop_assert_eq!(back.ts, rec.ts);
        prop_assert_eq!(back.fields.len(), rec.fields.len());
        for (x, y) in back.fields.iter().zip(&rec.fields) {
            prop_assert!(values_bitwise_eq(x, y));
        }
    }

    /// Fuzz the decoder with arbitrary bytes: it must error or succeed, but
    /// never panic, and never read past the input.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut d = XdrDecoder::new(&bytes);
        let _ = decode_record_body(NodeId(0), &mut d);
        let mut d = XdrDecoder::new(&bytes);
        let _ = d.opaque();
        let mut d = XdrDecoder::new(&bytes);
        let _ = d.string();
    }
}
