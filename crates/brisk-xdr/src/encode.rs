//! XDR encoding (RFC 1832 subset).
//!
//! All quantities are big-endian and every item occupies a multiple of four
//! bytes; variable-length items are padded with zero bytes.

use crate::pad4;

/// Streaming XDR encoder writing into an owned byte buffer.
///
/// The encoder is infallible: it only ever appends to a growable `Vec`.
#[derive(Debug, Default)]
pub struct XdrEncoder {
    buf: Vec<u8>,
}

impl XdrEncoder {
    /// New empty encoder.
    pub fn new() -> Self {
        XdrEncoder { buf: Vec::new() }
    }

    /// New encoder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        XdrEncoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Reset to empty, keeping the allocation (workhorse-buffer pattern).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// XDR `int`: 32-bit signed, big-endian.
    pub fn int(&mut self, v: i32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// XDR `unsigned int`.
    pub fn uint(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// XDR `hyper`: 64-bit signed.
    pub fn hyper(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// XDR `unsigned hyper`.
    pub fn uhyper(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// XDR `float` (IEEE-754 single, big-endian).
    pub fn float(&mut self, v: f32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// XDR `double` (IEEE-754 double, big-endian).
    pub fn double(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// XDR `bool`: encoded as int 0 or 1.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.int(v as i32)
    }

    /// XDR fixed-length `opaque[n]`: raw bytes padded to 4-byte alignment.
    /// The length is *not* encoded; the receiver must know it.
    pub fn opaque_fixed(&mut self, bytes: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(bytes);
        self.pad_to_alignment(bytes.len());
        self
    }

    /// XDR variable-length `opaque<>`: length word, bytes, padding.
    pub fn opaque(&mut self, bytes: &[u8]) -> &mut Self {
        self.uint(bytes.len() as u32);
        self.opaque_fixed(bytes)
    }

    /// XDR `string<>`: identical wire form to variable opaque; the paper's
    /// original used null-terminated C strings, but the XDR string carries
    /// an explicit length so no terminator is sent.
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.opaque(s.as_bytes())
    }

    fn pad_to_alignment(&mut self, payload_len: usize) {
        for _ in payload_len..pad4(payload_len) {
            self.buf.push(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(f: impl FnOnce(&mut XdrEncoder)) -> Vec<u8> {
        let mut e = XdrEncoder::new();
        f(&mut e);
        e.into_bytes()
    }

    #[test]
    fn int_is_big_endian() {
        assert_eq!(
            enc(|e| {
                e.int(1);
            }),
            vec![0, 0, 0, 1]
        );
        assert_eq!(
            enc(|e| {
                e.int(-1);
            }),
            vec![0xff; 4]
        );
        assert_eq!(
            enc(|e| {
                e.int(0x0102_0304);
            }),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn hyper_is_eight_bytes() {
        assert_eq!(
            enc(|e| {
                e.hyper(0x0102_0304_0506_0708);
            }),
            vec![1, 2, 3, 4, 5, 6, 7, 8]
        );
        assert_eq!(
            enc(|e| {
                e.uhyper(u64::MAX);
            }),
            vec![0xff; 8]
        );
    }

    #[test]
    fn floats_are_ieee_be() {
        assert_eq!(
            enc(|e| {
                e.float(1.0);
            }),
            vec![0x3f, 0x80, 0, 0]
        );
        assert_eq!(
            enc(|e| {
                e.double(1.0);
            }),
            vec![0x3f, 0xf0, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn bool_is_int() {
        assert_eq!(
            enc(|e| {
                e.boolean(true);
            }),
            vec![0, 0, 0, 1]
        );
        assert_eq!(
            enc(|e| {
                e.boolean(false);
            }),
            vec![0, 0, 0, 0]
        );
    }

    #[test]
    fn opaque_variable_has_length_and_padding() {
        assert_eq!(
            enc(|e| {
                e.opaque(b"ab");
            }),
            vec![0, 0, 0, 2, b'a', b'b', 0, 0]
        );
        assert_eq!(
            enc(|e| {
                e.opaque(b"abcd");
            }),
            vec![0, 0, 0, 4, b'a', b'b', b'c', b'd']
        );
        assert_eq!(
            enc(|e| {
                e.opaque(b"");
            }),
            vec![0, 0, 0, 0]
        );
    }

    #[test]
    fn opaque_fixed_pads_without_length() {
        assert_eq!(
            enc(|e| {
                e.opaque_fixed(b"abc");
            }),
            vec![b'a', b'b', b'c', 0]
        );
        assert_eq!(
            enc(|e| {
                e.opaque_fixed(b"");
            }),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn string_matches_opaque() {
        assert_eq!(
            enc(|e| {
                e.string("hi");
            }),
            enc(|e| {
                e.opaque(b"hi");
            })
        );
    }

    #[test]
    fn everything_stays_4_aligned() {
        let bytes = enc(|e| {
            e.int(1).string("odd").uint(2).opaque(b"12345").hyper(3);
        });
        assert_eq!(bytes.len() % 4, 0);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut e = XdrEncoder::with_capacity(64);
        e.uhyper(9);
        assert!(!e.is_empty());
        e.clear();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }
}
