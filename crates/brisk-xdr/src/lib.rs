//! # brisk-xdr — External Data Representation codec
//!
//! BRISK's transfer protocol is "based on XDR, which makes BRISK amenable to
//! a heterogeneous environment" (§3.1). The paper does not use XDR "in the
//! typical way, with rpcgen and static typing": each dynamically-typed
//! record travels with a *compressed* meta-information header instead.
//!
//! This crate implements, from scratch:
//!
//! * the XDR primitive encodings of RFC 1832 that BRISK needs —
//!   `int`, `unsigned int`, `hyper`, `unsigned hyper`, `float`, `double`,
//!   `bool`, fixed and variable-length `opaque`, and `string` — all
//!   big-endian and padded to 4-byte alignment ([`encode::XdrEncoder`],
//!   [`decode::XdrDecoder`]);
//! * the mapping from BRISK's dynamically-typed [`brisk_core::Value`]s onto
//!   those primitives ([`values`]).
//!
//! Framing of whole messages (batches, clock-sync messages, …) lives one
//! layer up in `brisk-proto`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod decode;
pub mod encode;
pub mod values;
pub mod view;

pub use decode::{DecodeError, XdrDecoder};
pub use encode::XdrEncoder;
pub use view::{decode_record_view, decode_value_ref, RecordView, ValueRef};

/// Round `n` up to the next multiple of 4 (XDR alignment unit).
#[inline]
pub const fn pad4(n: usize) -> usize {
    (n + 3) & !3
}

#[cfg(test)]
mod tests {
    use super::pad4;

    #[test]
    fn pad4_rounds_up() {
        assert_eq!(pad4(0), 0);
        assert_eq!(pad4(1), 4);
        assert_eq!(pad4(4), 4);
        assert_eq!(pad4(5), 8);
        assert_eq!(pad4(8), 8);
    }
}
