//! XDR decoding (RFC 1832 subset).
//!
//! This module is a *hostile-input boundary*: every byte it reads may come
//! straight off the wire from a faulty or malicious peer, so it must never
//! panic. `clippy::unwrap_used`/`expect_used` are denied here and failures
//! are reported through the typed [`DecodeError`].

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::pad4;
use brisk_core::BriskError;
use std::fmt;

/// Why an XDR decode failed. Typed (rather than a formatted string) so the
/// ingest layers can count, sample and budget protocol errors without
/// parsing messages back out of a `String`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value did.
    Truncated {
        /// Bytes the value still needed.
        needed: usize,
        /// Offset at which the shortfall was discovered.
        offset: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// Input remained after the value was fully decoded.
    Trailing {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// An XDR `bool` discriminant other than 0 or 1.
    BadBool(i32),
    /// A padding byte was non-zero (canonical form violated).
    NonZeroPadding,
    /// A variable-length item declared a length above its bound — the
    /// guard against "length-prefix amnesia" allocation bombs.
    LengthExceedsBound {
        /// Declared length.
        len: usize,
        /// Permitted maximum.
        max: usize,
    },
    /// An XDR `string<>` held invalid UTF-8.
    InvalidUtf8(std::str::Utf8Error),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated {
                needed,
                offset,
                have,
            } => write!(
                f,
                "truncated XDR input: need {needed} bytes at offset {offset}, have {have}"
            ),
            DecodeError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after XDR value")
            }
            DecodeError::BadBool(v) => write!(f, "invalid XDR bool {v}"),
            DecodeError::NonZeroPadding => write!(f, "non-zero XDR padding"),
            DecodeError::LengthExceedsBound { len, max } => {
                write!(f, "opaque length {len} exceeds bound {max}")
            }
            DecodeError::InvalidUtf8(e) => write!(f, "invalid UTF-8 in XDR string: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for BriskError {
    fn from(e: DecodeError) -> Self {
        BriskError::Codec(e.to_string())
    }
}

/// Streaming XDR decoder over a borrowed byte slice.
///
/// The decoder is strict: truncation, non-zero padding bytes and invalid
/// boolean discriminants are all rejected, so every value has exactly one
/// encoding (canonical form) — important because the protocol layer hashes
/// and compares encoded descriptors.
#[derive(Debug)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Decode from the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        XdrDecoder { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The full input slice this decoder reads from. View decoders slice
    /// it by [`XdrDecoder::position`] to keep a validated region borrowed
    /// from the arrival buffer without copying it.
    pub fn input(&self) -> &'a [u8] {
        self.buf
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless all input was consumed — used by message decoders to
    /// reject trailing garbage.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(DecodeError::Trailing {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                offset: self.pos,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Take exactly `N` bytes as an array, without the `try_into().unwrap()`
    /// idiom (the decode path is panic-free by construction).
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// XDR `int`.
    pub fn int(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_be_bytes(self.take_array::<4>()?))
    }

    /// XDR `unsigned int`.
    pub fn uint(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take_array::<4>()?))
    }

    /// XDR `hyper`.
    pub fn hyper(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_be_bytes(self.take_array::<8>()?))
    }

    /// XDR `unsigned hyper`.
    pub fn uhyper(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take_array::<8>()?))
    }

    /// XDR `float`.
    pub fn float(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_be_bytes(self.take_array::<4>()?))
    }

    /// XDR `double`.
    pub fn double(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_be_bytes(self.take_array::<8>()?))
    }

    /// XDR `bool` (int restricted to 0/1).
    pub fn boolean(&mut self) -> Result<bool, DecodeError> {
        match self.int()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(DecodeError::BadBool(v)),
        }
    }

    /// XDR fixed-length `opaque[n]`.
    pub fn opaque_fixed(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let payload = self.take(n)?;
        let padding = self.take(pad4(n) - n)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(DecodeError::NonZeroPadding);
        }
        Ok(payload)
    }

    /// XDR variable-length `opaque<>`, with an upper bound on the length to
    /// keep a corrupt length word from asking for gigabytes.
    pub fn opaque_bounded(&mut self, max_len: usize) -> Result<&'a [u8], DecodeError> {
        let len = self.uint()? as usize;
        if len > max_len {
            return Err(DecodeError::LengthExceedsBound { len, max: max_len });
        }
        self.opaque_fixed(len)
    }

    /// XDR variable-length `opaque<>` bounded only by the input size.
    pub fn opaque(&mut self) -> Result<&'a [u8], DecodeError> {
        let bound = self.remaining();
        self.opaque_bounded(bound)
    }

    /// XDR `string<>` (UTF-8 validated).
    pub fn string(&mut self) -> Result<&'a str, DecodeError> {
        let bytes = self.opaque()?;
        std::str::from_utf8(bytes).map_err(DecodeError::InvalidUtf8)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::encode::XdrEncoder;

    #[test]
    fn primitives_round_trip() {
        let mut e = XdrEncoder::new();
        e.int(-7)
            .uint(42)
            .hyper(i64::MIN)
            .uhyper(u64::MAX)
            .float(2.5)
            .double(-0.125)
            .boolean(true)
            .boolean(false);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.int().unwrap(), -7);
        assert_eq!(d.uint().unwrap(), 42);
        assert_eq!(d.hyper().unwrap(), i64::MIN);
        assert_eq!(d.uhyper().unwrap(), u64::MAX);
        assert_eq!(d.float().unwrap(), 2.5);
        assert_eq!(d.double().unwrap(), -0.125);
        assert!(d.boolean().unwrap());
        assert!(!d.boolean().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn opaque_round_trip() {
        for payload in [&b""[..], b"a", b"ab", b"abc", b"abcd", b"abcde"] {
            let mut e = XdrEncoder::new();
            e.opaque(payload);
            let bytes = e.into_bytes();
            let mut d = XdrDecoder::new(&bytes);
            assert_eq!(d.opaque().unwrap(), payload);
            d.finish().unwrap();
        }
    }

    #[test]
    fn string_round_trip_and_utf8_check() {
        let mut e = XdrEncoder::new();
        e.string("héllo");
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.string().unwrap(), "héllo");

        // Corrupt a UTF-8 continuation byte.
        let mut bad = XdrEncoder::new();
        bad.opaque(&[0xff, 0xfe]);
        let bytes = bad.into_bytes();
        assert!(matches!(
            XdrDecoder::new(&bytes).string(),
            Err(DecodeError::InvalidUtf8(_))
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut e = XdrEncoder::new();
        e.hyper(1);
        let bytes = e.into_bytes();
        assert!(matches!(
            XdrDecoder::new(&bytes[..7]).hyper(),
            Err(DecodeError::Truncated {
                needed: 8,
                offset: 0,
                have: 7
            })
        ));
        assert!(XdrDecoder::new(&[]).int().is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        let mut e = XdrEncoder::new();
        e.int(2);
        let bytes = e.into_bytes();
        assert_eq!(
            XdrDecoder::new(&bytes).boolean(),
            Err(DecodeError::BadBool(2))
        );
    }

    #[test]
    fn nonzero_padding_rejected() {
        // opaque<1> with a dirty pad byte.
        let bytes = [0, 0, 0, 1, b'x', 1, 0, 0];
        assert_eq!(
            XdrDecoder::new(&bytes).opaque(),
            Err(DecodeError::NonZeroPadding)
        );
        let clean = [0, 0, 0, 1, b'x', 0, 0, 0];
        assert_eq!(XdrDecoder::new(&clean).opaque().unwrap(), b"x");
    }

    #[test]
    fn opaque_bound_enforced() {
        let mut e = XdrEncoder::new();
        e.opaque(&[0u8; 100]);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(
            d.opaque_bounded(50),
            Err(DecodeError::LengthExceedsBound { len: 100, max: 50 })
        );
        let mut d = XdrDecoder::new(&bytes);
        assert!(d.opaque_bounded(100).is_ok());
    }

    #[test]
    fn huge_length_word_is_rejected_not_allocated() {
        // Length claims 4 GiB with only 4 bytes of data present.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0];
        let mut d = XdrDecoder::new(&bytes);
        assert!(d.opaque().is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut e = XdrEncoder::new();
        e.int(1).int(2);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        d.int().unwrap();
        assert_eq!(d.finish(), Err(DecodeError::Trailing { remaining: 4 }));
        d.int().unwrap();
        d.finish().unwrap();
        assert!(d.is_exhausted());
    }

    #[test]
    fn position_tracks_consumption() {
        let mut e = XdrEncoder::new();
        e.int(1).opaque(b"xyz");
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.position(), 0);
        d.int().unwrap();
        assert_eq!(d.position(), 4);
        d.opaque().unwrap();
        assert_eq!(d.position(), 12);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn decode_error_converts_to_brisk_codec_error() {
        let e: BriskError = DecodeError::BadBool(7).into();
        assert!(matches!(e, BriskError::Codec(_)));
        assert!(e.to_string().contains("invalid XDR bool 7"));
    }
}
