//! XDR decoding (RFC 1832 subset).

use crate::pad4;
use brisk_core::{BriskError, Result};

/// Streaming XDR decoder over a borrowed byte slice.
///
/// The decoder is strict: truncation, non-zero padding bytes and invalid
/// boolean discriminants are all rejected, so every value has exactly one
/// encoding (canonical form) — important because the protocol layer hashes
/// and compares encoded descriptors.
#[derive(Debug)]
pub struct XdrDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> XdrDecoder<'a> {
    /// Decode from the whole slice.
    pub fn new(buf: &'a [u8]) -> Self {
        XdrDecoder { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless all input was consumed — used by message decoders to
    /// reject trailing garbage.
    pub fn finish(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(BriskError::Codec(format!(
                "{} trailing bytes after XDR value",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(BriskError::Codec(format!(
                "truncated XDR input: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// XDR `int`.
    pub fn int(&mut self) -> Result<i32> {
        Ok(i32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// XDR `unsigned int`.
    pub fn uint(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// XDR `hyper`.
    pub fn hyper(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// XDR `unsigned hyper`.
    pub fn uhyper(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// XDR `float`.
    pub fn float(&mut self) -> Result<f32> {
        Ok(f32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// XDR `double`.
    pub fn double(&mut self) -> Result<f64> {
        Ok(f64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// XDR `bool` (int restricted to 0/1).
    pub fn boolean(&mut self) -> Result<bool> {
        match self.int()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(BriskError::Codec(format!("invalid XDR bool {v}"))),
        }
    }

    /// XDR fixed-length `opaque[n]`.
    pub fn opaque_fixed(&mut self, n: usize) -> Result<&'a [u8]> {
        let payload = self.take(n)?;
        let padding = self.take(pad4(n) - n)?;
        if padding.iter().any(|&b| b != 0) {
            return Err(BriskError::Codec("non-zero XDR padding".into()));
        }
        Ok(payload)
    }

    /// XDR variable-length `opaque<>`, with an upper bound on the length to
    /// keep a corrupt length word from asking for gigabytes.
    pub fn opaque_bounded(&mut self, max_len: usize) -> Result<&'a [u8]> {
        let len = self.uint()? as usize;
        if len > max_len {
            return Err(BriskError::Codec(format!(
                "opaque length {len} exceeds bound {max_len}"
            )));
        }
        self.opaque_fixed(len)
    }

    /// XDR variable-length `opaque<>` bounded only by the input size.
    pub fn opaque(&mut self) -> Result<&'a [u8]> {
        let bound = self.remaining();
        self.opaque_bounded(bound)
    }

    /// XDR `string<>` (UTF-8 validated).
    pub fn string(&mut self) -> Result<&'a str> {
        let bytes = self.opaque()?;
        std::str::from_utf8(bytes)
            .map_err(|e| BriskError::Codec(format!("invalid UTF-8 in XDR string: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::XdrEncoder;

    #[test]
    fn primitives_round_trip() {
        let mut e = XdrEncoder::new();
        e.int(-7)
            .uint(42)
            .hyper(i64::MIN)
            .uhyper(u64::MAX)
            .float(2.5)
            .double(-0.125)
            .boolean(true)
            .boolean(false);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.int().unwrap(), -7);
        assert_eq!(d.uint().unwrap(), 42);
        assert_eq!(d.hyper().unwrap(), i64::MIN);
        assert_eq!(d.uhyper().unwrap(), u64::MAX);
        assert_eq!(d.float().unwrap(), 2.5);
        assert_eq!(d.double().unwrap(), -0.125);
        assert!(d.boolean().unwrap());
        assert!(!d.boolean().unwrap());
        d.finish().unwrap();
    }

    #[test]
    fn opaque_round_trip() {
        for payload in [&b""[..], b"a", b"ab", b"abc", b"abcd", b"abcde"] {
            let mut e = XdrEncoder::new();
            e.opaque(payload);
            let bytes = e.into_bytes();
            let mut d = XdrDecoder::new(&bytes);
            assert_eq!(d.opaque().unwrap(), payload);
            d.finish().unwrap();
        }
    }

    #[test]
    fn string_round_trip_and_utf8_check() {
        let mut e = XdrEncoder::new();
        e.string("héllo");
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.string().unwrap(), "héllo");

        // Corrupt a UTF-8 continuation byte.
        let mut bad = XdrEncoder::new();
        bad.opaque(&[0xff, 0xfe]);
        let bytes = bad.into_bytes();
        assert!(XdrDecoder::new(&bytes).string().is_err());
    }

    #[test]
    fn truncation_detected() {
        let mut e = XdrEncoder::new();
        e.hyper(1);
        let bytes = e.into_bytes();
        assert!(XdrDecoder::new(&bytes[..7]).hyper().is_err());
        assert!(XdrDecoder::new(&[]).int().is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        let mut e = XdrEncoder::new();
        e.int(2);
        let bytes = e.into_bytes();
        assert!(XdrDecoder::new(&bytes).boolean().is_err());
    }

    #[test]
    fn nonzero_padding_rejected() {
        // opaque<1> with a dirty pad byte.
        let bytes = [0, 0, 0, 1, b'x', 1, 0, 0];
        assert!(XdrDecoder::new(&bytes).opaque().is_err());
        let clean = [0, 0, 0, 1, b'x', 0, 0, 0];
        assert_eq!(XdrDecoder::new(&clean).opaque().unwrap(), b"x");
    }

    #[test]
    fn opaque_bound_enforced() {
        let mut e = XdrEncoder::new();
        e.opaque(&[0u8; 100]);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert!(d.opaque_bounded(50).is_err());
        let mut d = XdrDecoder::new(&bytes);
        assert!(d.opaque_bounded(100).is_ok());
    }

    #[test]
    fn huge_length_word_is_rejected_not_allocated() {
        // Length claims 4 GiB with only 4 bytes of data present.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0];
        let mut d = XdrDecoder::new(&bytes);
        assert!(d.opaque().is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut e = XdrEncoder::new();
        e.int(1).int(2);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        d.int().unwrap();
        assert!(d.finish().is_err());
        d.int().unwrap();
        d.finish().unwrap();
        assert!(d.is_exhausted());
    }

    #[test]
    fn position_tracks_consumption() {
        let mut e = XdrEncoder::new();
        e.int(1).opaque(b"xyz");
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        assert_eq!(d.position(), 0);
        d.int().unwrap();
        assert_eq!(d.position(), 4);
        d.opaque().unwrap();
        assert_eq!(d.position(), 12);
        assert_eq!(d.remaining(), 0);
    }
}
