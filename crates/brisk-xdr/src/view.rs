//! Borrowing (zero-copy) decode: values and record bodies as *views* over
//! the arrival buffer.
//!
//! The owned decode path ([`crate::values::decode_value`]) allocates for
//! every string, byte blob and record; on the ISM's ingest hot path that
//! is the dominant cost (see BENCH_store.json). The view path decodes the
//! same wire bytes into [`ValueRef`]/[`RecordView`], whose variable-size
//! payloads stay borrowed from the frame they arrived in. A record is
//! *validated* where the frame enters the system (the pump) without
//! copying anything, then *materialized* into an owned
//! [`brisk_core::EventRecord`] exactly once, downstream, where ownership
//! is actually needed — so each payload byte is copied at most once
//! end-to-end.
//!
//! Validation is exact: a body [`decode_record_view`] accepts is precisely
//! a body [`crate::values::decode_value`]-based decoding accepts (the
//! owned path delegates to this module), so frame-quarantine semantics do
//! not change between the two.
//!
//! Like the rest of the decode path this is a hostile-input boundary:
//! panic-free by construction.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::values::MAX_FIELD_BYTES;
use crate::XdrDecoder;
use brisk_core::trace::{TraceContext, TraceStage};
use brisk_core::{
    BriskError, CorrelationId, EventRecord, EventTypeId, HlcStamp, NodeId, RecordDescriptor,
    Result, SensorId, UtcMicros, Value, ValueType, MAX_TRACE_STAMPS,
};

/// One decoded field whose variable-size payload borrows the input buffer.
///
/// Mirrors [`brisk_core::Value`] variant for variant; `Str` and `Bytes`
/// borrow. `Trace` is owned — it is tiny, rare (one record in N is
/// sampled) and mutated downstream anyway.
#[derive(Clone, PartialEq, Debug)]
pub enum ValueRef<'a> {
    /// Signed 8-bit integer.
    I8(i8),
    /// Unsigned 8-bit integer.
    U8(u8),
    /// Signed 16-bit integer.
    I16(i16),
    /// Unsigned 16-bit integer.
    U16(u16),
    /// Signed 32-bit integer.
    I32(i32),
    /// Unsigned 32-bit integer.
    U32(u32),
    /// Signed 64-bit integer.
    I64(i64),
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Single-precision float.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string, borrowed from the arrival buffer.
    Str(&'a str),
    /// Raw bytes, borrowed from the arrival buffer.
    Bytes(&'a [u8]),
    /// Embedded synchronized timestamp (`X_TS`).
    Ts(UtcMicros),
    /// Reason marker (`X_REASON`).
    Reason(CorrelationId),
    /// Consequence marker (`X_CONSEQ`).
    Conseq(CorrelationId),
    /// Self-tracing context (`X_TRACE`).
    Trace(TraceContext),
    /// Hybrid logical clock stamp (`X_HLC`).
    Hlc(HlcStamp),
}

impl ValueRef<'_> {
    /// The type tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            ValueRef::I8(_) => ValueType::I8,
            ValueRef::U8(_) => ValueType::U8,
            ValueRef::I16(_) => ValueType::I16,
            ValueRef::U16(_) => ValueType::U16,
            ValueRef::I32(_) => ValueType::I32,
            ValueRef::U32(_) => ValueType::U32,
            ValueRef::I64(_) => ValueType::I64,
            ValueRef::U64(_) => ValueType::U64,
            ValueRef::F32(_) => ValueType::F32,
            ValueRef::F64(_) => ValueType::F64,
            ValueRef::Bool(_) => ValueType::Bool,
            ValueRef::Str(_) => ValueType::Str,
            ValueRef::Bytes(_) => ValueType::Bytes,
            ValueRef::Ts(_) => ValueType::Ts,
            ValueRef::Reason(_) => ValueType::Reason,
            ValueRef::Conseq(_) => ValueType::Conseq,
            ValueRef::Trace(_) => ValueType::Trace,
            ValueRef::Hlc(_) => ValueType::Hlc,
        }
    }

    /// Copy into an owned [`Value`] — the one copy a payload byte takes.
    pub fn into_owned(self) -> Value {
        match self {
            ValueRef::I8(v) => Value::I8(v),
            ValueRef::U8(v) => Value::U8(v),
            ValueRef::I16(v) => Value::I16(v),
            ValueRef::U16(v) => Value::U16(v),
            ValueRef::I32(v) => Value::I32(v),
            ValueRef::U32(v) => Value::U32(v),
            ValueRef::I64(v) => Value::I64(v),
            ValueRef::U64(v) => Value::U64(v),
            ValueRef::F32(v) => Value::F32(v),
            ValueRef::F64(v) => Value::F64(v),
            ValueRef::Bool(v) => Value::Bool(v),
            ValueRef::Str(s) => Value::Str(s.to_owned()),
            ValueRef::Bytes(b) => Value::Bytes(b.to_vec()),
            ValueRef::Ts(t) => Value::Ts(t),
            ValueRef::Reason(id) => Value::Reason(id),
            ValueRef::Conseq(id) => Value::Conseq(id),
            ValueRef::Trace(ctx) => Value::Trace(ctx),
            ValueRef::Hlc(s) => Value::Hlc(s),
        }
    }
}

/// Decode one field value of the given type as a borrowing view. This is
/// the single decode implementation: the owned path wraps it with
/// [`ValueRef::into_owned`].
pub fn decode_value_ref<'a>(vt: ValueType, d: &mut XdrDecoder<'a>) -> Result<ValueRef<'a>> {
    fn narrow<T: TryFrom<i32>>(v: i32, vt: ValueType) -> Result<T> {
        T::try_from(v)
            .map_err(|_| BriskError::Codec(format!("value {v} out of range for field type {vt}")))
    }
    fn narrow_u<T: TryFrom<u32>>(v: u32, vt: ValueType) -> Result<T> {
        T::try_from(v)
            .map_err(|_| BriskError::Codec(format!("value {v} out of range for field type {vt}")))
    }
    Ok(match vt {
        ValueType::I8 => ValueRef::I8(narrow(d.int()?, vt)?),
        ValueType::U8 => ValueRef::U8(narrow_u(d.uint()?, vt)?),
        ValueType::I16 => ValueRef::I16(narrow(d.int()?, vt)?),
        ValueType::U16 => ValueRef::U16(narrow_u(d.uint()?, vt)?),
        ValueType::I32 => ValueRef::I32(d.int()?),
        ValueType::U32 => ValueRef::U32(d.uint()?),
        ValueType::I64 => ValueRef::I64(d.hyper()?),
        ValueType::U64 => ValueRef::U64(d.uhyper()?),
        ValueType::F32 => ValueRef::F32(d.float()?),
        ValueType::F64 => ValueRef::F64(d.double()?),
        ValueType::Bool => ValueRef::Bool(d.boolean()?),
        ValueType::Str => ValueRef::Str({
            let bytes = d.opaque_bounded(MAX_FIELD_BYTES)?;
            std::str::from_utf8(bytes)
                .map_err(|e| BriskError::Codec(format!("invalid UTF-8 string field: {e}")))?
        }),
        ValueType::Bytes => ValueRef::Bytes(d.opaque_bounded(MAX_FIELD_BYTES)?),
        ValueType::Ts => ValueRef::Ts(UtcMicros::from_micros(d.hyper()?)),
        ValueType::Reason => ValueRef::Reason(CorrelationId(d.uhyper()?)),
        ValueType::Conseq => ValueRef::Conseq(CorrelationId(d.uhyper()?)),
        ValueType::Trace => {
            let trace_id = d.uhyper()?;
            let count = d.uint()? as usize;
            if count > MAX_TRACE_STAMPS {
                return Err(BriskError::Codec(format!(
                    "trace stamp count {count} exceeds {MAX_TRACE_STAMPS}"
                )));
            }
            let mut stamps = Vec::with_capacity(count);
            for _ in 0..count {
                let code = d.uint()?;
                let stage = u8::try_from(code)
                    .map_err(|_| BriskError::Codec(format!("trace stage code {code} too wide")))
                    .and_then(TraceStage::from_code)?;
                stamps.push((stage, UtcMicros::from_micros(d.hyper()?)));
            }
            ValueRef::Trace(TraceContext::with_stamps(trace_id, stamps)?)
        }
        ValueType::Hlc => {
            let physical = UtcMicros::from_micros(d.hyper()?);
            let logical = d.uint()?;
            ValueRef::Hlc(HlcStamp::new(physical, logical))
        }
    })
}

/// A fully *validated* record body whose field payloads still live in the
/// arrival buffer.
///
/// Produced by [`decode_record_view`]. The header fields are plain values
/// (they are fixed-size anyway); the field region is kept as the raw
/// validated bytes plus the descriptor needed to walk them again, so the
/// view is `Copy`-cheap to pass around and a batch of views costs one
/// `Vec`, not one allocation per string field.
#[derive(Clone, Debug)]
pub struct RecordView<'a> {
    /// The internal sensor within the originating node.
    pub sensor: SensorId,
    /// Application-defined event type.
    pub event_type: EventTypeId,
    /// Per-sensor sequence number.
    pub seq: u64,
    /// Record timestamp (raw local or synchronized, per pipeline stage).
    pub ts: UtcMicros,
    desc: RecordDescriptor,
    fields: &'a [u8],
}

/// Decode one record body as a view, fully validating its structure and
/// content. A body this accepts is exactly a body the owned
/// [`crate::values::decode_record_body`] accepts, with the same errors —
/// the frame-quarantine boundary behaves identically on both paths.
pub fn decode_record_view<'a>(d: &mut XdrDecoder<'a>) -> Result<RecordView<'a>> {
    let sensor = SensorId(d.uint()?);
    let event_type = EventTypeId(d.uint()?);
    let seq = d.uhyper()?;
    let ts = UtcMicros::from_micros(d.hyper()?);
    let packed = d.opaque_bounded(16)?;
    let (desc, used) = RecordDescriptor::unpack(packed)?;
    if used != packed.len() {
        return Err(BriskError::Codec(
            "descriptor opaque has trailing bytes".into(),
        ));
    }
    let start = d.position();
    for &vt in desc.types() {
        // The walk validates everything (ranges, UTF-8, trace stages) and
        // throws the value away; payloads are not copied.
        decode_value_ref(vt, d)?;
    }
    let fields = &d.input()[start..d.position()];
    Ok(RecordView {
        sensor,
        event_type,
        seq,
        ts,
        desc,
        fields,
    })
}

impl<'a> RecordView<'a> {
    /// The record's shape.
    pub fn descriptor(&self) -> &RecordDescriptor {
        &self.desc
    }

    /// Number of payload fields.
    pub fn num_fields(&self) -> usize {
        self.desc.len()
    }

    /// The raw (already-validated) field region, still borrowing the
    /// arrival buffer. Exposed so callers can assert the zero-copy
    /// property and so re-encoders can splice the bytes through.
    pub fn fields_bytes(&self) -> &'a [u8] {
        self.fields
    }

    /// Iterate the field values as borrowing views. The region was
    /// validated at construction, so decode errors here are unreachable
    /// in practice; they are still surfaced rather than unwrapped.
    pub fn values(&self) -> impl Iterator<Item = Result<ValueRef<'a>>> + '_ {
        let mut d = XdrDecoder::new(self.fields);
        self.desc
            .types()
            .iter()
            .map(move |&vt| decode_value_ref(vt, &mut d))
    }

    /// Materialize an owned [`EventRecord`] — the single end-to-end copy
    /// of the payload bytes. `node` comes from the enclosing batch.
    pub fn materialize(&self, node: NodeId) -> Result<EventRecord> {
        let mut d = XdrDecoder::new(self.fields);
        let mut fields = Vec::with_capacity(self.desc.len());
        for &vt in self.desc.types() {
            fields.push(decode_value_ref(vt, &mut d)?.into_owned());
        }
        d.finish()?;
        EventRecord::new(
            node,
            self.sensor,
            self.event_type,
            self.seq,
            self.ts,
            fields,
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::values::{decode_record_body, encode_record_body};
    use crate::XdrEncoder;

    fn rec(fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(2),
            EventTypeId(3),
            4,
            UtcMicros::from_micros(5),
            fields,
        )
        .unwrap()
    }

    fn encoded(r: &EventRecord) -> Vec<u8> {
        let mut e = XdrEncoder::new();
        encode_record_body(r, &mut e);
        e.into_bytes()
    }

    #[test]
    fn view_materializes_exactly_what_owned_decode_produces() {
        let mut ctx = TraceContext::origin(42, UtcMicros::from_micros(5));
        ctx.stamp(TraceStage::ExsScoop, UtcMicros::from_micros(9));
        let r = rec(vec![
            Value::I32(7),
            Value::Str("tick ❄".into()),
            Value::Bytes(vec![1, 2, 3]),
            Value::Reason(CorrelationId(1000)),
            Value::Ts(UtcMicros::from_secs(1)),
            Value::Trace(ctx),
        ]);
        let bytes = encoded(&r);
        let mut d = XdrDecoder::new(&bytes);
        let view = decode_record_view(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(view.seq, r.seq);
        assert_eq!(view.ts, r.ts);
        assert_eq!(view.num_fields(), r.fields.len());
        assert_eq!(view.materialize(NodeId(1)).unwrap(), r);
    }

    #[test]
    fn view_values_borrow_the_input_buffer() {
        let r = rec(vec![
            Value::Str("borrowed".into()),
            Value::Bytes(vec![9; 8]),
        ]);
        let bytes = encoded(&r);
        let view = decode_record_view(&mut XdrDecoder::new(&bytes)).unwrap();
        let vals: Vec<ValueRef<'_>> = view.values().map(|v| v.unwrap()).collect();
        let (s, b) = match (&vals[0], &vals[1]) {
            (ValueRef::Str(s), ValueRef::Bytes(b)) => (*s, *b),
            other => panic!("wrong variants: {other:?}"),
        };
        // The payload pointers land inside `bytes` — no copy happened.
        let range = bytes.as_ptr() as usize..bytes.as_ptr() as usize + bytes.len();
        assert!(range.contains(&(s.as_ptr() as usize)));
        assert!(range.contains(&(b.as_ptr() as usize)));
    }

    #[test]
    fn view_rejects_exactly_what_owned_decode_rejects() {
        let good = encoded(&rec(vec![Value::Str("abcdefg".into()), Value::I32(1)]));
        // Truncations at every length must fail identically on both paths.
        for cut in 0..good.len() {
            let owned = decode_record_body(NodeId(1), &mut XdrDecoder::new(&good[..cut]));
            let view = decode_record_view(&mut XdrDecoder::new(&good[..cut]));
            assert_eq!(owned.is_err(), view.is_err(), "cut {cut}");
        }
        // Corruptions: flip each byte and compare accept/reject decisions.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xff;
            let owned = decode_record_body(NodeId(1), &mut XdrDecoder::new(&bad)).is_err();
            let view = decode_record_view(&mut XdrDecoder::new(&bad)).is_err();
            assert_eq!(owned, view, "flip at {i}");
        }
    }

    #[test]
    fn every_value_type_round_trips_through_the_view() {
        let values = vec![
            Value::I8(i8::MIN),
            Value::U8(u8::MAX),
            Value::I16(i16::MIN),
            Value::U16(u16::MAX),
            Value::I32(-1),
            Value::U32(u32::MAX),
            Value::I64(i64::MIN),
            Value::U64(u64::MAX),
            Value::F32(3.5),
            Value::F64(-2.25),
            Value::Bool(true),
            Value::Str("snow ❄".into()),
            Value::Bytes(vec![1, 2, 3, 4, 5]),
            Value::Ts(UtcMicros::from_micros(-77)),
            Value::Reason(CorrelationId(9)),
            Value::Conseq(CorrelationId(10)),
            Value::Hlc(HlcStamp::new(UtcMicros::from_micros(321), 7)),
        ];
        for v in values {
            let mut e = XdrEncoder::new();
            crate::values::encode_value(&v, &mut e);
            let bytes = e.into_bytes();
            let mut d = XdrDecoder::new(&bytes);
            let back = decode_value_ref(v.value_type(), &mut d).unwrap();
            assert_eq!(back.value_type(), v.value_type());
            assert_eq!(back.into_owned(), v);
            d.finish().unwrap();
        }
    }
}
