//! XDR encoding of BRISK's dynamically-typed values and records.
//!
//! XDR has no types narrower than 32 bits, so the narrow integer types are
//! promoted onto `int`/`unsigned int` on the wire (RFC 1832's convention for
//! smaller-than-word quantities); the receiver narrows them back using the
//! record descriptor and rejects out-of-range values, so a round trip is
//! exact. The descriptor itself travels once per record in packed-nibble
//! form (see [`brisk_core::descriptor::RecordDescriptor::pack`]) as a
//! variable-length opaque — the "meta-information header compressed" of
//! §3.4.

use crate::{XdrDecoder, XdrEncoder};
#[cfg(test)]
use brisk_core::HlcStamp;
use brisk_core::{
    BriskError, EventRecord, EventTypeId, NodeId, RecordDescriptor, Result, SensorId, UtcMicros,
    Value, ValueType,
};

/// Upper bound accepted for one variable-length field (string or bytes).
/// Instrumentation payloads are small; the bound keeps a corrupt stream
/// from allocating unboundedly.
pub const MAX_FIELD_BYTES: usize = 1 << 20;

/// Encode one field value.
pub fn encode_value(v: &Value, e: &mut XdrEncoder) {
    match v {
        Value::I8(x) => e.int(*x as i32),
        Value::U8(x) => e.uint(*x as u32),
        Value::I16(x) => e.int(*x as i32),
        Value::U16(x) => e.uint(*x as u32),
        Value::I32(x) => e.int(*x),
        Value::U32(x) => e.uint(*x),
        Value::I64(x) => e.hyper(*x),
        Value::U64(x) => e.uhyper(*x),
        Value::F32(x) => e.float(*x),
        Value::F64(x) => e.double(*x),
        Value::Bool(x) => e.boolean(*x),
        Value::Str(s) => e.string(s),
        Value::Bytes(b) => e.opaque(b),
        Value::Ts(t) => e.hyper(t.as_micros()),
        Value::Reason(id) => e.uhyper(id.raw()),
        Value::Conseq(id) => e.uhyper(id.raw()),
        Value::Trace(ctx) => {
            e.uhyper(ctx.trace_id);
            e.uint(ctx.stamps().len() as u32);
            for &(stage, ts) in ctx.stamps() {
                e.uint(stage.code() as u32);
                e.hyper(ts.as_micros());
            }
            &mut *e
        }
        Value::Hlc(s) => {
            e.hyper(s.physical.as_micros());
            e.uint(s.logical)
        }
    };
}

/// Decode one field value of the given type. Delegates to the borrowing
/// [`crate::view::decode_value_ref`] — a single decode implementation
/// keeps the owned and view paths from ever diverging on what they
/// accept — and pays the payload copy here.
pub fn decode_value(vt: ValueType, d: &mut XdrDecoder<'_>) -> Result<Value> {
    Ok(crate::view::decode_value_ref(vt, d)?.into_owned())
}

/// Encode a record *without* its node id — within a batch the node identity
/// is carried once at the connection/batch level ("minimizing the slack in
/// instrumentation data messages", §3.4).
pub fn encode_record_body(rec: &EventRecord, e: &mut XdrEncoder) {
    e.uint(rec.sensor.raw());
    e.uint(rec.event_type.raw());
    e.uhyper(rec.seq);
    e.hyper(rec.ts.as_micros());
    e.opaque(&rec.descriptor().pack());
    for f in &rec.fields {
        encode_value(f, e);
    }
}

/// Decode a record body; the node id comes from the enclosing batch.
pub fn decode_record_body(node: NodeId, d: &mut XdrDecoder<'_>) -> Result<EventRecord> {
    let sensor = SensorId(d.uint()?);
    let event_type = EventTypeId(d.uint()?);
    let seq = d.uhyper()?;
    let ts = UtcMicros::from_micros(d.hyper()?);
    let packed = d.opaque_bounded(16)?;
    let (desc, used) = RecordDescriptor::unpack(packed)?;
    if used != packed.len() {
        return Err(BriskError::Codec(
            "descriptor opaque has trailing bytes".into(),
        ));
    }
    let mut fields = Vec::with_capacity(desc.len());
    for &vt in desc.types() {
        fields.push(decode_value(vt, d)?);
    }
    EventRecord::new(node, sensor, event_type, seq, ts, fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::trace::{TraceContext, TraceStage};
    use brisk_core::{CorrelationId, MAX_TRACE_STAMPS};

    fn rec(fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(2),
            EventTypeId(3),
            4,
            UtcMicros::from_micros(5),
            fields,
        )
        .unwrap()
    }

    #[test]
    fn every_value_type_round_trips() {
        let values = vec![
            Value::I8(i8::MIN),
            Value::U8(u8::MAX),
            Value::I16(i16::MIN),
            Value::U16(u16::MAX),
            Value::I32(-1),
            Value::U32(u32::MAX),
            Value::I64(i64::MIN),
            Value::U64(u64::MAX),
            Value::F32(3.5),
            Value::F64(-2.25),
            Value::Bool(true),
            Value::Str("snow ❄".into()),
            Value::Bytes(vec![1, 2, 3, 4, 5]),
            Value::Ts(UtcMicros::from_micros(-77)),
            Value::Reason(CorrelationId(9)),
            Value::Conseq(CorrelationId(10)),
            Value::Trace({
                let mut c = TraceContext::origin(0xfeed_f00d, UtcMicros::from_micros(12));
                c.stamp(TraceStage::PumpRecv, UtcMicros::from_micros(40));
                c
            }),
            Value::Hlc(HlcStamp::new(UtcMicros::from_micros(-3), u32::MAX)),
        ];
        for v in values {
            let mut e = XdrEncoder::new();
            encode_value(&v, &mut e);
            let bytes = e.into_bytes();
            assert_eq!(bytes.len() % 4, 0, "alignment for {v:?}");
            let mut d = XdrDecoder::new(&bytes);
            let back = decode_value(v.value_type(), &mut d).unwrap();
            assert_eq!(back, v);
            d.finish().unwrap();
        }
    }

    #[test]
    fn narrow_types_reject_out_of_range() {
        // Hand-encode an int 300 and try to decode it as U8 / I8.
        let mut e = XdrEncoder::new();
        e.uint(300);
        let bytes = e.into_bytes();
        assert!(decode_value(ValueType::U8, &mut XdrDecoder::new(&bytes)).is_err());
        let mut e = XdrEncoder::new();
        e.int(40_000);
        let bytes = e.into_bytes();
        assert!(decode_value(ValueType::I16, &mut XdrDecoder::new(&bytes)).is_err());
    }

    #[test]
    fn record_body_round_trips() {
        let r = rec(vec![
            Value::I32(7),
            Value::Str("tick".into()),
            Value::Reason(CorrelationId(1000)),
            Value::Ts(UtcMicros::from_secs(1)),
        ]);
        let mut e = XdrEncoder::new();
        encode_record_body(&r, &mut e);
        let bytes = e.into_bytes();
        let mut d = XdrDecoder::new(&bytes);
        let back = decode_record_body(NodeId(1), &mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn traced_record_body_round_trips() {
        let mut ctx = TraceContext::origin(42, UtcMicros::from_micros(5));
        ctx.stamp(TraceStage::ExsScoop, UtcMicros::from_micros(9));
        ctx.stamp(TraceStage::BatchSend, UtcMicros::from_micros(11));
        let r = rec(vec![
            Value::I32(7),
            Value::Trace(ctx),
            Value::Str("tail".into()),
        ]);
        let mut e = XdrEncoder::new();
        encode_record_body(&r, &mut e);
        let bytes = e.into_bytes();
        assert_eq!(bytes.len() % 4, 0);
        let mut d = XdrDecoder::new(&bytes);
        let back = decode_record_body(NodeId(1), &mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn oversized_trace_stamp_count_rejected() {
        let mut e = XdrEncoder::new();
        e.uhyper(1); // trace id
        e.uint((MAX_TRACE_STAMPS + 1) as u32);
        let bytes = e.into_bytes();
        assert!(decode_value(ValueType::Trace, &mut XdrDecoder::new(&bytes)).is_err());
    }

    #[test]
    fn bad_trace_stage_code_rejected() {
        let mut e = XdrEncoder::new();
        e.uhyper(1);
        e.uint(1);
        e.uint(99); // no such stage
        e.hyper(0);
        let bytes = e.into_bytes();
        assert!(decode_value(ValueType::Trace, &mut XdrDecoder::new(&bytes)).is_err());
    }

    #[test]
    fn record_body_size_six_i32_near_paper_figure() {
        // Paper: 40 bytes per record including timestamp and type info.
        let r = rec(vec![Value::I32(0); 6]);
        let mut e = XdrEncoder::new();
        encode_record_body(&r, &mut e);
        let n = e.len();
        assert_eq!(n % 4, 0);
        // sensor 4 + ety 4 + seq 8 + ts 8 + opaque(4 len + 4 padded) + 24 = 56.
        // The extra over the paper's 40 is seq (8) + sensor id (4) + length
        // word (4); documented in EXPERIMENTS.md.
        assert_eq!(n, 56);
    }

    #[test]
    fn trailing_descriptor_bytes_rejected() {
        let r = rec(vec![Value::I32(0)]);
        let mut e = XdrEncoder::new();
        e.uint(r.sensor.raw());
        e.uint(r.event_type.raw());
        e.uhyper(r.seq);
        e.hyper(r.ts.as_micros());
        let mut packed = r.descriptor().pack();
        packed.push(0); // extra junk inside the descriptor opaque
        e.opaque(&packed);
        encode_value(&r.fields[0], &mut e);
        let bytes = e.into_bytes();
        assert!(decode_record_body(NodeId(1), &mut XdrDecoder::new(&bytes)).is_err());
    }

    #[test]
    fn truncated_record_body_rejected() {
        let r = rec(vec![Value::Str("abcdefg".into())]);
        let mut e = XdrEncoder::new();
        encode_record_body(&r, &mut e);
        let bytes = e.into_bytes();
        for cut in [0, 4, 10, bytes.len() - 1] {
            assert!(
                decode_record_body(NodeId(1), &mut XdrDecoder::new(&bytes[..cut])).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_string_field_rejected() {
        // Forge a string field claiming MAX_FIELD_BYTES + 1.
        let mut e = XdrEncoder::new();
        e.uint((MAX_FIELD_BYTES + 1) as u32);
        let bytes = e.into_bytes();
        assert!(decode_value(ValueType::Str, &mut XdrDecoder::new(&bytes)).is_err());
    }
}
