//! Event records — the instrumentation data unit.
//!
//! An [`EventRecord`] corresponds to one execution of a `NOTICE` macro in an
//! instrumented application: a small header (origin, event type, sequence
//! number, timestamp) plus up to eight dynamically-typed fields
//! ([`crate::descriptor::MAX_FIELDS`]).
//!
//! The header timestamp is the *raw local time* sampled when the sensor
//! fires; the external sensor later adds its clock-sync *correction value*
//! ([`EventRecord::apply_correction`]) "before sending the record to the
//! ISM" (§3.2). `X_TS` fields embedded in the payload are corrected the same
//! way, so all timestamps a consumer sees are in synchronized EXS time.

use crate::descriptor::{RecordDescriptor, MAX_FIELDS};
use crate::error::{BriskError, Result};
use crate::hlc::HlcStamp;
use crate::ids::{CorrelationId, EventTypeId, NodeId, SensorId};
use crate::time::UtcMicros;
use crate::trace::{TraceContext, TraceStage};
use crate::value::Value;
use std::fmt;

/// One instrumentation data record.
#[derive(Clone, PartialEq, Debug)]
pub struct EventRecord {
    /// The node (LIS) the record originated from.
    pub node: NodeId,
    /// The internal sensor within the node.
    pub sensor: SensorId,
    /// Application-defined event type.
    pub event_type: EventTypeId,
    /// Per-sensor monotonically increasing sequence number. Gives the ISM a
    /// stable tiebreaker for equal timestamps and lets consumers detect
    /// records dropped by a full ring buffer.
    pub seq: u64,
    /// Record timestamp: raw local time at sensor firing, shifted into
    /// synchronized time by the EXS.
    pub ts: UtcMicros,
    /// Dynamically-typed payload fields.
    pub fields: Vec<Value>,
}

impl EventRecord {
    /// Create a record, validating the field-count limit.
    pub fn new(
        node: NodeId,
        sensor: SensorId,
        event_type: EventTypeId,
        seq: u64,
        ts: UtcMicros,
        fields: Vec<Value>,
    ) -> Result<Self> {
        if fields.len() > MAX_FIELDS {
            return Err(BriskError::Malformed(format!(
                "{} fields exceeds the {MAX_FIELDS}-field limit",
                fields.len()
            )));
        }
        Ok(EventRecord {
            node,
            sensor,
            event_type,
            seq,
            ts,
            fields,
        })
    }

    /// Start building a record for the given event type.
    pub fn builder(event_type: EventTypeId) -> RecordBuilder {
        RecordBuilder {
            event_type,
            fields: Vec::new(),
        }
    }

    /// The record's shape.
    pub fn descriptor(&self) -> RecordDescriptor {
        RecordDescriptor::of(&self.fields).expect("field count validated at construction")
    }

    /// Correlation id of the first `X_REASON` field, if any.
    pub fn reason_id(&self) -> Option<CorrelationId> {
        self.fields.iter().find_map(|f| match f {
            Value::Reason(id) => Some(*id),
            _ => None,
        })
    }

    /// Correlation id of the first `X_CONSEQ` field, if any.
    pub fn conseq_id(&self) -> Option<CorrelationId> {
        self.fields.iter().find_map(|f| match f {
            Value::Conseq(id) => Some(*id),
            _ => None,
        })
    }

    /// True if this record carries any causal marker.
    pub fn is_causally_marked(&self) -> bool {
        self.reason_id().is_some() || self.conseq_id().is_some()
    }

    /// Shift the header timestamp, every embedded `X_TS` field and every
    /// `X_TRACE` stamp by the EXS's correction value (§3.2). Trace stamps
    /// recorded before this point are raw local time; the EXS calls this
    /// exactly once, at scoop time, so stamps added afterwards are already
    /// in synchronized time.
    pub fn apply_correction(&mut self, delta_us: i64) {
        self.ts = self.ts.offset(delta_us);
        for f in &mut self.fields {
            match f {
                Value::Ts(t) => *t = t.offset(delta_us),
                Value::Trace(ctx) => ctx.shift(delta_us),
                Value::Hlc(s) => s.shift(delta_us),
                _ => {}
            }
        }
    }

    /// The record's trace context, if it was sampled for self-tracing.
    pub fn trace(&self) -> Option<&TraceContext> {
        self.fields.iter().find_map(Value::as_trace)
    }

    /// Mutable view of the trace context, if any.
    pub fn trace_mut(&mut self) -> Option<&mut TraceContext> {
        self.fields.iter_mut().find_map(|f| match f {
            Value::Trace(ctx) => Some(ctx),
            _ => None,
        })
    }

    /// Stamp the trace context with a stage timestamp; a no-op for the
    /// (vast majority of) unsampled records, so every pipeline hop can
    /// call this unconditionally.
    #[inline]
    pub fn stamp_trace(&mut self, stage: TraceStage, ts: UtcMicros) {
        if let Some(ctx) = self.trace_mut() {
            ctx.stamp(stage, ts);
        }
    }

    /// The record's hybrid logical clock stamp (`X_HLC`), if present.
    pub fn hlc(&self) -> Option<HlcStamp> {
        self.fields.iter().find_map(Value::as_hlc)
    }

    /// Attach or replace the record's `X_HLC` stamp. When the record is
    /// already at the field limit and carries no HLC, the stamp is dropped
    /// (better an un-stamped record than a lost one) and `false` returned.
    pub fn set_hlc(&mut self, stamp: HlcStamp) -> bool {
        for f in &mut self.fields {
            if let Value::Hlc(s) = f {
                *s = stamp;
                return true;
            }
        }
        if self.fields.len() >= MAX_FIELDS {
            return false;
        }
        self.fields.push(Value::Hlc(stamp));
        true
    }

    /// Force the header timestamp to `ts` — used by the ISM's CRE handling
    /// to override "incorrect time-stamps" of tachyonic consequence events
    /// (§3.6).
    pub fn override_ts(&mut self, ts: UtcMicros) {
        self.ts = ts;
    }

    /// Size of the record in the native binary encoding (header + payload).
    pub fn native_size(&self) -> usize {
        crate::binenc::record_size(self)
    }

    /// Approximate size in the XDR transfer encoding, matching the paper's
    /// "40 bytes" figure for a six-integer record up to our slightly richer
    /// header. Header timestamp (8) + packed descriptor, then 4-byte-aligned
    /// field payloads.
    pub fn xdr_payload_size(&self) -> usize {
        let fields: usize = self.fields.iter().map(Value::xdr_size).sum();
        let meta = self.descriptor().packed_size();
        // event_type + sensor + seq + ts, each XDR-encoded in the batch body.
        4 + 4 + 8 + 8 + ((meta + 3) & !3) + fields
    }

    /// The key the on-line sorter orders by: timestamp, then origin and
    /// sequence number as stable tiebreakers.
    pub fn sort_key(&self) -> (UtcMicros, u32, u32, u64) {
        (self.ts, self.node.raw(), self.sensor.raw(), self.seq)
    }

    /// The key the sorter orders by in causal mode: the `X_HLC` stamp
    /// (a record without one is ordered as an HLC with logical 0 at its
    /// physical timestamp), then origin and sequence as tiebreakers.
    pub fn causal_sort_key(&self) -> (HlcStamp, u32, u32, u64) {
        let h = self.hlc().unwrap_or(HlcStamp::new(self.ts, 0));
        (h, self.node.raw(), self.sensor.raw(), self.seq)
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} n{} s{} #{} ev{}](",
            self.ts, self.node, self.sensor, self.seq, self.event_type
        )?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Fluent builder returned by [`EventRecord::builder`].
#[derive(Clone, Debug)]
pub struct RecordBuilder {
    event_type: EventTypeId,
    fields: Vec<Value>,
}

impl RecordBuilder {
    /// Append one field.
    pub fn field(mut self, v: impl Into<Value>) -> Self {
        self.fields.push(v.into());
        self
    }

    /// Append an `X_REASON` marker.
    pub fn reason(self, id: CorrelationId) -> Self {
        self.field(Value::Reason(id))
    }

    /// Append an `X_CONSEQ` marker.
    pub fn conseq(self, id: CorrelationId) -> Self {
        self.field(Value::Conseq(id))
    }

    /// Append an embedded `X_TS` timestamp.
    pub fn embed_ts(self, ts: UtcMicros) -> Self {
        self.field(Value::Ts(ts))
    }

    /// Append an `X_HLC` hybrid logical clock stamp.
    pub fn hlc(self, stamp: HlcStamp) -> Self {
        self.field(Value::Hlc(stamp))
    }

    /// Finalize with origin, sequence number and timestamp.
    pub fn build(
        self,
        node: NodeId,
        sensor: SensorId,
        seq: u64,
        ts: UtcMicros,
    ) -> Result<EventRecord> {
        EventRecord::new(node, sensor, self.event_type, seq, ts, self.fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn rec(ts_us: i64, fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(2),
            EventTypeId(3),
            7,
            UtcMicros::from_micros(ts_us),
            fields,
        )
        .unwrap()
    }

    #[test]
    fn new_enforces_field_limit() {
        assert!(EventRecord::new(
            NodeId(0),
            SensorId(0),
            EventTypeId(0),
            0,
            UtcMicros::ZERO,
            vec![Value::I32(0); 9],
        )
        .is_err());
        assert!(rec(0, vec![Value::I32(0); 8]).fields.len() == 8);
    }

    #[test]
    fn builder_produces_equivalent_record() {
        let r = EventRecord::builder(EventTypeId(3))
            .field(1i32)
            .field("msg")
            .reason(CorrelationId(9))
            .build(NodeId(1), SensorId(2), 7, UtcMicros::from_micros(5))
            .unwrap();
        assert_eq!(r.node, NodeId(1));
        assert_eq!(r.event_type, EventTypeId(3));
        assert_eq!(r.seq, 7);
        assert_eq!(r.fields.len(), 3);
        assert_eq!(r.reason_id(), Some(CorrelationId(9)));
        assert_eq!(r.conseq_id(), None);
    }

    #[test]
    fn descriptor_reflects_fields() {
        let r = rec(0, vec![Value::I32(1), Value::Str("a".into())]);
        assert_eq!(r.descriptor().types(), &[ValueType::I32, ValueType::Str]);
    }

    #[test]
    fn causal_marker_detection() {
        assert!(!rec(0, vec![Value::I32(1)]).is_causally_marked());
        assert!(rec(0, vec![Value::Reason(CorrelationId(1))]).is_causally_marked());
        assert!(rec(0, vec![Value::Conseq(CorrelationId(1))]).is_causally_marked());
        let both = rec(
            0,
            vec![
                Value::Reason(CorrelationId(1)),
                Value::Conseq(CorrelationId(2)),
            ],
        );
        assert_eq!(both.reason_id(), Some(CorrelationId(1)));
        assert_eq!(both.conseq_id(), Some(CorrelationId(2)));
    }

    #[test]
    fn trace_stamping_and_correction() {
        let mut r = rec(
            100,
            vec![
                Value::I32(5),
                Value::Trace(TraceContext::origin(9, UtcMicros::from_micros(100))),
            ],
        );
        assert_eq!(r.trace().unwrap().trace_id, 9);
        // Correction shifts existing stamps (raw → synchronized time).
        r.apply_correction(-30);
        assert_eq!(
            r.trace().unwrap().stamp_at(TraceStage::Notice),
            Some(UtcMicros::from_micros(70))
        );
        // Stamps added after correction are taken as-is.
        r.stamp_trace(TraceStage::ExsScoop, UtcMicros::from_micros(80));
        assert_eq!(
            r.trace().unwrap().stamp_at(TraceStage::ExsScoop),
            Some(UtcMicros::from_micros(80))
        );
        // Untraced records ignore stamping.
        let mut plain = rec(0, vec![Value::I32(1)]);
        plain.stamp_trace(TraceStage::Deliver, UtcMicros::ZERO);
        assert!(plain.trace().is_none());
    }

    #[test]
    fn correction_shifts_header_and_embedded_ts() {
        let mut r = rec(
            100,
            vec![
                Value::Ts(UtcMicros::from_micros(90)),
                Value::I32(5),
                Value::Ts(UtcMicros::from_micros(95)),
            ],
        );
        r.apply_correction(-30);
        assert_eq!(r.ts, UtcMicros::from_micros(70));
        assert_eq!(r.fields[0], Value::Ts(UtcMicros::from_micros(60)));
        assert_eq!(r.fields[1], Value::I32(5));
        assert_eq!(r.fields[2], Value::Ts(UtcMicros::from_micros(65)));
    }

    #[test]
    fn override_ts_only_touches_header() {
        let mut r = rec(100, vec![Value::Ts(UtcMicros::from_micros(90))]);
        r.override_ts(UtcMicros::from_micros(500));
        assert_eq!(r.ts, UtcMicros::from_micros(500));
        assert_eq!(r.fields[0], Value::Ts(UtcMicros::from_micros(90)));
    }

    #[test]
    fn hlc_accessors_and_correction() {
        let mut r = rec(100, vec![Value::I32(1)]);
        assert_eq!(r.hlc(), None);
        assert!(r.set_hlc(HlcStamp::new(UtcMicros::from_micros(90), 3)));
        assert_eq!(r.hlc(), Some(HlcStamp::new(UtcMicros::from_micros(90), 3)));
        // Replacing updates in place, never grows the field list.
        let n = r.fields.len();
        assert!(r.set_hlc(HlcStamp::new(UtcMicros::from_micros(95), 0)));
        assert_eq!(r.fields.len(), n);
        assert_eq!(r.hlc(), Some(HlcStamp::new(UtcMicros::from_micros(95), 0)));
        // Correction shifts the physical component like any timestamp.
        r.apply_correction(-30);
        assert_eq!(r.hlc(), Some(HlcStamp::new(UtcMicros::from_micros(65), 0)));
        // A full record without an HLC cannot take one.
        let mut full = rec(0, vec![Value::I32(0); 8]);
        assert!(!full.set_hlc(HlcStamp::ZERO));
        assert_eq!(full.hlc(), None);
    }

    #[test]
    fn sort_key_orders_by_ts_then_origin_then_seq() {
        let a = rec(10, vec![]);
        let mut b = rec(10, vec![]);
        b.seq = 8;
        let c = rec(11, vec![]);
        assert!(a.sort_key() < b.sort_key());
        assert!(b.sort_key() < c.sort_key());
    }

    #[test]
    fn xdr_payload_size_six_i32_close_to_paper() {
        let r = rec(0, vec![Value::I32(0); 6]);
        // The paper reports 40 bytes for this workload; our header carries
        // sensor id and sequence number in addition, landing a word or two
        // above. The important property is "tens of bytes, 4-aligned".
        let size = r.xdr_payload_size();
        assert!(
            size.is_multiple_of(4),
            "XDR payload must be 4-aligned, got {size}"
        );
        assert!((40..=56).contains(&size), "got {size}");
    }

    #[test]
    fn display_mentions_origin_and_fields() {
        let r = rec(1, vec![Value::I32(42)]);
        let s = r.to_string();
        assert!(s.contains("n1"));
        assert!(s.contains("42"));
    }
}
