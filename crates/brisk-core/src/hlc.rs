//! Hybrid logical clock stamps: causality-consistent timestamps.
//!
//! A [`HlcStamp`] is the payload of the `X_HLC` dynamic system field
//! ([`crate::value::ValueType::Hlc`]) — the same mechanism the paper uses
//! for `X_TS`, so it needs no schema change anywhere: it survives the ring
//! buffer, the wire, the sorter and the store like any other field.
//!
//! The stamp couples a physical timestamp with a logical counter, after
//! Kulkarni et al.'s hybrid logical clocks: the physical component tracks
//! synchronized wall time closely (it never lags the local clock at stamp
//! time), while the logical counter breaks ties so the pair is always
//! *consistent with happened-before*: if event `a` causally precedes event
//! `b` (same-node program order, or a send observed by a receive), then
//! `a.hlc < b.hlc` — regardless of how far each node's wall clock is off.
//!
//! The stateful generator that produces stamps (`tick` at a local event,
//! `merge` on receipt of a remote stamp) lives in `brisk-clock`; this
//! module defines only the value, its total order and its 12-byte codec
//! so `brisk-core` stays dependency-free.

use crate::error::{BriskError, Result};
use crate::time::UtcMicros;
use std::fmt;

/// The payload of an `X_HLC` field: physical time plus a logical counter.
///
/// Ordering is lexicographic `(physical, logical)` — the total order the
/// causal sorter keys on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct HlcStamp {
    /// Physical component: microseconds UTC, coupled to the stamping
    /// node's (corrected) clock but never moving backwards.
    pub physical: UtcMicros,
    /// Logical counter: breaks ties between events whose physical
    /// components collide, carrying causality through clock stalls.
    pub logical: u32,
}

impl HlcStamp {
    /// Encoded size in both the native and XDR forms: i64 physical (8) +
    /// u32 logical (4).
    pub const ENCODED_SIZE: usize = 12;

    /// The zero stamp: epoch physical time, zero counter. Orders before
    /// every real stamp, so it is the identity for merge.
    pub const ZERO: HlcStamp = HlcStamp {
        physical: UtcMicros::ZERO,
        logical: 0,
    };

    /// Construct from raw parts.
    #[inline]
    pub const fn new(physical: UtcMicros, logical: u32) -> Self {
        HlcStamp { physical, logical }
    }

    /// Shift the physical component by the EXS clock-correction value,
    /// like every other embedded timestamp. The logical counter is
    /// untouched: a uniform shift preserves the stamp order.
    #[inline]
    pub fn shift(&mut self, delta_us: i64) {
        self.physical = self.physical.offset(delta_us);
    }

    /// Signed distance between the physical component and a wall-clock
    /// reading, in microseconds — the "physical/HLC divergence" telemetry
    /// feeds on this.
    #[inline]
    pub fn divergence_us(&self, wall: UtcMicros) -> i64 {
        self.physical.micros_since(wall)
    }

    /// Append the native little-endian encoding (12 bytes) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.physical.as_micros().to_le_bytes());
        out.extend_from_slice(&self.logical.to_le_bytes());
    }

    /// Decode a stamp from the front of `buf`.
    pub fn decode(buf: &[u8]) -> Result<HlcStamp> {
        if buf.len() < Self::ENCODED_SIZE {
            return Err(BriskError::Codec("truncated HLC stamp".into()));
        }
        let physical = i64::from_le_bytes(buf[..8].try_into().unwrap());
        let logical = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        Ok(HlcStamp {
            physical: UtcMicros::from_micros(physical),
            logical,
        })
    }
}

impl fmt::Display for HlcStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hlc:{}+{}", self.physical, self.logical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_physical_then_logical() {
        let a = HlcStamp::new(UtcMicros::from_micros(10), 5);
        let b = HlcStamp::new(UtcMicros::from_micros(10), 6);
        let c = HlcStamp::new(UtcMicros::from_micros(11), 0);
        assert!(a < b);
        assert!(b < c);
        assert!(HlcStamp::ZERO < a);
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = HlcStamp::new(UtcMicros::from_micros(-7), u32::MAX);
        let mut buf = Vec::new();
        s.encode_into(&mut buf);
        assert_eq!(buf.len(), HlcStamp::ENCODED_SIZE);
        assert_eq!(HlcStamp::decode(&buf).unwrap(), s);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        HlcStamp::new(UtcMicros::from_micros(3), 4).encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(HlcStamp::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn shift_moves_physical_only() {
        let mut s = HlcStamp::new(UtcMicros::from_micros(100), 9);
        s.shift(-30);
        assert_eq!(s.physical, UtcMicros::from_micros(70));
        assert_eq!(s.logical, 9);
    }

    #[test]
    fn divergence_is_signed() {
        let s = HlcStamp::new(UtcMicros::from_micros(150), 0);
        assert_eq!(s.divergence_us(UtcMicros::from_micros(100)), 50);
        assert_eq!(s.divergence_us(UtcMicros::from_micros(200)), -50);
    }

    #[test]
    fn display_is_compact() {
        let s = HlcStamp::new(UtcMicros::from_secs(1), 2);
        assert_eq!(s.to_string(), "hlc:1.000000+2");
    }
}
