//! Dynamically-typed field values.
//!
//! The BRISK sensors provide "the convenience of dynamic typing" (§3.2): a
//! record is a short sequence of heterogeneous fields. There are thirteen
//! *basic* types ("over ten basic types … ranging from bytes, to floats, to
//! null-terminated strings") and three *system* types used for coordination
//! between BRISK, the application and consumer tools:
//!
//! * `X_TS` ([`ValueType::Ts`]) — an embedded BRISK-internal timestamp,
//! * `X_REASON` ([`ValueType::Reason`]) and `X_CONSEQ`
//!   ([`ValueType::Conseq`]) — markers for causally-related events.
//!
//! The sixteen original types have 4-bit codes so the transfer protocol can
//! pack two field types per byte in its compressed meta-information header.
//! A fourth system type added by BRISK-rs, `X_TRACE` ([`ValueType::Trace`],
//! code 16), carries the self-tracing context of a sampled record; any
//! descriptor containing it switches to the wide (one byte per code)
//! descriptor form — see [`crate::descriptor::RecordDescriptor::pack`].

use crate::error::{BriskError, Result};
use crate::hlc::HlcStamp;
use crate::ids::CorrelationId;
use crate::time::UtcMicros;
use crate::trace::TraceContext;
use std::fmt;

/// The type tag of a [`Value`]. Codes are stable wire constants: the
/// classic sixteen fit a nibble, `Trace` is the first wide code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum ValueType {
    /// Signed 8-bit integer.
    I8 = 0,
    /// Unsigned 8-bit integer (a "byte").
    U8 = 1,
    /// Signed 16-bit integer.
    I16 = 2,
    /// Unsigned 16-bit integer.
    U16 = 3,
    /// Signed 32-bit integer (the paper's workhorse `integer` type).
    I32 = 4,
    /// Unsigned 32-bit integer.
    U32 = 5,
    /// Signed 64-bit integer.
    I64 = 6,
    /// Unsigned 64-bit integer.
    U64 = 7,
    /// IEEE-754 single-precision float.
    F32 = 8,
    /// IEEE-754 double-precision float.
    F64 = 9,
    /// Boolean.
    Bool = 10,
    /// UTF-8 string (the original used null-terminated C strings).
    Str = 11,
    /// Raw byte blob.
    Bytes = 12,
    /// System type `X_TS`: embedded synchronized timestamp.
    Ts = 13,
    /// System type `X_REASON`: marks this event as a *reason* with the given
    /// correlation identifier.
    Reason = 14,
    /// System type `X_CONSEQ`: marks this event as a *consequence* that must
    /// follow the reason with the same identifier.
    Conseq = 15,
    /// System type `X_TRACE`: self-tracing context of a sampled record
    /// (trace id + per-stage stamps). First code beyond the nibble range.
    Trace = 16,
    /// System type `X_HLC`: hybrid logical clock stamp, a timestamp
    /// consistent with happened-before even when wall clocks disagree.
    /// Wide (one byte) code, like `X_TRACE`.
    Hlc = 17,
}

impl ValueType {
    /// All value types in code order.
    pub const ALL: [ValueType; 18] = [
        ValueType::I8,
        ValueType::U8,
        ValueType::I16,
        ValueType::U16,
        ValueType::I32,
        ValueType::U32,
        ValueType::I64,
        ValueType::U64,
        ValueType::F32,
        ValueType::F64,
        ValueType::Bool,
        ValueType::Str,
        ValueType::Bytes,
        ValueType::Ts,
        ValueType::Reason,
        ValueType::Conseq,
        ValueType::Trace,
        ValueType::Hlc,
    ];

    /// Wire code (0..=17).
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`ValueType::code`].
    pub fn from_code(code: u8) -> Result<ValueType> {
        ValueType::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| BriskError::Codec(format!("invalid value-type code {code}")))
    }

    /// True for the system types (`X_TS`, `X_REASON`, `X_CONSEQ`,
    /// `X_TRACE`, `X_HLC`).
    #[inline]
    pub const fn is_system(self) -> bool {
        matches!(
            self,
            ValueType::Ts
                | ValueType::Reason
                | ValueType::Conseq
                | ValueType::Trace
                | ValueType::Hlc
        )
    }

    /// True for types whose encoded size depends on the payload.
    #[inline]
    pub const fn is_variable_size(self) -> bool {
        matches!(self, ValueType::Str | ValueType::Bytes | ValueType::Trace)
    }

    /// Size of the payload in the *native* binary encoding, if fixed.
    pub const fn native_fixed_size(self) -> Option<usize> {
        match self {
            ValueType::I8 | ValueType::U8 | ValueType::Bool => Some(1),
            ValueType::I16 | ValueType::U16 => Some(2),
            ValueType::I32 | ValueType::U32 | ValueType::F32 => Some(4),
            ValueType::I64
            | ValueType::U64
            | ValueType::F64
            | ValueType::Ts
            | ValueType::Reason
            | ValueType::Conseq => Some(8),
            ValueType::Hlc => Some(HlcStamp::ENCODED_SIZE),
            ValueType::Str | ValueType::Bytes | ValueType::Trace => None,
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::I8 => "i8",
            ValueType::U8 => "u8",
            ValueType::I16 => "i16",
            ValueType::U16 => "u16",
            ValueType::I32 => "i32",
            ValueType::U32 => "u32",
            ValueType::I64 => "i64",
            ValueType::U64 => "u64",
            ValueType::F32 => "f32",
            ValueType::F64 => "f64",
            ValueType::Bool => "bool",
            ValueType::Str => "str",
            ValueType::Bytes => "bytes",
            ValueType::Ts => "X_TS",
            ValueType::Reason => "X_REASON",
            ValueType::Conseq => "X_CONSEQ",
            ValueType::Trace => "X_TRACE",
            ValueType::Hlc => "X_HLC",
        };
        f.write_str(s)
    }
}

/// One dynamically-typed field of an event record.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Signed 8-bit integer.
    I8(i8),
    /// Unsigned 8-bit integer.
    U8(u8),
    /// Signed 16-bit integer.
    I16(i16),
    /// Unsigned 16-bit integer.
    U16(u16),
    /// Signed 32-bit integer.
    I32(i32),
    /// Unsigned 32-bit integer.
    U32(u32),
    /// Signed 64-bit integer.
    I64(i64),
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Single-precision float.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Embedded synchronized timestamp (`X_TS`).
    Ts(UtcMicros),
    /// Reason marker (`X_REASON`).
    Reason(CorrelationId),
    /// Consequence marker (`X_CONSEQ`).
    Conseq(CorrelationId),
    /// Self-tracing context (`X_TRACE`).
    Trace(TraceContext),
    /// Hybrid logical clock stamp (`X_HLC`).
    Hlc(HlcStamp),
}

impl Value {
    /// The type tag of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::I8(_) => ValueType::I8,
            Value::U8(_) => ValueType::U8,
            Value::I16(_) => ValueType::I16,
            Value::U16(_) => ValueType::U16,
            Value::I32(_) => ValueType::I32,
            Value::U32(_) => ValueType::U32,
            Value::I64(_) => ValueType::I64,
            Value::U64(_) => ValueType::U64,
            Value::F32(_) => ValueType::F32,
            Value::F64(_) => ValueType::F64,
            Value::Bool(_) => ValueType::Bool,
            Value::Str(_) => ValueType::Str,
            Value::Bytes(_) => ValueType::Bytes,
            Value::Ts(_) => ValueType::Ts,
            Value::Reason(_) => ValueType::Reason,
            Value::Conseq(_) => ValueType::Conseq,
            Value::Trace(_) => ValueType::Trace,
            Value::Hlc(_) => ValueType::Hlc,
        }
    }

    /// Widening view of any integer-like value as `i64`, if applicable.
    /// `U64` values above `i64::MAX` return `None` rather than wrap.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I8(v) => Some(v as i64),
            Value::U8(v) => Some(v as i64),
            Value::I16(v) => Some(v as i64),
            Value::U16(v) => Some(v as i64),
            Value::I32(v) => Some(v as i64),
            Value::U32(v) => Some(v as i64),
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::Bool(v) => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric view as `f64` for integers and floats.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F32(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            _ => self.as_i64().map(|v| v as f64),
        }
    }

    /// String view, for `Str` values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Byte-slice view, for `Bytes` values.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Embedded timestamp, for `X_TS` values.
    pub fn as_ts(&self) -> Option<UtcMicros> {
        match *self {
            Value::Ts(t) => Some(t),
            _ => None,
        }
    }

    /// Correlation id, for `X_REASON` / `X_CONSEQ` values.
    pub fn correlation_id(&self) -> Option<CorrelationId> {
        match *self {
            Value::Reason(id) | Value::Conseq(id) => Some(id),
            _ => None,
        }
    }

    /// Trace context, for `X_TRACE` values.
    pub fn as_trace(&self) -> Option<&TraceContext> {
        match self {
            Value::Trace(ctx) => Some(ctx),
            _ => None,
        }
    }

    /// Hybrid logical clock stamp, for `X_HLC` values.
    pub fn as_hlc(&self) -> Option<HlcStamp> {
        match *self {
            Value::Hlc(s) => Some(s),
            _ => None,
        }
    }

    /// Size of this value's payload in the native binary encoding
    /// (excluding the type nibble held in the record header).
    pub fn native_size(&self) -> usize {
        match self {
            Value::Str(s) => 4 + s.len(),
            Value::Bytes(b) => 4 + b.len(),
            Value::Trace(ctx) => ctx.encoded_size(),
            v => v.value_type().native_fixed_size().expect("fixed-size type"),
        }
    }

    /// Size of this value's payload in the XDR encoding (4-byte aligned,
    /// variable-size values carry a length word).
    pub fn xdr_size(&self) -> usize {
        fn pad4(n: usize) -> usize {
            (n + 3) & !3
        }
        match self {
            Value::I8(_)
            | Value::U8(_)
            | Value::I16(_)
            | Value::U16(_)
            | Value::I32(_)
            | Value::U32(_)
            | Value::F32(_)
            | Value::Bool(_) => 4,
            Value::I64(_)
            | Value::U64(_)
            | Value::F64(_)
            | Value::Ts(_)
            | Value::Reason(_)
            | Value::Conseq(_) => 8,
            // hyper physical + uint logical.
            Value::Hlc(_) => 12,
            Value::Str(s) => 4 + pad4(s.len()),
            Value::Bytes(b) => 4 + pad4(b.len()),
            // uhyper id + uint stamp count + (uint stage + hyper ts) each.
            Value::Trace(ctx) => 12 + 12 * ctx.stamps().len(),
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident),* $(,)?) => {
        $(impl From<$ty> for Value {
            #[inline]
            fn from(v: $ty) -> Value { Value::$variant(v) }
        })*
    };
}

value_from! {
    i8 => I8, u8 => U8, i16 => I16, u16 => U16, i32 => I32, u32 => U32,
    i64 => I64, u64 => U64, f32 => F32, f64 => F64, bool => Bool,
    String => Str, Vec<u8> => Bytes, UtcMicros => Ts,
}

impl From<&str> for Value {
    #[inline]
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<&[u8]> for Value {
    #[inline]
    fn from(v: &[u8]) -> Value {
        Value::Bytes(v.to_vec())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I8(v) => write!(f, "{v}"),
            Value::U8(v) => write!(f, "{v}"),
            Value::I16(v) => write!(f, "{v}"),
            Value::U16(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::U32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Value::Ts(t) => write!(f, "ts:{t}"),
            Value::Reason(id) => write!(f, "reason:{id}"),
            Value::Conseq(id) => write!(f, "conseq:{id}"),
            Value::Trace(ctx) => write!(f, "{ctx}"),
            Value::Hlc(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for vt in ValueType::ALL {
            assert_eq!(ValueType::from_code(vt.code()).unwrap(), vt);
            if !matches!(vt, ValueType::Trace | ValueType::Hlc) {
                assert!(vt.code() < 16, "classic codes must fit in a nibble");
            }
        }
        assert_eq!(ValueType::Trace.code(), 16);
        assert_eq!(ValueType::Hlc.code(), 17);
        assert!(ValueType::from_code(18).is_err());
        assert!(ValueType::from_code(255).is_err());
    }

    #[test]
    fn system_type_classification() {
        assert!(ValueType::Ts.is_system());
        assert!(ValueType::Reason.is_system());
        assert!(ValueType::Conseq.is_system());
        assert!(ValueType::Trace.is_system());
        assert!(ValueType::Hlc.is_system());
        assert!(!ValueType::I32.is_system());
        assert!(!ValueType::Str.is_system());
    }

    #[test]
    fn value_type_of_each_variant() {
        let cases: Vec<(Value, ValueType)> = vec![
            (Value::I8(-1), ValueType::I8),
            (Value::U8(1), ValueType::U8),
            (Value::I16(-2), ValueType::I16),
            (Value::U16(2), ValueType::U16),
            (Value::I32(-3), ValueType::I32),
            (Value::U32(3), ValueType::U32),
            (Value::I64(-4), ValueType::I64),
            (Value::U64(4), ValueType::U64),
            (Value::F32(0.5), ValueType::F32),
            (Value::F64(0.25), ValueType::F64),
            (Value::Bool(true), ValueType::Bool),
            (Value::Str("x".into()), ValueType::Str),
            (Value::Bytes(vec![1]), ValueType::Bytes),
            (Value::Ts(UtcMicros::from_micros(1)), ValueType::Ts),
            (Value::Reason(CorrelationId(1)), ValueType::Reason),
            (Value::Conseq(CorrelationId(2)), ValueType::Conseq),
            (
                Value::Trace(TraceContext::origin(7, UtcMicros::ZERO)),
                ValueType::Trace,
            ),
            (
                Value::Hlc(HlcStamp::new(UtcMicros::from_micros(3), 1)),
                ValueType::Hlc,
            ),
        ];
        for (v, vt) in cases {
            assert_eq!(v.value_type(), vt);
        }
    }

    #[test]
    fn integer_widening() {
        assert_eq!(Value::I8(-5).as_i64(), Some(-5));
        assert_eq!(Value::U32(7).as_i64(), Some(7));
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
        assert_eq!(Value::Str("x".into()).as_i64(), None);
    }

    #[test]
    fn float_view() {
        assert_eq!(Value::F32(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::I32(3).as_f64(), Some(3.0));
        assert_eq!(Value::U64(u64::MAX).as_f64(), Some(u64::MAX as f64));
        assert_eq!(Value::Bytes(vec![]).as_f64(), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Str("hi".into()).as_str(), Some("hi"));
        assert_eq!(Value::Bytes(vec![9]).as_bytes(), Some(&[9u8][..]));
        assert_eq!(
            Value::Ts(UtcMicros::from_secs(1)).as_ts(),
            Some(UtcMicros::from_secs(1))
        );
        assert_eq!(
            Value::Reason(CorrelationId(42)).correlation_id(),
            Some(CorrelationId(42))
        );
        assert_eq!(
            Value::Conseq(CorrelationId(43)).correlation_id(),
            Some(CorrelationId(43))
        );
        assert_eq!(Value::I32(1).correlation_id(), None);
    }

    #[test]
    fn native_sizes_match_fixed_table() {
        assert_eq!(Value::U8(0).native_size(), 1);
        assert_eq!(Value::I16(0).native_size(), 2);
        assert_eq!(Value::F32(0.0).native_size(), 4);
        assert_eq!(Value::Ts(UtcMicros::ZERO).native_size(), 8);
        assert_eq!(Value::Hlc(HlcStamp::ZERO).native_size(), 12);
        assert_eq!(Value::Str("abc".into()).native_size(), 7);
        assert_eq!(Value::Bytes(vec![0; 10]).native_size(), 14);
        // id (8) + count (1) + one origin stamp (9).
        assert_eq!(
            Value::Trace(TraceContext::origin(1, UtcMicros::ZERO)).native_size(),
            18
        );
    }

    #[test]
    fn trace_accessor() {
        let ctx = TraceContext::origin(5, UtcMicros::from_micros(1));
        let v = Value::Trace(ctx.clone());
        assert_eq!(v.as_trace(), Some(&ctx));
        assert_eq!(Value::I32(0).as_trace(), None);
        assert_eq!(v.as_i64(), None);
        assert_eq!(v.as_f64(), None);
    }

    #[test]
    fn hlc_accessor() {
        let s = HlcStamp::new(UtcMicros::from_micros(5), 2);
        let v = Value::Hlc(s);
        assert_eq!(v.as_hlc(), Some(s));
        assert_eq!(Value::I32(0).as_hlc(), None);
        assert_eq!(v.as_i64(), None);
        assert_eq!(v.as_f64(), None);
    }

    #[test]
    fn xdr_sizes_are_four_byte_aligned() {
        assert_eq!(Value::U8(0).xdr_size(), 4);
        assert_eq!(Value::I64(0).xdr_size(), 8);
        assert_eq!(Value::Hlc(HlcStamp::ZERO).xdr_size(), 12);
        assert_eq!(Value::Str("abc".into()).xdr_size(), 8); // 4 len + 3 pad to 4
        assert_eq!(Value::Str("abcd".into()).xdr_size(), 8);
        assert_eq!(Value::Str("abcde".into()).xdr_size(), 12);
        assert_eq!(Value::Bytes(vec![0; 5]).xdr_size(), 12);
        for v in [Value::I32(0), Value::F64(0.0), Value::Str("xyz".into())] {
            assert_eq!(v.xdr_size() % 4, 0);
        }
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::I32(3));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(&b"ab"[..]), Value::Bytes(vec![b'a', b'b']));
        assert_eq!(
            Value::from(UtcMicros::from_micros(9)),
            Value::Ts(UtcMicros::from_micros(9))
        );
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Value::I32(7).to_string(), "7");
        assert_eq!(Value::Str("a".into()).to_string(), "\"a\"");
        assert_eq!(Value::Bytes(vec![0; 3]).to_string(), "<3 bytes>");
        assert_eq!(Value::Reason(CorrelationId(1)).to_string(), "reason:1");
    }
}
