//! Configuration: the "tuning knobs" of BRISK's subsystems.
//!
//! The paper adds "tuning knobs to many of BRISK's subsystems, so that users
//! can trade-off among the various simple and complex IS performance metrics
//! in a specific working environment" (§2). Each knob cluster gets a struct
//! here; defaults follow the values stated or implied by the paper.

use crate::error::{BriskError, Result};
use std::path::PathBuf;
use std::time::Duration;

/// External sensor (EXS) knobs: batching and latency control (§3.4, Fig. 1
/// "batching, latency control").
#[derive(Clone, Debug, PartialEq)]
pub struct ExsConfig {
    /// Capacity of the sensor→EXS ring buffer in bytes.
    pub ring_capacity: usize,
    /// Flush a batch to the ISM once it holds this many records.
    pub max_batch_records: usize,
    /// Flush a batch once its encoded size reaches this many bytes.
    pub max_batch_bytes: usize,
    /// Flush a non-empty batch after this long even if it is not full —
    /// the *latency control* knob. The paper's worst-case latency lower
    /// bound "was found to depend on waiting select system calls, which can
    /// delay an event record for up to 40 ms"; this plays the role of that
    /// select timeout.
    pub flush_timeout: Duration,
    /// How long the EXS sleeps when the ring buffer is empty. The EXS "may
    /// be assigned a lower priority" (§3.1); a larger idle sleep keeps its
    /// CPU utilization negligible at low event rates.
    pub idle_sleep: Duration,
    /// How many sent-but-unacknowledged batches the EXS keeps for replay
    /// after a reconnect (protocol v2 acknowledged delivery). When the
    /// window is full the oldest unacked batch is evicted (and counted), so
    /// delivery degrades to at-least-v1 semantics instead of blocking the
    /// node; size it to cover the ISM's ack round-trip at peak batch rate.
    pub retransmit_window_batches: usize,
    /// Send a `Heartbeat` once the connection has been idle (nothing sent)
    /// this long, so the ISM can distinguish a quiet node from a silently
    /// dead one. Only v3 connections heartbeat (older peers reject the
    /// tag). `Duration::ZERO` disables heartbeats. Keep this well below
    /// the ISM's `node_timeout` or quiet nodes get evicted.
    pub heartbeat_interval: Duration,
    /// Attach an `X_HLC` hybrid-logical-clock stamp to every record at
    /// scoop time. The stamp captures per-node causal order even when
    /// the physical clock is skewed; an ISM running in causal order mode
    /// merges these stamps into its own HLC. Off by default (adds up to
    /// 14 bytes per record on the wire).
    pub stamp_hlc: bool,
    /// Ignore `SyncAdjust` messages from the ISM, leaving the correction
    /// value wherever it is. A chaos-plane knob: a node with sync
    /// disabled drifts freely, which is exactly the condition causal
    /// ordering must survive. Never set in production.
    pub sync_disabled: bool,
    /// Self-tracing knobs: sampled `X_TRACE` contexts attached at notice
    /// time.
    pub trace: TraceConfig,
}

impl Default for ExsConfig {
    fn default() -> Self {
        ExsConfig {
            ring_capacity: 1 << 20,
            max_batch_records: 256,
            max_batch_bytes: 60 * 1024,
            flush_timeout: Duration::from_millis(40),
            idle_sleep: Duration::from_micros(200),
            retransmit_window_batches: 256,
            heartbeat_interval: Duration::from_millis(500),
            stamp_hlc: false,
            sync_disabled: false,
            trace: TraceConfig::default(),
        }
    }
}

impl ExsConfig {
    /// Validate knob values.
    pub fn validate(&self) -> Result<()> {
        if self.ring_capacity < 1024 {
            return Err(BriskError::Config(
                "ring_capacity must be at least 1 KiB".into(),
            ));
        }
        if self.max_batch_records == 0 {
            return Err(BriskError::Config("max_batch_records must be > 0".into()));
        }
        if self.max_batch_bytes < 64 {
            return Err(BriskError::Config(
                "max_batch_bytes must be at least 64".into(),
            ));
        }
        if self.flush_timeout.is_zero() {
            return Err(BriskError::Config("flush_timeout must be > 0".into()));
        }
        if self.retransmit_window_batches == 0 {
            return Err(BriskError::Config(
                "retransmit_window_batches must be > 0".into(),
            ));
        }
        self.trace.validate()?;
        Ok(())
    }
}

/// Self-tracing knobs: how often a `NOTICE` attaches an `X_TRACE`
/// context so the record's journey through the pipeline is recorded
/// stage by stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Attach a trace context to one in every `sample_every` records a
    /// sensor port emits. `0` disables tracing entirely (the default);
    /// `1` traces every record (e2e test mode). Sampling is per-port
    /// counter based, so a steady sensor yields an unbiased 1-in-N
    /// stream regardless of rate.
    pub sample_every: u32,
}

impl TraceConfig {
    /// Tracing enabled at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sample_every != 0
    }

    /// Trace one record in every `n`.
    pub fn every(n: u32) -> Self {
        TraceConfig { sample_every: n }
    }

    /// Validate knob values. Any `sample_every` is functional; the knob
    /// exists so the bound can grow teeth later without an API break.
    pub fn validate(&self) -> Result<()> {
        Ok(())
    }
}

/// Clock-synchronization knobs (§3.3).
#[derive(Clone, Debug, PartialEq)]
pub struct SyncConfig {
    /// Period between synchronization rounds. The paper's evaluation used a
    /// "5 s polling period".
    pub poll_period: Duration,
    /// How many times the master queries each slave per round, "to average
    /// the results".
    pub samples_per_slave: usize,
    /// The "small threshold" on the average relative skew below which the
    /// correction is damped (microseconds).
    pub skew_threshold_us: i64,
    /// The damping factor applied below the threshold — "a fixed portion of
    /// the relative skew (0.7 in the current implementation)".
    pub damping: f64,
    /// Use the unmodified Cristian algorithm (slaves are driven toward the
    /// *master* clock, full correction always) instead of BRISK's
    /// most-ahead-slave variant. Ablation knob for experiment A1.
    pub original_cristian: bool,
    /// Reject a Cristian sample whose RTT exceeds this multiple of the
    /// node's rolling-median RTT (history kept across rounds), so one
    /// delayed probe cannot yank the offset estimate. `0.0` disables the
    /// check; values below 1.0 are invalid (they would reject the median
    /// itself).
    pub rtt_outlier_multiple: f64,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            poll_period: Duration::from_secs(5),
            samples_per_slave: 4,
            skew_threshold_us: 50,
            damping: 0.7,
            original_cristian: false,
            rtt_outlier_multiple: 3.0,
        }
    }
}

impl SyncConfig {
    /// Validate knob values.
    pub fn validate(&self) -> Result<()> {
        if self.poll_period.is_zero() {
            return Err(BriskError::Config("poll_period must be > 0".into()));
        }
        if self.samples_per_slave == 0 {
            return Err(BriskError::Config("samples_per_slave must be > 0".into()));
        }
        if !(0.0..=1.0).contains(&self.damping) {
            return Err(BriskError::Config("damping must be within [0, 1]".into()));
        }
        if self.skew_threshold_us < 0 {
            return Err(BriskError::Config(
                "skew_threshold_us must be non-negative".into(),
            ));
        }
        if self.rtt_outlier_multiple != 0.0 && self.rtt_outlier_multiple < 1.0 {
            return Err(BriskError::Config(
                "rtt_outlier_multiple must be 0 (off) or at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// On-line sorting knobs (§3.6).
///
/// The sorter "delays each instrumentation data record for `T` time units
/// after its creation", grows `T` when an inversion is detected and then
/// "exponentially decreases the time frame". The evaluation varied four
/// parameters; these knobs are that parameter space.
#[derive(Clone, Debug, PartialEq)]
pub struct SorterConfig {
    /// Initial time frame `T` in microseconds.
    pub initial_frame_us: i64,
    /// Lower bound for `T` as it decays.
    pub min_frame_us: i64,
    /// Upper bound for `T` as it grows.
    pub max_frame_us: i64,
    /// Growth policy on an observed inversion.
    pub growth: FrameGrowth,
    /// Per-decay-step multiplier in (0, 1]; 1.0 disables decay. A *small*
    /// exponent constant (multiplier close to 1, i.e. "a large T's
    /// half-life") is the paper's recommendation for non-latency-critical
    /// applications.
    pub decay_factor: f64,
    /// How often the exponential decay step is applied.
    pub decay_interval: Duration,
}

/// How the time frame grows when two successive records from different
/// external sensors are extracted out of order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FrameGrowth {
    /// Set `T` to the observed lateness of the late record (the paper's
    /// recommended strategy for latency-critical applications: "setting the
    /// time frame T to be as large as the latest late event's lateness").
    ToObservedLateness,
    /// Multiply `T` by this factor.
    Multiplicative(f64),
    /// Add this many microseconds.
    Additive(i64),
}

impl Default for SorterConfig {
    fn default() -> Self {
        SorterConfig {
            initial_frame_us: 2_000,
            min_frame_us: 100,
            max_frame_us: 2_000_000,
            growth: FrameGrowth::ToObservedLateness,
            decay_factor: 0.95,
            decay_interval: Duration::from_millis(100),
        }
    }
}

impl SorterConfig {
    /// Validate knob values.
    pub fn validate(&self) -> Result<()> {
        if self.initial_frame_us < 0 || self.min_frame_us < 0 {
            return Err(BriskError::Config("frames must be non-negative".into()));
        }
        if self.min_frame_us > self.max_frame_us {
            return Err(BriskError::Config(
                "min_frame_us must not exceed max_frame_us".into(),
            ));
        }
        if !(self.min_frame_us..=self.max_frame_us).contains(&self.initial_frame_us) {
            return Err(BriskError::Config(
                "initial_frame_us must lie within [min, max]".into(),
            ));
        }
        if !(0.0 < self.decay_factor && self.decay_factor <= 1.0) {
            return Err(BriskError::Config("decay_factor must be in (0, 1]".into()));
        }
        match self.growth {
            FrameGrowth::Multiplicative(f) if f < 1.0 => Err(BriskError::Config(
                "multiplicative growth factor must be >= 1".into(),
            )),
            FrameGrowth::Additive(a) if a < 0 => Err(BriskError::Config(
                "additive growth must be non-negative".into(),
            )),
            _ => Ok(()),
        }
    }
}

/// Causally-related-event (CRE) handling knobs (§3.6).
#[derive(Clone, Debug, PartialEq)]
pub struct CreConfig {
    /// "A causally-marked event of either type is kept in memory no longer
    /// than a specified timeout, because its peer may have been dropped."
    pub hold_timeout: Duration,
    /// When a consequence's timestamp must be overridden, place it this many
    /// microseconds after its reason.
    pub tachyon_bump_us: i64,
    /// Trigger "an extra round of the clock synchronization algorithm
    /// immediately" when a tachyon is repaired.
    pub extra_sync_on_tachyon: bool,
    /// Token-bucket burst for extra sync requests: at most this many may
    /// fire back-to-back. A tachyon *storm* (one badly skewed node tagging
    /// hundreds of pairs) must not translate into hundreds of sync rounds —
    /// one round fixes the clock; the rest are pure master load.
    pub extra_sync_burst: u32,
    /// Token-bucket refill period: one extra sync token is restored per
    /// this much elapsed ISM time.
    pub extra_sync_refill: Duration,
}

impl Default for CreConfig {
    fn default() -> Self {
        CreConfig {
            hold_timeout: Duration::from_secs(2),
            tachyon_bump_us: 1,
            extra_sync_on_tachyon: true,
            extra_sync_burst: 4,
            extra_sync_refill: Duration::from_secs(1),
        }
    }
}

impl CreConfig {
    /// Validate knob values.
    pub fn validate(&self) -> Result<()> {
        if self.hold_timeout.is_zero() {
            return Err(BriskError::Config("hold_timeout must be > 0".into()));
        }
        if self.tachyon_bump_us <= 0 {
            return Err(BriskError::Config("tachyon_bump_us must be > 0".into()));
        }
        if self.extra_sync_burst == 0 {
            return Err(BriskError::Config("extra_sync_burst must be > 0".into()));
        }
        if self.extra_sync_refill.is_zero() {
            return Err(BriskError::Config("extra_sync_refill must be > 0".into()));
        }
        Ok(())
    }
}

/// When the durable trace store forces its buffered segment bytes to disk.
///
/// The knob trades durability against write amplification: `Always` loses
/// nothing an `on_record` returned `Ok` for, `Interval` bounds the loss
/// window after a crash to the chosen duration, `Never` leaves flushing to
/// the OS page cache (a crash of the *machine* can lose everything since
/// the last rotation; a crash of the *process* alone loses at most the
/// write-behind buffers still queued inside the store).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record.
    Always,
    /// `fdatasync` whenever this much *stream time* (the records' own
    /// timestamps) has passed since the last sync. Stream time tracks wall
    /// time for a live trace while keeping the append path free of clock
    /// reads, and makes the policy behave identically under replay — the
    /// same stream-clock choice age-based retention makes. A stalled
    /// stream leaves the tail unsynced either way: the check can only run
    /// when a record arrives.
    Interval(Duration),
    /// Never sync explicitly; the OS decides.
    #[default]
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI spelling: `always`, `never`, or `interval:<ms>`.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => {
                    let ms: u64 = ms.parse().map_err(|e| {
                        BriskError::Config(format!("bad fsync interval {ms:?}: {e}"))
                    })?;
                    if ms == 0 {
                        return Err(BriskError::Config("fsync interval must be > 0 ms".into()));
                    }
                    Ok(FsyncPolicy::Interval(Duration::from_millis(ms)))
                }
                None => Err(BriskError::Config(format!(
                    "unknown fsync policy {other:?} (want always | never | interval:<ms>)"
                ))),
            },
        }
    }
}

/// Durable trace store knobs (the `brisk-store` subsystem).
#[derive(Clone, Debug, PartialEq)]
pub struct StoreConfig {
    /// Directory holding the segment files. `None` disables the store.
    pub dir: Option<PathBuf>,
    /// Rotate the active segment once it holds this many bytes.
    pub segment_bytes: u64,
    /// When appended records are forced to disk.
    pub fsync: FsyncPolicy,
    /// Evict the oldest sealed segments once the store exceeds this many
    /// bytes in total. `0` disables byte-based retention.
    pub retain_bytes: u64,
    /// Evict sealed segments whose newest record is older than this.
    /// `None` disables age-based retention.
    pub retain_age: Option<Duration>,
    /// Sparse-index granularity: one index entry every N records.
    pub index_every: u32,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            dir: None,
            segment_bytes: 8 << 20,
            fsync: FsyncPolicy::Interval(Duration::from_millis(200)),
            retain_bytes: 0,
            retain_age: None,
            index_every: 64,
        }
    }
}

impl StoreConfig {
    /// Validate knob values.
    pub fn validate(&self) -> Result<()> {
        if self.segment_bytes < 4096 {
            return Err(BriskError::Config(
                "segment_bytes must be at least 4 KiB".into(),
            ));
        }
        if self.index_every == 0 {
            return Err(BriskError::Config("index_every must be > 0".into()));
        }
        if let FsyncPolicy::Interval(d) = self.fsync {
            if d.is_zero() {
                return Err(BriskError::Config("fsync interval must be > 0".into()));
            }
        }
        if let Some(age) = self.retain_age {
            if age.is_zero() {
                return Err(BriskError::Config("retain_age must be > 0".into()));
            }
        }
        Ok(())
    }

    /// Convenience: a store rooted at `dir` with defaults otherwise.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: Some(dir.into()),
            ..StoreConfig::default()
        }
    }
}

/// EXS→ISM flow-control knobs (protocol v3 credit).
///
/// With credit on, the ISM grants each connection a budget of
/// unacknowledged records in `HelloAck`, re-advertised on every
/// `BatchAck`; the EXS stops scooping its rings when the budget is spent,
/// so overload backs up into the SPSC rings' drop accounting instead of
/// RAM. The manager's own ingest queue can be bounded independently, and
/// under sorter memory pressure the shedding policy picks what to lose.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowConfig {
    /// Records one connection may have unacknowledged in flight. `0`
    /// disables credit grants: v3 peers fall back to v2 (ack-only)
    /// semantics.
    pub credit_records: u64,
    /// Bound on records queued between the pump threads and the manager.
    /// While the queue holds more, pumps stop reading their sockets (TCP
    /// backpressure does the rest). `0` leaves the queue unbounded.
    pub max_queued_records: usize,
    /// Under sorter memory pressure, drop the oldest *unmarked* records
    /// instead of force-releasing everything early. CRE-marked records are
    /// never dropped. `false` keeps the force-release behaviour.
    pub shed_unmarked: bool,
}

impl FlowConfig {
    /// Validate knob values.
    pub fn validate(&self) -> Result<()> {
        // Every combination is functional: zeros disable the respective
        // mechanism, and an EXS may always send when its window is empty,
        // so even a tiny credit budget cannot deadlock the path. Guard
        // only against a budget so small it forces one-record batches.
        if self.credit_records != 0 && self.credit_records < 16 {
            return Err(BriskError::Config(
                "credit_records must be 0 (off) or at least 16".into(),
            ));
        }
        Ok(())
    }
}

/// How the ISM merge plane orders the records it releases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrderMode {
    /// Order by the corrected physical header timestamp (the paper's
    /// behaviour): cheap, but only as truthful as clock synchronization.
    #[default]
    Physical,
    /// Order by the hybrid-logical-clock stamp (`X_HLC`): a total order
    /// consistent with happened-before, correct even when a node's
    /// physical clock is seconds wrong. Records without a stamp are
    /// ordered by their physical timestamp as an HLC with logical 0.
    Causal,
}

impl OrderMode {
    /// Parse the CLI spelling: `physical` or `causal`.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "physical" => Ok(OrderMode::Physical),
            "causal" => Ok(OrderMode::Causal),
            other => Err(BriskError::Config(format!(
                "unknown order mode {other:?} (want physical | causal)"
            ))),
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            OrderMode::Physical => "physical",
            OrderMode::Causal => "causal",
        }
    }
}

/// ISM knobs: the sorter and CRE configs plus resource bounds.
#[derive(Clone, Debug, PartialEq)]
pub struct IsmConfig {
    /// On-line sorter knobs.
    pub sorter: SorterConfig,
    /// CRE matcher knobs.
    pub cre: CreConfig,
    /// Ordering discipline for the merge plane (sorter keying and CRE
    /// happened-before reasoning).
    pub order_mode: OrderMode,
    /// Drop events older than the frame when memory pressure exceeds this
    /// many buffered records (Fig. 1 "event dropping"). `0` disables the
    /// bound.
    pub max_buffered_records: usize,
    /// Durable trace store knobs (disabled unless `store.dir` is set).
    pub store: StoreConfig,
    /// EXS→ISM flow-control knobs (credit, queue bound, shedding).
    pub flow: FlowConfig,
    /// Evict a node whose connection has shown no life (no batch, sync
    /// reply or heartbeat) for this long — the liveness net under silently
    /// dead peers that TCP never reports. Must be comfortably larger than
    /// the senders' `ExsConfig::heartbeat_interval`. `None` disables
    /// eviction.
    pub node_timeout: Option<Duration>,
    /// How many undecodable frames one connection may produce before the
    /// ISM disconnects it. Bad frames below the budget are quarantined
    /// (counted and sampled in telemetry) and skipped, so a glitching link
    /// degrades without taking the node's stream down; `0` disconnects on
    /// the first bad frame.
    pub protocol_error_budget: u32,
    /// Reactor threads driving all EXS connections. Each thread owns a
    /// shard of connections and multiplexes their sockets with `poll(2)`,
    /// so a thousand idle sensors cost a handful of threads, not a
    /// thousand. `0` (the default) sizes the pool from the machine's
    /// available parallelism, capped at 4.
    pub pump_threads: usize,
}

impl Default for IsmConfig {
    fn default() -> Self {
        IsmConfig {
            sorter: SorterConfig::default(),
            cre: CreConfig::default(),
            order_mode: OrderMode::default(),
            max_buffered_records: 0,
            store: StoreConfig::default(),
            flow: FlowConfig::default(),
            node_timeout: None,
            protocol_error_budget: 8,
            pump_threads: 0,
        }
    }
}

impl IsmConfig {
    /// Validate all nested knob values.
    pub fn validate(&self) -> Result<()> {
        self.sorter.validate()?;
        self.cre.validate()?;
        self.store.validate()?;
        self.flow.validate()?;
        if let Some(t) = self.node_timeout {
            if t.is_zero() {
                return Err(BriskError::Config("node_timeout must be > 0".into()));
            }
        }
        if self.pump_threads > 256 {
            return Err(BriskError::Config(
                "pump_threads must be at most 256 (0 = auto)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // single-knob mutation is the point of these tests
mod tests {
    use super::*;

    #[test]
    fn trace_config_knob() {
        assert!(!TraceConfig::default().enabled());
        assert!(TraceConfig::every(1).enabled());
        assert_eq!(TraceConfig::every(128).sample_every, 128);
        TraceConfig::every(128).validate().unwrap();
        let mut c = ExsConfig::default();
        c.trace = TraceConfig::every(64);
        c.validate().unwrap();
    }

    #[test]
    fn defaults_are_valid() {
        ExsConfig::default().validate().unwrap();
        SyncConfig::default().validate().unwrap();
        SorterConfig::default().validate().unwrap();
        CreConfig::default().validate().unwrap();
        IsmConfig::default().validate().unwrap();
    }

    #[test]
    fn default_values_match_paper() {
        let sync = SyncConfig::default();
        assert_eq!(sync.poll_period, Duration::from_secs(5));
        assert!((sync.damping - 0.7).abs() < f64::EPSILON);
        let exs = ExsConfig::default();
        assert_eq!(exs.flush_timeout, Duration::from_millis(40));
    }

    #[test]
    fn exs_validation_catches_bad_knobs() {
        let mut c = ExsConfig::default();
        c.ring_capacity = 10;
        assert!(c.validate().is_err());
        let mut c = ExsConfig::default();
        c.max_batch_records = 0;
        assert!(c.validate().is_err());
        let mut c = ExsConfig::default();
        c.flush_timeout = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = ExsConfig::default();
        c.max_batch_bytes = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sync_validation() {
        let mut c = SyncConfig::default();
        c.damping = 1.5;
        assert!(c.validate().is_err());
        let mut c = SyncConfig::default();
        c.samples_per_slave = 0;
        assert!(c.validate().is_err());
        let mut c = SyncConfig::default();
        c.skew_threshold_us = -1;
        assert!(c.validate().is_err());
        let mut c = SyncConfig::default();
        c.poll_period = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = SyncConfig::default();
        c.rtt_outlier_multiple = 0.5;
        assert!(c.validate().is_err());
        let mut c = SyncConfig::default();
        c.rtt_outlier_multiple = 0.0;
        assert!(c.validate().is_ok(), "0 disables outlier rejection");
    }

    #[test]
    fn sorter_validation() {
        let mut c = SorterConfig::default();
        c.min_frame_us = 10;
        c.max_frame_us = 5;
        assert!(c.validate().is_err());
        let mut c = SorterConfig::default();
        c.initial_frame_us = c.max_frame_us + 1;
        assert!(c.validate().is_err());
        let mut c = SorterConfig::default();
        c.decay_factor = 0.0;
        assert!(c.validate().is_err());
        let mut c = SorterConfig::default();
        c.decay_factor = 1.0;
        assert!(c.validate().is_ok(), "1.0 disables decay and is legal");
        let mut c = SorterConfig::default();
        c.growth = FrameGrowth::Multiplicative(0.5);
        assert!(c.validate().is_err());
        let mut c = SorterConfig::default();
        c.growth = FrameGrowth::Additive(-1);
        assert!(c.validate().is_err());
    }

    #[test]
    fn cre_validation() {
        let mut c = CreConfig::default();
        c.hold_timeout = Duration::ZERO;
        assert!(c.validate().is_err());
        let mut c = CreConfig::default();
        c.tachyon_bump_us = 0;
        assert!(c.validate().is_err());
        let mut c = CreConfig::default();
        c.extra_sync_burst = 0;
        assert!(c.validate().is_err());
        let mut c = CreConfig::default();
        c.extra_sync_refill = Duration::ZERO;
        assert!(c.validate().is_err());
    }

    #[test]
    fn order_mode_parses() {
        assert_eq!(OrderMode::parse("physical").unwrap(), OrderMode::Physical);
        assert_eq!(OrderMode::parse("causal").unwrap(), OrderMode::Causal);
        assert!(OrderMode::parse("hlc").is_err());
        assert_eq!(OrderMode::default(), OrderMode::Physical);
        for m in [OrderMode::Physical, OrderMode::Causal] {
            assert_eq!(OrderMode::parse(m.as_str()).unwrap(), m);
        }
    }

    #[test]
    fn ism_validation_is_recursive() {
        let mut c = IsmConfig::default();
        c.sorter.decay_factor = 2.0;
        assert!(c.validate().is_err());
        let mut c = IsmConfig::default();
        c.node_timeout = Some(Duration::ZERO);
        assert!(c.validate().is_err());
        let mut c = IsmConfig::default();
        c.node_timeout = Some(Duration::from_secs(2));
        c.protocol_error_budget = 0;
        assert!(c.validate().is_ok(), "budget 0 = disconnect on first error");
        let mut c = IsmConfig::default();
        c.cre.tachyon_bump_us = -3;
        assert!(c.validate().is_err());
        let mut c = IsmConfig::default();
        c.store.segment_bytes = 16;
        assert!(c.validate().is_err());
        let mut c = IsmConfig::default();
        c.flow.credit_records = 3;
        assert!(c.validate().is_err());
        let mut c = IsmConfig::default();
        c.pump_threads = 257;
        assert!(c.validate().is_err());
        let mut c = IsmConfig::default();
        c.pump_threads = 2;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn flow_validation() {
        FlowConfig::default().validate().unwrap();
        let c = FlowConfig {
            credit_records: 0,
            max_queued_records: 0,
            shed_unmarked: true,
        };
        c.validate().unwrap();
        let c = FlowConfig {
            credit_records: 16,
            max_queued_records: 1,
            shed_unmarked: false,
        };
        c.validate().unwrap();
        let c = FlowConfig {
            credit_records: 15,
            ..FlowConfig::default()
        };
        assert!(c.validate().is_err(), "sub-batch budgets rejected");
    }

    #[test]
    fn store_validation() {
        StoreConfig::default().validate().unwrap();
        StoreConfig::at("/tmp/x").validate().unwrap();
        let mut c = StoreConfig::default();
        c.index_every = 0;
        assert!(c.validate().is_err());
        let mut c = StoreConfig::default();
        c.fsync = FsyncPolicy::Interval(Duration::ZERO);
        assert!(c.validate().is_err());
        let mut c = StoreConfig::default();
        c.retain_age = Some(Duration::ZERO);
        assert!(c.validate().is_err());
    }

    #[test]
    fn fsync_policy_parses_cli_spellings() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("never").unwrap(), FsyncPolicy::Never);
        assert_eq!(
            FsyncPolicy::parse("interval:250").unwrap(),
            FsyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("interval:abc").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }
}
