//! Self-tracing context: sampled per-record spans through the pipeline.
//!
//! BRISK observes other systems; this module lets it observe *itself* at
//! per-record granularity. A sampled record carries a [`TraceContext`] as a
//! dynamic system field (`X_TRACE`, [`crate::value::ValueType::Trace`]) —
//! the same mechanism the paper uses for `X_TS` — so the context needs no
//! schema change anywhere: it survives the ring buffer, the wire, the
//! sorter and the store like any other field.
//!
//! The context is a 64-bit trace id plus an append-only list of
//! `(stage, timestamp)` stamps, one per pipeline hop. Stamps recorded
//! before the EXS applies its clock correction are raw local time; the EXS
//! shifts them (exactly once, via [`TraceContext::shift`] from
//! [`crate::record::EventRecord::apply_correction`]) so every stamp a
//! consumer sees is in synchronized time.

use crate::error::{BriskError, Result};
use crate::time::UtcMicros;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of stamps one context may carry. Decoders enforce this
/// so a corrupt stream cannot allocate unboundedly; stampers keep the
/// first `N-1` stamps and overwrite the last slot past the limit (better
/// a truncated trace than a lost record — and the *terminal* stamp must
/// survive so deep pipelines still see their delivery hop).
pub const MAX_TRACE_STAMPS: usize = 16;

/// Stamps displaced because a context was already at [`MAX_TRACE_STAMPS`].
/// Process-global (contexts are tiny values passed by record; threading a
/// counter handle through every hop would cost more than the stamp) and
/// exported as `brisk_trace_stamps_dropped_total`.
static STAMPS_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Total trace stamps dropped (displaced by a newer stamp) because their
/// context was full. Monotonic over the process lifetime.
pub fn trace_stamps_dropped_total() -> u64 {
    STAMPS_DROPPED.load(Ordering::Relaxed)
}

/// A pipeline stage that can stamp a trace. Codes are stable wire
/// constants (one byte).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum TraceStage {
    /// Sensor fired: the record was built inside the application.
    Notice = 0,
    /// EXS scooped the record out of the shared ring buffer.
    ExsScoop = 1,
    /// EXS handed the batch containing the record to the transport.
    BatchSend = 2,
    /// ISM pump thread decoded the record off the wire.
    PumpRecv = 3,
    /// Record admitted into the on-line sorter.
    SorterAdmit = 4,
    /// Record released from the sorter in timestamp order.
    SorterRelease = 5,
    /// CRE held the record waiting for its reason.
    CreHold = 6,
    /// CRE repaired the record's tachyonic timestamp.
    CreRepair = 7,
    /// Record delivered to the output buffer / store / sinks.
    Deliver = 8,
}

impl TraceStage {
    /// All stages in code order.
    pub const ALL: [TraceStage; 9] = [
        TraceStage::Notice,
        TraceStage::ExsScoop,
        TraceStage::BatchSend,
        TraceStage::PumpRecv,
        TraceStage::SorterAdmit,
        TraceStage::SorterRelease,
        TraceStage::CreHold,
        TraceStage::CreRepair,
        TraceStage::Deliver,
    ];

    /// Wire code (0..=8).
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`TraceStage::code`].
    pub fn from_code(code: u8) -> Result<TraceStage> {
        TraceStage::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| BriskError::Codec(format!("invalid trace-stage code {code}")))
    }

    /// Stable snake-case name (used in metric labels and the waterfall).
    pub const fn name(self) -> &'static str {
        match self {
            TraceStage::Notice => "notice",
            TraceStage::ExsScoop => "exs_scoop",
            TraceStage::BatchSend => "batch_send",
            TraceStage::PumpRecv => "pump_recv",
            TraceStage::SorterAdmit => "sorter_admit",
            TraceStage::SorterRelease => "sorter_release",
            TraceStage::CreHold => "cre_hold",
            TraceStage::CreRepair => "cre_repair",
            TraceStage::Deliver => "deliver",
        }
    }
}

impl fmt::Display for TraceStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The payload of an `X_TRACE` field: a trace id plus per-stage stamps.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceContext {
    /// Sampled trace identifier (SplitMix64 output; never zero by
    /// convention so tools can use 0 as "no trace").
    pub trace_id: u64,
    stamps: Vec<(TraceStage, UtcMicros)>,
}

impl TraceContext {
    /// New context stamped at its origin (the `NOTICE` site).
    pub fn origin(trace_id: u64, ts: UtcMicros) -> Self {
        TraceContext {
            trace_id,
            stamps: vec![(TraceStage::Notice, ts)],
        }
    }

    /// Context with explicit stamps (decoder/test constructor). Fails when
    /// over [`MAX_TRACE_STAMPS`].
    pub fn with_stamps(trace_id: u64, stamps: Vec<(TraceStage, UtcMicros)>) -> Result<Self> {
        if stamps.len() > MAX_TRACE_STAMPS {
            return Err(BriskError::Malformed(format!(
                "{} trace stamps exceeds the {MAX_TRACE_STAMPS}-stamp limit",
                stamps.len()
            )));
        }
        Ok(TraceContext { trace_id, stamps })
    }

    /// Append a stamp. Once [`MAX_TRACE_STAMPS`] is reached the first
    /// `N-1` stamps are kept and each new stamp *overwrites the last
    /// slot*, so a looping stage can never make the record unencodable
    /// while the most recent (terminal) stamp always survives — a deep
    /// pipeline keeps its delivery hop. Each displaced stamp is counted
    /// in [`trace_stamps_dropped_total`].
    #[inline]
    pub fn stamp(&mut self, stage: TraceStage, ts: UtcMicros) {
        if self.stamps.len() < MAX_TRACE_STAMPS {
            self.stamps.push((stage, ts));
        } else if let Some(last) = self.stamps.last_mut() {
            STAMPS_DROPPED.fetch_add(1, Ordering::Relaxed);
            *last = (stage, ts);
        }
    }

    /// The accumulated stamps, in the order they were recorded.
    #[inline]
    pub fn stamps(&self) -> &[(TraceStage, UtcMicros)] {
        &self.stamps
    }

    /// Timestamp of the first stamp for `stage`, if any.
    pub fn stamp_at(&self, stage: TraceStage) -> Option<UtcMicros> {
        self.stamps
            .iter()
            .find_map(|&(s, t)| (s == stage).then_some(t))
    }

    /// Shift every stamp by the EXS clock-correction value. Called from
    /// [`crate::record::EventRecord::apply_correction`] exactly once, at
    /// scoop time, before any post-correction stamps are added.
    pub fn shift(&mut self, delta_us: i64) {
        for (_, t) in &mut self.stamps {
            *t = t.offset(delta_us);
        }
    }

    /// Encoded size in the native binary form: id (8) + count (1) +
    /// 9 bytes per stamp.
    pub fn encoded_size(&self) -> usize {
        8 + 1 + 9 * self.stamps.len()
    }

    /// Append the native binary encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.trace_id.to_le_bytes());
        out.push(self.stamps.len() as u8);
        for &(stage, ts) in &self.stamps {
            out.push(stage.code());
            out.extend_from_slice(&ts.as_micros().to_le_bytes());
        }
    }

    /// Decode a context from the front of `buf`, returning it and the
    /// number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(TraceContext, usize)> {
        if buf.len() < 9 {
            return Err(BriskError::Codec("truncated trace context".into()));
        }
        let trace_id = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let count = buf[8] as usize;
        if count > MAX_TRACE_STAMPS {
            return Err(BriskError::Codec(format!(
                "trace stamp count {count} exceeds {MAX_TRACE_STAMPS}"
            )));
        }
        let need = 9 + 9 * count;
        if buf.len() < need {
            return Err(BriskError::Codec("truncated trace stamps".into()));
        }
        let mut stamps = Vec::with_capacity(count);
        for i in 0..count {
            let at = 9 + 9 * i;
            let stage = TraceStage::from_code(buf[at])?;
            let ts = i64::from_le_bytes(buf[at + 1..at + 9].try_into().unwrap());
            stamps.push((stage, UtcMicros::from_micros(ts)));
        }
        Ok((TraceContext { trace_id, stamps }, need))
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace:{:016x}[", self.trace_id)?;
        for (i, (stage, ts)) in self.stamps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{stage}@{ts}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TraceContext {
        let mut c = TraceContext::origin(0xdead_beef_cafe_f00d, UtcMicros::from_micros(100));
        c.stamp(TraceStage::ExsScoop, UtcMicros::from_micros(150));
        c.stamp(TraceStage::Deliver, UtcMicros::from_micros(900));
        c
    }

    #[test]
    fn stage_codes_round_trip() {
        for s in TraceStage::ALL {
            assert_eq!(TraceStage::from_code(s.code()).unwrap(), s);
        }
        assert!(TraceStage::from_code(9).is_err());
        assert!(TraceStage::from_code(255).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = ctx();
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        assert_eq!(buf.len(), c.encoded_size());
        let (back, used) = TraceContext::decode(&buf).unwrap();
        assert_eq!(back, c);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn decode_consumes_prefix_only() {
        let c = ctx();
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        buf.extend_from_slice(&[1, 2, 3]);
        let (back, used) = TraceContext::decode(&buf).unwrap();
        assert_eq!(back, c);
        assert_eq!(used, c.encoded_size());
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let c = ctx();
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        for cut in 0..buf.len() {
            assert!(TraceContext::decode(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn oversized_stamp_count_rejected() {
        let mut buf = Vec::new();
        ctx().encode_into(&mut buf);
        buf[8] = (MAX_TRACE_STAMPS + 1) as u8;
        assert!(TraceContext::decode(&buf).is_err());
    }

    #[test]
    fn bad_stage_code_rejected() {
        let mut buf = Vec::new();
        ctx().encode_into(&mut buf);
        buf[9] = 200;
        assert!(TraceContext::decode(&buf).is_err());
    }

    #[test]
    fn stamps_cap_at_limit() {
        let mut c = TraceContext::origin(1, UtcMicros::ZERO);
        for i in 0..MAX_TRACE_STAMPS + 5 {
            c.stamp(TraceStage::SorterAdmit, UtcMicros::from_micros(i as i64));
        }
        assert_eq!(c.stamps().len(), MAX_TRACE_STAMPS);
        // Still encodable.
        let mut buf = Vec::new();
        c.encode_into(&mut buf);
        assert!(TraceContext::decode(&buf).is_ok());
    }

    #[test]
    fn full_context_keeps_terminal_stamp_and_counts_drops() {
        let before = trace_stamps_dropped_total();
        let mut c = TraceContext::origin(1, UtcMicros::ZERO);
        // Fill to the cap with a looping stage...
        for i in 1..MAX_TRACE_STAMPS {
            c.stamp(TraceStage::SorterAdmit, UtcMicros::from_micros(i as i64));
        }
        assert_eq!(c.stamps().len(), MAX_TRACE_STAMPS);
        // ...then keep stamping past it; the terminal Deliver stamp must
        // land in the last slot instead of vanishing.
        c.stamp(TraceStage::CreHold, UtcMicros::from_micros(700));
        c.stamp(TraceStage::Deliver, UtcMicros::from_micros(900));
        assert_eq!(c.stamps().len(), MAX_TRACE_STAMPS);
        // First N-1 stamps intact.
        assert_eq!(c.stamps()[0], (TraceStage::Notice, UtcMicros::ZERO));
        assert_eq!(
            c.stamps()[MAX_TRACE_STAMPS - 2],
            (
                TraceStage::SorterAdmit,
                UtcMicros::from_micros((MAX_TRACE_STAMPS - 2) as i64)
            )
        );
        // Last slot holds the most recent stamp.
        assert_eq!(
            c.stamps()[MAX_TRACE_STAMPS - 1],
            (TraceStage::Deliver, UtcMicros::from_micros(900))
        );
        assert_eq!(
            c.stamp_at(TraceStage::Deliver),
            Some(UtcMicros::from_micros(900))
        );
        // Two stamps were displaced (the original slot-16 content and the
        // CreHold overwrite). Other tests stamp concurrently, so >=.
        assert!(trace_stamps_dropped_total() >= before + 2);
    }

    #[test]
    fn with_stamps_enforces_limit() {
        let too_many = vec![(TraceStage::Notice, UtcMicros::ZERO); MAX_TRACE_STAMPS + 1];
        assert!(TraceContext::with_stamps(1, too_many).is_err());
        assert!(TraceContext::with_stamps(1, vec![])
            .unwrap()
            .stamps()
            .is_empty());
    }

    #[test]
    fn shift_moves_every_stamp() {
        let mut c = ctx();
        c.shift(-50);
        assert_eq!(
            c.stamp_at(TraceStage::Notice),
            Some(UtcMicros::from_micros(50))
        );
        assert_eq!(
            c.stamp_at(TraceStage::Deliver),
            Some(UtcMicros::from_micros(850))
        );
    }

    #[test]
    fn stamp_at_finds_first() {
        let c = ctx();
        assert_eq!(
            c.stamp_at(TraceStage::ExsScoop),
            Some(UtcMicros::from_micros(150))
        );
        assert_eq!(c.stamp_at(TraceStage::PumpRecv), None);
    }

    #[test]
    fn display_is_readable() {
        let s = ctx().to_string();
        assert!(s.contains("deadbeefcafef00d"), "{s}");
        assert!(s.contains("exs_scoop"), "{s}");
    }
}
