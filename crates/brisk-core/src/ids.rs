//! Identifier newtypes used throughout BRISK.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw identifier value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies one node of the target system (one LIS / external sensor).
    /// The ISM keys its per-sensor queues and the clock-sync slave table by
    /// this id.
    NodeId,
    u32
);

id_newtype!(
    /// Identifies one internal sensor (one instrumented thread or process)
    /// within a node.
    SensorId,
    u32
);

id_newtype!(
    /// Application-defined event type, analogous to the event number passed
    /// to the paper's `NOTICE` macros and recorded in PICL traces.
    EventTypeId,
    u32
);

id_newtype!(
    /// The `u_long` identifier the user supplies in `X_REASON` / `X_CONSEQ`
    /// fields, "determining which consequence events must follow respective
    /// reason events" (§3.2).
    CorrelationId,
    u64
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn round_trip_raw() {
        assert_eq!(NodeId::from(7).raw(), 7);
        assert_eq!(SensorId(3).raw(), 3);
        assert_eq!(EventTypeId(9).raw(), 9);
        assert_eq!(CorrelationId(u64::MAX).raw(), u64::MAX);
    }

    #[test]
    fn hashable_and_ordered() {
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(1));
        s.insert(NodeId(2));
        assert_eq!(s.len(), 2);
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(NodeId(5).to_string(), "5");
        assert_eq!(format!("{:?}", CorrelationId(8)), "CorrelationId(8)");
    }
}
