//! Microsecond-resolution UTC timestamps.
//!
//! The paper embeds "an eight-byte `longlong_t`, representing the number of
//! microseconds of Universal Coordinated Time (UTC)" into event records
//! (§3.2). [`UtcMicros`] is that value as a signed 64-bit integer so that
//! clock *corrections* (which may be negative intermediate quantities) can
//! be expressed with plain arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// A point in time: microseconds since the Unix epoch, UTC.
///
/// The inner representation is public knowledge for the wire formats (XDR
/// `hyper`, native `i64` little-endian) but should be accessed through
/// [`UtcMicros::as_micros`] in application code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UtcMicros(i64);

impl UtcMicros {
    /// The zero timestamp (the Unix epoch itself).
    pub const ZERO: UtcMicros = UtcMicros(0);

    /// Largest representable timestamp; used as a sentinel by the on-line
    /// sorter's heap.
    pub const MAX: UtcMicros = UtcMicros(i64::MAX);

    /// Construct from a raw microsecond count.
    #[inline]
    pub const fn from_micros(us: i64) -> Self {
        UtcMicros(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        UtcMicros(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        UtcMicros(s * 1_000_000)
    }

    /// The raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Timestamp as floating-point seconds since the epoch. The ISM's PICL
    /// output mode can emit timestamps "as the (floating-point) number of
    /// seconds since the ISM was run" (§3.5); this is the primitive for it.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Read the real system clock, like the `gettimeofday` call inside the
    /// paper's `NOTICE` macro.
    pub fn now() -> Self {
        let since = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or(Duration::ZERO);
        UtcMicros(since.as_micros() as i64)
    }

    /// Signed difference `self - other` in microseconds.
    #[inline]
    pub fn micros_since(self, other: UtcMicros) -> i64 {
        self.0 - other.0
    }

    /// Saturating addition of a signed microsecond offset (a clock
    /// *correction value* in the paper's terms).
    #[inline]
    pub fn offset(self, delta_us: i64) -> Self {
        UtcMicros(self.0.saturating_add(delta_us))
    }

    /// Convert to a `Duration` since the epoch. Negative timestamps clamp
    /// to zero (they only arise from artificial test inputs).
    pub fn to_duration(self) -> Duration {
        if self.0 <= 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.0 as u64)
        }
    }
}

impl fmt::Debug for UtcMicros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UtcMicros({}us)", self.0)
    }
}

impl fmt::Display for UtcMicros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.0.div_euclid(1_000_000);
        let us = self.0.rem_euclid(1_000_000);
        write!(f, "{secs}.{us:06}")
    }
}

impl Add<Duration> for UtcMicros {
    type Output = UtcMicros;
    #[inline]
    fn add(self, rhs: Duration) -> UtcMicros {
        UtcMicros(self.0.saturating_add(rhs.as_micros() as i64))
    }
}

impl AddAssign<Duration> for UtcMicros {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for UtcMicros {
    type Output = UtcMicros;
    #[inline]
    fn sub(self, rhs: Duration) -> UtcMicros {
        UtcMicros(self.0.saturating_sub(rhs.as_micros() as i64))
    }
}

impl SubAssign<Duration> for UtcMicros {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Sub<UtcMicros> for UtcMicros {
    type Output = i64;
    /// Difference in microseconds (signed).
    #[inline]
    fn sub(self, rhs: UtcMicros) -> i64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(UtcMicros::from_secs(2), UtcMicros::from_millis(2_000));
        assert_eq!(UtcMicros::from_millis(3), UtcMicros::from_micros(3_000));
        assert_eq!(UtcMicros::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn ordering_follows_micros() {
        let a = UtcMicros::from_micros(10);
        let b = UtcMicros::from_micros(11);
        assert!(a < b);
        assert_eq!(b.micros_since(a), 1);
        assert_eq!(a.micros_since(b), -1);
    }

    #[test]
    fn duration_arithmetic() {
        let t = UtcMicros::from_secs(5);
        assert_eq!(
            t + Duration::from_micros(7),
            UtcMicros::from_micros(5_000_007)
        );
        assert_eq!(t - Duration::from_secs(1), UtcMicros::from_secs(4));
        let mut u = t;
        u += Duration::from_millis(1);
        u -= Duration::from_millis(1);
        assert_eq!(u, t);
    }

    #[test]
    fn signed_offset() {
        let t = UtcMicros::from_micros(100);
        assert_eq!(t.offset(-40).as_micros(), 60);
        assert_eq!(t.offset(40).as_micros(), 140);
    }

    #[test]
    fn display_zero_pads_fraction() {
        assert_eq!(UtcMicros::from_micros(1_000_001).to_string(), "1.000001");
        assert_eq!(UtcMicros::from_micros(42).to_string(), "0.000042");
    }

    #[test]
    fn now_is_recent_and_monotonic_enough() {
        let a = UtcMicros::now();
        let b = UtcMicros::now();
        // 2020-01-01 in micros; a sanity lower bound for a working clock.
        assert!(a.as_micros() > 1_577_836_800_000_000);
        assert!(b >= a || a.micros_since(b) < 1_000); // tolerate tiny step-backs
    }

    #[test]
    fn secs_f64_round_trip() {
        let t = UtcMicros::from_micros(1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_bounds() {
        assert_eq!(UtcMicros::MAX + Duration::from_secs(1), UtcMicros::MAX);
        let min = UtcMicros::from_micros(i64::MIN);
        assert_eq!(min - Duration::from_secs(1), min);
    }

    #[test]
    fn to_duration_clamps_negative() {
        assert_eq!(UtcMicros::from_micros(-5).to_duration(), Duration::ZERO);
        assert_eq!(
            UtcMicros::from_micros(250).to_duration(),
            Duration::from_micros(250)
        );
    }
}
