//! The record-consumer abstraction shared by the output stage and the
//! durable trace store.
//!
//! The paper's ISM "may pass instrumentation data to a list of
//! CORBA-enabled visual objects" (§3.5); [`EventSink`] is that consumer
//! boundary. It lives in `brisk-core` (rather than in the ISM crate)
//! because it is implemented on both sides of the pipeline: by the ISM's
//! in-memory and PICL outputs, by visual-object adapters in
//! `brisk-consumers`, and by the durable segment store in `brisk-store` —
//! which is also what the replay driver feeds recovered records back
//! through.

use crate::error::Result;
use crate::record::EventRecord;

/// A consumer of a sorted stream of event records.
pub trait EventSink: Send {
    /// Deliver one sorted record.
    fn on_record(&mut self, rec: &EventRecord) -> Result<()>;

    /// Flush any buffering (called at shutdown and checkpoints).
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Blanket sink over a closure, handy in tests and small tools.
impl<F: FnMut(&EventRecord) -> Result<()> + Send> EventSink for F {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EventTypeId, NodeId, SensorId};
    use crate::time::UtcMicros;

    #[test]
    fn closure_is_a_sink() {
        let rec = EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(1),
            0,
            UtcMicros::ZERO,
            vec![],
        )
        .unwrap();
        let mut seen = 0u32;
        let mut sink = |_r: &EventRecord| -> Result<()> {
            seen += 1;
            Ok(())
        };
        sink.on_record(&rec).unwrap();
        sink.flush().unwrap();
        assert_eq!(seen, 1);
    }
}
