//! Record descriptors: the meta-information describing a record's shape.
//!
//! Each dynamically-typed record is sent "with a meta-information header
//! needed for it to be correctly received", and the external sensor sends it
//! "with the meta-information header compressed" (§3.4). A
//! [`RecordDescriptor`] is the sequence of field types; it compresses to one
//! nibble per field (two fields per byte).
//!
//! The paper bounds records to eight dynamically-typed fields because "more
//! than eight fields in a macro adds excessive code"; BRISK-rs enforces the
//! same limit ([`MAX_FIELDS`]) for wire-format compatibility with that
//! design, while the `define_notice!` specialization macro (in `brisk-lis`)
//! plays the role of the paper's custom-NOTICE generator utility.

use crate::error::{BriskError, Result};
use crate::value::{Value, ValueType};
use std::fmt;

/// Maximum number of fields in one record (paper §3.2).
pub const MAX_FIELDS: usize = 8;

/// High bit of the descriptor count byte: signals the *wide* packed form
/// (one byte per type code) used when any field's code exceeds a nibble.
/// `MAX_FIELDS` is far below 0x80, so the bit is unambiguous.
const WIDE_FLAG: u8 = 0x80;

/// The shape of an event record: the ordered field types.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct RecordDescriptor {
    types: Vec<ValueType>,
}

impl RecordDescriptor {
    /// Build a descriptor from field types. Fails if there are more than
    /// [`MAX_FIELDS`] fields.
    pub fn new(types: impl Into<Vec<ValueType>>) -> Result<Self> {
        let types = types.into();
        if types.len() > MAX_FIELDS {
            return Err(BriskError::Malformed(format!(
                "{} fields exceeds the {MAX_FIELDS}-field limit",
                types.len()
            )));
        }
        Ok(RecordDescriptor { types })
    }

    /// Descriptor of the given field values.
    pub fn of(fields: &[Value]) -> Result<Self> {
        RecordDescriptor::new(fields.iter().map(Value::value_type).collect::<Vec<_>>())
    }

    /// The paper's evaluation workload: "six fields of type integer" (§4).
    pub fn six_i32() -> Self {
        RecordDescriptor {
            types: vec![ValueType::I32; 6],
        }
    }

    /// Number of fields.
    #[inline]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True if the record has no fields.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The ordered field types.
    #[inline]
    pub fn types(&self) -> &[ValueType] {
        &self.types
    }

    /// True if any field is `X_TS`.
    pub fn has_ts(&self) -> bool {
        self.types.contains(&ValueType::Ts)
    }

    /// True if any field is `X_REASON` or `X_CONSEQ`.
    pub fn has_causal_marker(&self) -> bool {
        self.types
            .iter()
            .any(|t| matches!(t, ValueType::Reason | ValueType::Conseq))
    }

    /// Check that `fields` matches this descriptor exactly.
    pub fn check(&self, fields: &[Value]) -> Result<()> {
        if fields.len() != self.types.len() {
            return Err(BriskError::Malformed(format!(
                "record has {} fields, descriptor expects {}",
                fields.len(),
                self.types.len()
            )));
        }
        for (i, (f, t)) in fields.iter().zip(&self.types).enumerate() {
            if f.value_type() != *t {
                return Err(BriskError::Malformed(format!(
                    "field {i} is {}, descriptor expects {t}",
                    f.value_type()
                )));
            }
        }
        Ok(())
    }

    /// True if any field's type code is beyond the nibble range, forcing
    /// the wide packed form.
    fn needs_wide(&self) -> bool {
        self.types.iter().any(|t| t.code() > 0x0f)
    }

    /// Compressed encoding: field count byte followed by packed type
    /// nibbles, low nibble first. An 8-field record costs 5 bytes of
    /// meta-information instead of the 36 bytes a naive
    /// one-XDR-word-per-type header would take.
    ///
    /// Descriptors containing a type code beyond the nibble range (today
    /// only `X_TRACE`, code 16) use the *wide* form: the count byte's high
    /// bit (`WIDE_FLAG`, 0x80) is set and each type takes a whole byte.
    /// Descriptors with only classic codes stay byte-identical to the
    /// historical nibble form, so old wire frames and stored segments
    /// decode unchanged.
    pub fn pack(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + self.types.len());
        if self.needs_wide() {
            out.push(self.types.len() as u8 | WIDE_FLAG);
            out.extend(self.types.iter().map(|t| t.code()));
        } else {
            out.push(self.types.len() as u8);
            for pair in self.types.chunks(2) {
                let lo = pair[0].code();
                let hi = pair.get(1).map_or(0, |t| t.code());
                out.push(lo | (hi << 4));
            }
        }
        out
    }

    /// Decode a packed descriptor from the front of `buf`, returning the
    /// descriptor and the number of bytes consumed. Accepts both the
    /// nibble and the wide form; each descriptor has exactly one canonical
    /// encoding and the other is rejected.
    pub fn unpack(buf: &[u8]) -> Result<(Self, usize)> {
        let &count_byte = buf
            .first()
            .ok_or_else(|| BriskError::Codec("empty descriptor".into()))?;
        let wide = count_byte & WIDE_FLAG != 0;
        let count = (count_byte & !WIDE_FLAG) as usize;
        if count > MAX_FIELDS {
            return Err(BriskError::Codec(format!(
                "descriptor field count {count} exceeds {MAX_FIELDS}"
            )));
        }
        if wide {
            if buf.len() < 1 + count {
                return Err(BriskError::Codec("truncated descriptor".into()));
            }
            let mut types = Vec::with_capacity(count);
            for &code in &buf[1..1 + count] {
                types.push(ValueType::from_code(code)?);
            }
            let desc = RecordDescriptor { types };
            // Reject non-canonical encodings: wide form is only valid when
            // some code actually needs it.
            if !desc.needs_wide() {
                return Err(BriskError::Codec(
                    "wide descriptor with only nibble-range codes".into(),
                ));
            }
            return Ok((desc, 1 + count));
        }
        let nibble_bytes = count.div_ceil(2);
        if buf.len() < 1 + nibble_bytes {
            return Err(BriskError::Codec("truncated descriptor".into()));
        }
        let mut types = Vec::with_capacity(count);
        for i in 0..count {
            let byte = buf[1 + i / 2];
            let nibble = if i % 2 == 0 { byte & 0x0f } else { byte >> 4 };
            types.push(ValueType::from_code(nibble)?);
        }
        // Reject non-canonical encodings: a trailing unused high nibble
        // must be zero so each descriptor has exactly one packed form.
        if count % 2 == 1 {
            let last = buf[nibble_bytes];
            if last >> 4 != 0 {
                return Err(BriskError::Codec(
                    "non-zero padding nibble in descriptor".into(),
                ));
            }
        }
        Ok((RecordDescriptor { types }, 1 + nibble_bytes))
    }

    /// Size of the packed form in bytes.
    pub fn packed_size(&self) -> usize {
        if self.needs_wide() {
            1 + self.types.len()
        } else {
            1 + self.types.len().div_ceil(2)
        }
    }
}

impl fmt::Display for RecordDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.types.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl TryFrom<Vec<ValueType>> for RecordDescriptor {
    type Error = BriskError;
    fn try_from(types: Vec<ValueType>) -> Result<Self> {
        RecordDescriptor::new(types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CorrelationId;
    use crate::time::UtcMicros;

    fn mixed() -> RecordDescriptor {
        RecordDescriptor::new(vec![
            ValueType::Ts,
            ValueType::I32,
            ValueType::Str,
            ValueType::Reason,
            ValueType::F64,
        ])
        .unwrap()
    }

    #[test]
    fn construction_enforces_field_limit() {
        assert!(RecordDescriptor::new(vec![ValueType::I32; 8]).is_ok());
        assert!(RecordDescriptor::new(vec![ValueType::I32; 9]).is_err());
    }

    #[test]
    fn of_matches_values() {
        let fields = vec![
            Value::Ts(UtcMicros::ZERO),
            Value::I32(1),
            Value::Str("x".into()),
        ];
        let d = RecordDescriptor::of(&fields).unwrap();
        assert_eq!(d.types(), &[ValueType::Ts, ValueType::I32, ValueType::Str]);
        d.check(&fields).unwrap();
    }

    #[test]
    fn six_i32_is_the_paper_workload() {
        let d = RecordDescriptor::six_i32();
        assert_eq!(d.len(), 6);
        assert!(d.types().iter().all(|t| *t == ValueType::I32));
    }

    #[test]
    fn check_rejects_wrong_arity_and_types() {
        let d = RecordDescriptor::new(vec![ValueType::I32, ValueType::Str]).unwrap();
        assert!(d.check(&[Value::I32(1)]).is_err());
        assert!(d.check(&[Value::I32(1), Value::I32(2)]).is_err());
        assert!(d.check(&[Value::I32(1), Value::Str("a".into())]).is_ok());
    }

    #[test]
    fn pack_unpack_round_trip() {
        for d in [
            RecordDescriptor::new(Vec::<ValueType>::new()).unwrap(),
            RecordDescriptor::new(vec![ValueType::U8]).unwrap(),
            RecordDescriptor::six_i32(),
            mixed(),
            RecordDescriptor::new(vec![ValueType::Conseq; 8]).unwrap(),
            RecordDescriptor::new(vec![ValueType::Trace]).unwrap(),
            RecordDescriptor::new(vec![
                ValueType::I32,
                ValueType::Str,
                ValueType::Ts,
                ValueType::Trace,
            ])
            .unwrap(),
            RecordDescriptor::new(vec![ValueType::Trace; 8]).unwrap(),
        ] {
            let packed = d.pack();
            assert_eq!(packed.len(), d.packed_size());
            let (back, used) = RecordDescriptor::unpack(&packed).unwrap();
            assert_eq!(back, d);
            assert_eq!(used, packed.len());
        }
    }

    #[test]
    fn unpack_consumes_prefix_only() {
        let mut buf = mixed().pack();
        buf.extend_from_slice(&[0xde, 0xad]);
        let (back, used) = RecordDescriptor::unpack(&buf).unwrap();
        assert_eq!(back, mixed());
        assert_eq!(used, mixed().packed_size());
    }

    #[test]
    fn unpack_rejects_bad_input() {
        assert!(RecordDescriptor::unpack(&[]).is_err());
        assert!(RecordDescriptor::unpack(&[9]).is_err()); // count > MAX_FIELDS
        assert!(RecordDescriptor::unpack(&[2, 0x04]).is_ok()); // 2 fields in 1 byte
        assert!(RecordDescriptor::unpack(&[3, 0x44]).is_err()); // truncated
                                                                // odd count with non-zero padding nibble is non-canonical
        assert!(RecordDescriptor::unpack(&[1, 0x14]).is_err());
        assert!(RecordDescriptor::unpack(&[1, 0x04]).is_ok());
    }

    #[test]
    fn classic_descriptors_stay_byte_identical() {
        // The wide escape must not change the encoding of any descriptor
        // made of nibble-range codes: old frames and segments depend on it.
        let d = mixed();
        assert_eq!(d.pack()[0], d.len() as u8, "no wide flag on classic form");
        assert_eq!(d.pack().len(), 1 + d.len().div_ceil(2));
        assert_eq!(
            RecordDescriptor::six_i32().pack(),
            vec![6, 0x44, 0x44, 0x44]
        );
    }

    #[test]
    fn wide_form_round_trips_and_is_flagged() {
        let d = RecordDescriptor::new(vec![ValueType::I32, ValueType::Trace]).unwrap();
        let packed = d.pack();
        assert_eq!(packed, vec![0x82, 4, 16]);
        assert_eq!(packed.len(), d.packed_size());
        let (back, used) = RecordDescriptor::unpack(&packed).unwrap();
        assert_eq!(back, d);
        assert_eq!(used, packed.len());
    }

    #[test]
    fn wide_form_rejects_non_canonical_and_bad_input() {
        // Wide form holding only classic codes is non-canonical.
        assert!(RecordDescriptor::unpack(&[0x81, 4]).is_err());
        // Wide count over MAX_FIELDS.
        assert!(RecordDescriptor::unpack(&[0x89, 16, 16, 16, 16, 16, 16, 16, 16, 16]).is_err());
        // Truncated wide descriptor.
        assert!(RecordDescriptor::unpack(&[0x82, 16]).is_err());
        // Unknown wide code.
        assert!(RecordDescriptor::unpack(&[0x81, 18]).is_err());
        // Empty wide descriptor can never need the wide form.
        assert!(RecordDescriptor::unpack(&[0x80]).is_err());
    }

    #[test]
    fn packed_size_is_minimal() {
        assert_eq!(RecordDescriptor::new(vec![]).unwrap().packed_size(), 1);
        assert_eq!(
            RecordDescriptor::new(vec![ValueType::I32])
                .unwrap()
                .packed_size(),
            2
        );
        assert_eq!(RecordDescriptor::six_i32().packed_size(), 4);
        assert_eq!(
            RecordDescriptor::new(vec![ValueType::I32; 8])
                .unwrap()
                .packed_size(),
            5
        );
    }

    #[test]
    fn predicates() {
        assert!(mixed().has_ts());
        assert!(mixed().has_causal_marker());
        assert!(!RecordDescriptor::six_i32().has_ts());
        assert!(!RecordDescriptor::six_i32().has_causal_marker());
        let conseq_only = RecordDescriptor::new(vec![ValueType::Conseq]).unwrap();
        assert!(conseq_only.has_causal_marker());
    }

    #[test]
    fn display_lists_types() {
        assert_eq!(
            RecordDescriptor::new(vec![ValueType::I32, ValueType::Str])
                .unwrap()
                .to_string(),
            "(i32, str)"
        );
    }

    #[test]
    fn causal_check_values() {
        let fields = vec![Value::Reason(CorrelationId(1))];
        let d = RecordDescriptor::of(&fields).unwrap();
        assert!(d.has_causal_marker());
    }
}
