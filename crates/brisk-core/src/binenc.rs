//! Native binary record encoding.
//!
//! This is "the same binary structure used by the NOTICE macros" (§3.5): a
//! compact little-endian layout used on the *local* paths — the
//! sensor→external-sensor ring buffer and the ISM's output memory buffer —
//! where "transferring … through memory" is cheap and no cross-machine
//! portability is needed. The portable XDR form (in `brisk-xdr`) is used on
//! the network path only.
//!
//! Layout of one record:
//!
//! ```text
//! u32  node          (LE)
//! u32  sensor        (LE)
//! u32  event_type    (LE)
//! u64  seq           (LE)
//! i64  ts            (LE, microseconds UTC)
//! [u8] packed descriptor (count byte + type nibbles)
//! fields, each per its type:
//!     fixed-size types: raw LE payload (1/2/4/8 bytes)
//!     str / bytes: u32 LE length + payload bytes (no padding)
//! ```

use crate::descriptor::RecordDescriptor;
use crate::error::{BriskError, Result};
use crate::hlc::HlcStamp;
use crate::ids::{CorrelationId, EventTypeId, NodeId, SensorId};
use crate::record::EventRecord;
use crate::time::UtcMicros;
use crate::trace::TraceContext;
use crate::value::{Value, ValueType};

/// Fixed part of the header before the descriptor: 4+4+4+8+8 bytes.
pub const HEADER_SIZE: usize = 28;

/// Total encoded size of `rec` in this format.
pub fn record_size(rec: &EventRecord) -> usize {
    HEADER_SIZE
        + rec.descriptor().packed_size()
        + rec.fields.iter().map(Value::native_size).sum::<usize>()
}

/// Append the encoding of `rec` to `out`. Returns the number of bytes
/// written.
pub fn encode_record(rec: &EventRecord, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.reserve(record_size(rec));
    out.extend_from_slice(&rec.node.raw().to_le_bytes());
    out.extend_from_slice(&rec.sensor.raw().to_le_bytes());
    out.extend_from_slice(&rec.event_type.raw().to_le_bytes());
    out.extend_from_slice(&rec.seq.to_le_bytes());
    out.extend_from_slice(&rec.ts.as_micros().to_le_bytes());
    out.extend_from_slice(&rec.descriptor().pack());
    for f in &rec.fields {
        encode_value(f, out);
    }
    out.len() - start
}

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::I8(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::U8(x) => out.push(*x),
        Value::I16(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::U16(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::I32(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::U32(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::I64(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::U64(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::F32(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::F64(x) => out.extend_from_slice(&x.to_le_bytes()),
        Value::Bool(x) => out.push(*x as u8),
        Value::Str(s) => {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Ts(t) => out.extend_from_slice(&t.as_micros().to_le_bytes()),
        Value::Reason(id) => out.extend_from_slice(&id.raw().to_le_bytes()),
        Value::Conseq(id) => out.extend_from_slice(&id.raw().to_le_bytes()),
        Value::Trace(ctx) => ctx.encode_into(out),
        Value::Hlc(s) => s.encode_into(out),
    }
}

/// Cursor over a byte slice used by the decoder.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(BriskError::Codec(format!(
                "truncated record: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Decode one record from the front of `buf`. Returns the record and the
/// number of bytes consumed.
pub fn decode_record(buf: &[u8]) -> Result<(EventRecord, usize)> {
    let mut c = Cursor { buf, pos: 0 };
    let node = NodeId(c.u32()?);
    let sensor = SensorId(c.u32()?);
    let event_type = EventTypeId(c.u32()?);
    let seq = c.u64()?;
    let ts = UtcMicros::from_micros(c.i64()?);
    let (desc, used) = RecordDescriptor::unpack(&buf[c.pos..])?;
    c.pos += used;
    let mut fields = Vec::with_capacity(desc.len());
    for &vt in desc.types() {
        fields.push(decode_value(vt, &mut c)?);
    }
    let rec = EventRecord::new(node, sensor, event_type, seq, ts, fields)?;
    Ok((rec, c.pos))
}

fn decode_value(vt: ValueType, c: &mut Cursor<'_>) -> Result<Value> {
    Ok(match vt {
        ValueType::I8 => Value::I8(c.take(1)?[0] as i8),
        ValueType::U8 => Value::U8(c.take(1)?[0]),
        ValueType::I16 => Value::I16(i16::from_le_bytes(c.take(2)?.try_into().unwrap())),
        ValueType::U16 => Value::U16(u16::from_le_bytes(c.take(2)?.try_into().unwrap())),
        ValueType::I32 => Value::I32(i32::from_le_bytes(c.take(4)?.try_into().unwrap())),
        ValueType::U32 => Value::U32(c.u32()?),
        ValueType::I64 => Value::I64(c.i64()?),
        ValueType::U64 => Value::U64(c.u64()?),
        ValueType::F32 => Value::F32(f32::from_le_bytes(c.take(4)?.try_into().unwrap())),
        ValueType::F64 => Value::F64(f64::from_le_bytes(c.take(8)?.try_into().unwrap())),
        ValueType::Bool => match c.take(1)?[0] {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            b => {
                return Err(BriskError::Codec(format!("invalid bool byte {b}")));
            }
        },
        ValueType::Str => {
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| BriskError::Codec(format!("invalid UTF-8 string: {e}")))?;
            Value::Str(s.to_owned())
        }
        ValueType::Bytes => {
            let len = c.u32()? as usize;
            Value::Bytes(c.take(len)?.to_vec())
        }
        ValueType::Ts => Value::Ts(UtcMicros::from_micros(c.i64()?)),
        ValueType::Reason => Value::Reason(CorrelationId(c.u64()?)),
        ValueType::Conseq => Value::Conseq(CorrelationId(c.u64()?)),
        ValueType::Trace => {
            let (ctx, used) = TraceContext::decode(&c.buf[c.pos..])?;
            c.pos += used;
            Value::Trace(ctx)
        }
        ValueType::Hlc => Value::Hlc(HlcStamp::decode(c.take(HlcStamp::ENCODED_SIZE)?)?),
    })
}

/// Decode every record in `buf`, which must contain a whole number of
/// records. This is how consumer tools walk the ISM's output memory buffer.
pub fn decode_all(mut buf: &[u8]) -> Result<Vec<EventRecord>> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (rec, used) = decode_record(buf)?;
        out.push(rec);
        buf = &buf[used..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(11),
            SensorId(22),
            EventTypeId(33),
            44,
            UtcMicros::from_micros(55),
            fields,
        )
        .unwrap()
    }

    fn all_types_record() -> EventRecord {
        sample(vec![
            Value::I8(-1),
            Value::U16(2),
            Value::F32(1.25),
            Value::Str("héllo".into()),
            Value::Bytes(vec![0, 255, 7]),
            Value::Ts(UtcMicros::from_micros(-9)),
            Value::Reason(CorrelationId(u64::MAX)),
            Value::Hlc(HlcStamp::new(UtcMicros::from_micros(123), 4)),
        ])
    }

    fn traced_record() -> EventRecord {
        use crate::trace::TraceStage;
        let mut ctx = TraceContext::origin(0x1234_5678_9abc_def0, UtcMicros::from_micros(10));
        ctx.stamp(TraceStage::ExsScoop, UtcMicros::from_micros(20));
        sample(vec![
            Value::I32(7),
            Value::Trace(ctx),
            Value::Str("after".into()),
        ])
    }

    #[test]
    fn round_trip_simple() {
        let rec = sample(vec![Value::I32(5); 6]);
        let mut buf = Vec::new();
        let n = encode_record(&rec, &mut buf);
        assert_eq!(n, buf.len());
        assert_eq!(n, record_size(&rec));
        let (back, used) = decode_record(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, n);
    }

    #[test]
    fn round_trip_all_types() {
        let rec = all_types_record();
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        let (back, _) = decode_record(&buf).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn round_trip_traced_record() {
        let rec = traced_record();
        let mut buf = Vec::new();
        let n = encode_record(&rec, &mut buf);
        assert_eq!(n, record_size(&rec));
        let (back, used) = decode_record(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, n);
        // Truncation anywhere inside the trace field is detected too.
        for cut in 0..buf.len() {
            assert!(decode_record(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn round_trip_empty_fields() {
        let rec = sample(vec![]);
        let mut buf = Vec::new();
        let n = encode_record(&rec, &mut buf);
        assert_eq!(n, HEADER_SIZE + 1);
        let (back, used) = decode_record(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, n);
    }

    #[test]
    fn decode_all_walks_concatenated_records() {
        let recs: Vec<EventRecord> = (0..10)
            .map(|i| sample(vec![Value::U64(i), Value::Str(format!("r{i}"))]))
            .collect();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        let back = decode_all(&buf).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let rec = all_types_record();
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        for cut in 0..buf.len() {
            assert!(
                decode_record(&buf[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn invalid_bool_rejected() {
        let rec = sample(vec![Value::Bool(false)]);
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        *buf.last_mut().unwrap() = 2;
        assert!(decode_record(&buf).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let rec = sample(vec![Value::Str("ab".into())]);
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        let n = buf.len();
        buf[n - 1] = 0xff; // clobber last string byte with invalid UTF-8
        buf[n - 2] = 0xfe;
        assert!(decode_record(&buf).is_err());
    }

    #[test]
    fn trailing_garbage_fails_decode_all() {
        let rec = sample(vec![Value::I32(1)]);
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        buf.push(0xaa);
        assert!(decode_all(&buf).is_err());
    }

    #[test]
    fn record_size_matches_encoding_for_variable_fields() {
        for s in ["", "a", "abcd", "a longer string with spaces"] {
            let rec = sample(vec![Value::Str(s.into()), Value::Bytes(vec![1; s.len()])]);
            let mut buf = Vec::new();
            encode_record(&rec, &mut buf);
            assert_eq!(buf.len(), record_size(&rec), "for {s:?}");
        }
    }
}
