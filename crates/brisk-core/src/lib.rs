//! # brisk-core — event model, dynamic typing and shared definitions
//!
//! This crate is the foundation of the BRISK distributed instrumentation
//! system kernel (Bakić, Mutka & Rover, IPPS 1999). It defines:
//!
//! * [`time::UtcMicros`] — the eight-byte microsecond UTC timestamp the
//!   paper embeds into every event record (`longlong_t` in the original).
//! * [`value::Value`] / [`value::ValueType`] — the dynamically-typed field
//!   system. The paper's internal sensors can write heterogeneous records
//!   "with over ten basic types available for individual fields, ranging
//!   from bytes, to floats, to null-terminated strings", plus three *system*
//!   types: `X_TS` (embedded timestamp), `X_REASON` and `X_CONSEQ`
//!   (causally-related event markers).
//! * [`record::EventRecord`] — one instrumentation data record.
//! * [`descriptor::RecordDescriptor`] — the meta-information describing the
//!   shape of a record; the transfer protocol sends it in compressed form.
//! * [`binenc`] — the compact *native* binary encoding used for the
//!   sensor→EXS shared-memory ring buffer and for the ISM output memory
//!   buffer ("the same binary structure used by the NOTICE macros").
//! * [`config`] — the tuning knobs the paper adds "to many of BRISK's
//!   subsystems, so that users can trade-off among the various simple and
//!   complex IS performance metrics".
//! * [`error::BriskError`] — the error type shared by all BRISK crates.
//!
//! `brisk-core` deliberately has no dependencies: it corresponds to the
//! "tiny library" linked into every instrumented application.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod binenc;
pub mod config;
pub mod descriptor;
pub mod error;
pub mod hlc;
pub mod ids;
pub mod record;
pub mod sink;
pub mod time;
pub mod trace;
pub mod value;

pub use config::{
    CreConfig, ExsConfig, FlowConfig, FsyncPolicy, IsmConfig, OrderMode, SorterConfig, StoreConfig,
    SyncConfig, TraceConfig,
};
pub use descriptor::RecordDescriptor;
pub use error::{BriskError, Result};
pub use hlc::HlcStamp;
pub use ids::{CorrelationId, EventTypeId, NodeId, SensorId};
pub use record::EventRecord;
pub use sink::EventSink;
pub use time::UtcMicros;
pub use trace::{trace_stamps_dropped_total, TraceContext, TraceStage, MAX_TRACE_STAMPS};
pub use value::{Value, ValueType};

/// Convenient glob-import surface: `use brisk_core::prelude::*;`.
pub mod prelude {
    pub use crate::config::{
        CreConfig, ExsConfig, FlowConfig, FsyncPolicy, IsmConfig, OrderMode, SorterConfig,
        StoreConfig, SyncConfig, TraceConfig,
    };
    pub use crate::descriptor::RecordDescriptor;
    pub use crate::error::{BriskError, Result};
    pub use crate::hlc::HlcStamp;
    pub use crate::ids::{CorrelationId, EventTypeId, NodeId, SensorId};
    pub use crate::record::EventRecord;
    pub use crate::sink::EventSink;
    pub use crate::time::UtcMicros;
    pub use crate::trace::{TraceContext, TraceStage, MAX_TRACE_STAMPS};
    pub use crate::value::{Value, ValueType};
}
