//! The shared error type for all BRISK crates.

use std::fmt;
use std::io;

/// Result alias using [`BriskError`].
pub type Result<T> = std::result::Result<T, BriskError>;

/// Errors surfaced by BRISK components.
///
/// A single error enum is used across the kernel so that the LIS, ISM and
/// transfer protocol can propagate failures through trait objects without
/// generic error plumbing — the kernel is meant to stay "compact, with a
/// comprehensible source code" (§2).
#[derive(Debug)]
pub enum BriskError {
    /// Encoding or decoding of a wire/native representation failed.
    Codec(String),
    /// The record or descriptor violates a structural constraint (e.g. more
    /// fields than [`crate::descriptor::MAX_FIELDS`]).
    Malformed(String),
    /// A ring buffer was full and the record was dropped (non-blocking
    /// sensors never stall the application).
    RingFull,
    /// Underlying transport failure.
    Io(io::Error),
    /// Protocol violation: unexpected message kind, bad magic, or a peer
    /// speaking a different protocol version.
    Protocol(String),
    /// The peer disconnected in an orderly way.
    Disconnected,
    /// Clock-synchronization failure (e.g. no usable samples in a round).
    Sync(String),
    /// Invalid configuration value.
    Config(String),
    /// The component was asked to do something after shutdown.
    Shutdown,
}

impl fmt::Display for BriskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BriskError::Codec(m) => write!(f, "codec error: {m}"),
            BriskError::Malformed(m) => write!(f, "malformed record: {m}"),
            BriskError::RingFull => write!(f, "ring buffer full"),
            BriskError::Io(e) => write!(f, "io error: {e}"),
            BriskError::Protocol(m) => write!(f, "protocol error: {m}"),
            BriskError::Disconnected => write!(f, "peer disconnected"),
            BriskError::Sync(m) => write!(f, "clock sync error: {m}"),
            BriskError::Config(m) => write!(f, "configuration error: {m}"),
            BriskError::Shutdown => write!(f, "component is shut down"),
        }
    }
}

impl std::error::Error for BriskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BriskError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BriskError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            BriskError::Disconnected
        } else {
            BriskError::Io(e)
        }
    }
}

impl BriskError {
    /// True if the error indicates the peer went away (orderly or not),
    /// as opposed to a local/logic failure.
    pub fn is_disconnect(&self) -> bool {
        match self {
            BriskError::Disconnected => true,
            BriskError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
            ),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(BriskError::RingFull.to_string(), "ring buffer full");
        assert!(BriskError::Codec("x".into()).to_string().contains("x"));
        assert!(BriskError::Protocol("bad magic".into())
            .to_string()
            .contains("bad magic"));
    }

    #[test]
    fn io_eof_becomes_disconnected() {
        let e: BriskError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(matches!(e, BriskError::Disconnected));
        assert!(e.is_disconnect());
    }

    #[test]
    fn io_reset_is_disconnect() {
        let e: BriskError = io::Error::new(io::ErrorKind::ConnectionReset, "rst").into();
        assert!(e.is_disconnect());
        let e: BriskError = io::Error::new(io::ErrorKind::PermissionDenied, "no").into();
        assert!(!e.is_disconnect());
    }

    #[test]
    fn source_chains_io() {
        use std::error::Error;
        let e: BriskError = io::Error::other("inner").into();
        assert!(e.source().is_some());
        assert!(BriskError::Shutdown.source().is_none());
    }
}
