//! Property-based tests for brisk-core encodings and invariants.

use brisk_core::binenc;
use brisk_core::prelude::*;
use proptest::prelude::*;

/// Strategy producing an arbitrary `Value` of any type.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i8>().prop_map(Value::I8),
        any::<u8>().prop_map(Value::U8),
        any::<i16>().prop_map(Value::I16),
        any::<u16>().prop_map(Value::U16),
        any::<i32>().prop_map(Value::I32),
        any::<u32>().prop_map(Value::U32),
        any::<i64>().prop_map(Value::I64),
        any::<u64>().prop_map(Value::U64),
        any::<f32>().prop_map(Value::F32),
        any::<f64>().prop_map(Value::F64),
        any::<bool>().prop_map(Value::Bool),
        ".{0,40}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        any::<i64>().prop_map(|us| Value::Ts(UtcMicros::from_micros(us))),
        any::<u64>().prop_map(|id| Value::Reason(CorrelationId(id))),
        any::<u64>().prop_map(|id| Value::Conseq(CorrelationId(id))),
    ]
}

fn arb_record() -> impl Strategy<Value = EventRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        any::<i64>(),
        proptest::collection::vec(arb_value(), 0..=8),
    )
        .prop_map(|(node, sensor, ety, seq, ts, fields)| {
            EventRecord::new(
                NodeId(node),
                SensorId(sensor),
                EventTypeId(ety),
                seq,
                UtcMicros::from_micros(ts),
                fields,
            )
            .expect("<=8 fields by construction")
        })
}

/// NaN-tolerant record equality: `Value::F32(NaN) != Value::F32(NaN)` under
/// `PartialEq`, but the codec must still preserve the bit pattern.
fn bitwise_eq(a: &EventRecord, b: &EventRecord) -> bool {
    if (a.node, a.sensor, a.event_type, a.seq, a.ts)
        != (b.node, b.sensor, b.event_type, b.seq, b.ts)
    {
        return false;
    }
    if a.fields.len() != b.fields.len() {
        return false;
    }
    a.fields.iter().zip(&b.fields).all(|(x, y)| match (x, y) {
        (Value::F32(p), Value::F32(q)) => p.to_bits() == q.to_bits(),
        (Value::F64(p), Value::F64(q)) => p.to_bits() == q.to_bits(),
        _ => x == y,
    })
}

proptest! {
    #[test]
    fn binenc_round_trips(rec in arb_record()) {
        let mut buf = Vec::new();
        let n = binenc::encode_record(&rec, &mut buf);
        prop_assert_eq!(n, buf.len());
        prop_assert_eq!(n, binenc::record_size(&rec));
        let (back, used) = binenc::decode_record(&buf).unwrap();
        prop_assert_eq!(used, n);
        prop_assert!(bitwise_eq(&back, &rec));
    }

    #[test]
    fn binenc_rejects_any_truncation(rec in arb_record()) {
        let mut buf = Vec::new();
        binenc::encode_record(&rec, &mut buf);
        // Cut at a few representative points instead of all (keeps the
        // test fast for long records).
        for cut in [0, 1, buf.len() / 2, buf.len().saturating_sub(1)] {
            if cut < buf.len() {
                prop_assert!(binenc::decode_record(&buf[..cut]).is_err());
            }
        }
    }

    #[test]
    fn descriptor_pack_unpack(rec in arb_record()) {
        let d = rec.descriptor();
        let packed = d.pack();
        let (back, used) = RecordDescriptor::unpack(&packed).unwrap();
        prop_assert_eq!(&back, &d);
        prop_assert_eq!(used, packed.len());
        prop_assert_eq!(packed.len(), d.packed_size());
    }

    #[test]
    fn correction_is_invertible(rec in arb_record(), delta in -1_000_000i64..1_000_000) {
        // Keep timestamps away from the saturation boundaary so the shift
        // is exactly invertible.
        prop_assume!(rec.ts.as_micros().checked_add(delta).is_some());
        prop_assume!(rec.fields.iter().all(|f| match f {
            Value::Ts(t) => t.as_micros().checked_add(delta).is_some()
                && t.as_micros().checked_add(delta).unwrap().checked_sub(delta).is_some(),
            _ => true,
        }));
        let mut shifted = rec.clone();
        shifted.apply_correction(delta);
        shifted.apply_correction(-delta);
        prop_assert!(bitwise_eq(&shifted, &rec));
    }

    #[test]
    fn sort_key_total_order_consistent(a in arb_record(), b in arb_record()) {
        // sort_key comparison must agree with timestamp ordering whenever
        // timestamps differ.
        if a.ts < b.ts {
            prop_assert!(a.sort_key() < b.sort_key());
        } else if a.ts > b.ts {
            prop_assert!(a.sort_key() > b.sort_key());
        }
    }

    #[test]
    fn concatenated_records_decode_all(recs in proptest::collection::vec(arb_record(), 0..20)) {
        let mut buf = Vec::new();
        for r in &recs {
            binenc::encode_record(r, &mut buf);
        }
        let back = binenc::decode_all(&buf).unwrap();
        prop_assert_eq!(back.len(), recs.len());
        for (x, y) in back.iter().zip(&recs) {
            prop_assert!(bitwise_eq(x, y));
        }
    }
}
