//! Fuzz harness for the length-prefix framing layer: `FramedConnection` is
//! the first consumer of raw wire bytes, so it must never panic and never
//! trust a length prefix further than `MAX_FRAME_BYTES`, whatever the
//! stream delivers and however the kernel chunks it.

use brisk_core::BriskError;
use brisk_net::{Connection, FramedConnection, RawStream, MAX_FRAME_BYTES};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::time::Duration;

/// A scripted peer: serves a fixed byte sequence in bounded chunks (as a
/// real socket might), then reports would-block forever.
struct MockStream {
    input: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl MockStream {
    fn new(input: Vec<u8>, chunk: usize) -> Self {
        MockStream {
            input,
            pos: 0,
            chunk: chunk.max(1),
        }
    }
}

impl Read for MockStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.input.len() {
            return Err(std::io::ErrorKind::WouldBlock.into());
        }
        let n = (self.input.len() - self.pos).min(self.chunk).min(buf.len());
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for MockStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl RawStream for MockStream {
    fn set_read_timeout(&self, _timeout: Option<Duration>) -> std::io::Result<()> {
        Ok(())
    }

    fn set_nonblocking(&self, _nonblocking: bool) -> std::io::Result<()> {
        Ok(())
    }

    fn peer_label(&self) -> String {
        "mock".into()
    }
}

/// Drain a connection until it reports would-block or errors, returning the
/// extracted frames.
fn drain(conn: &mut FramedConnection<MockStream>) -> (Vec<Vec<u8>>, Option<BriskError>) {
    let mut frames = Vec::new();
    loop {
        match conn.recv(Some(Duration::from_millis(1))) {
            Ok(Some(frame)) => frames.push(frame),
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
}

proptest! {
    /// Arbitrary bytes under arbitrary chunking: recv must terminate with
    /// frames and/or a typed error — never panic, never loop forever, and
    /// never produce a frame larger than the advertised maximum.
    #[test]
    fn garbage_stream_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1..128usize,
    ) {
        let mut conn = FramedConnection::new(MockStream::new(bytes, chunk));
        let (frames, _err) = drain(&mut conn);
        for f in frames {
            prop_assert!(f.len() <= MAX_FRAME_BYTES);
        }
    }

    /// Well-formed frames survive any chunking intact and in order.
    #[test]
    fn frames_round_trip_under_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..8),
        chunk in 1..16usize,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend_from_slice(&(p.len() as u32).to_be_bytes());
            wire.extend_from_slice(p);
        }
        let mut conn = FramedConnection::new(MockStream::new(wire, chunk));
        let (frames, err) = drain(&mut conn);
        prop_assert!(err.is_none(), "clean frames must not error: {err:?}");
        prop_assert_eq!(frames, payloads);
    }
}

/// A length prefix past `MAX_FRAME_BYTES` is rejected from the four header
/// bytes alone — no body is awaited and no buffer of the declared size is
/// allocated.
#[test]
fn length_prefix_bomb_is_rejected_from_header() {
    let bomb = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
    let mut conn = FramedConnection::new(MockStream::new(bomb, 4));
    let (frames, err) = drain(&mut conn);
    assert!(frames.is_empty());
    match err {
        Some(BriskError::Protocol(msg)) => assert!(msg.contains("exceeds")),
        other => panic!("expected protocol error, got {other:?}"),
    }
}
