//! Shared framing over any stream socket.
//!
//! Both the TCP and Unix-domain transports speak the same wire framing — a
//! 4-byte big-endian length prefix per frame. [`FramedConnection`]
//! implements it once over anything satisfying [`RawStream`].
//!
//! This is the first consumer of raw wire bytes, so its decode path must
//! never panic regardless of input.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::traits::Connection;
use crate::MAX_FRAME_BYTES;
use brisk_core::{BriskError, Result};
use std::io::{ErrorKind, Read, Write};
use std::time::Duration;

/// The socket operations framing needs beyond `Read + Write`.
pub trait RawStream: Read + Write + Send {
    /// Set (or clear) the read timeout.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()>;
    /// Toggle non-blocking mode.
    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()>;
    /// Human-readable peer identity.
    fn peer_label(&self) -> String;
    /// The underlying OS file descriptor, if any (reactor polling).
    fn raw_fd(&self) -> Option<std::os::unix::io::RawFd> {
        None
    }
}

impl RawStream for std::net::TcpStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        std::net::TcpStream::set_read_timeout(self, timeout)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        std::net::TcpStream::set_nonblocking(self, nonblocking)
    }

    fn peer_label(&self) -> String {
        self.peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    }

    fn raw_fd(&self) -> Option<std::os::unix::io::RawFd> {
        use std::os::unix::io::AsRawFd;
        Some(self.as_raw_fd())
    }
}

#[cfg(unix)]
impl RawStream for std::os::unix::net::UnixStream {
    fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        std::os::unix::net::UnixStream::set_read_timeout(self, timeout)
    }

    fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        std::os::unix::net::UnixStream::set_nonblocking(self, nonblocking)
    }

    fn peer_label(&self) -> String {
        self.peer_addr()
            .ok()
            .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
            .unwrap_or_else(|| "<unix-peer>".into())
    }

    fn raw_fd(&self) -> Option<std::os::unix::io::RawFd> {
        use std::os::unix::io::AsRawFd;
        Some(self.as_raw_fd())
    }
}

/// One framed connection over a raw stream socket.
pub struct FramedConnection<S: RawStream> {
    stream: S,
    /// Bytes received but not yet consumed as a whole frame. A timeout may
    /// strike mid-frame; the partial bytes are kept here so nothing is
    /// lost.
    rbuf: Vec<u8>,
    /// Send scratch: prefix + payload are combined into one `write` — one
    /// syscall per frame, and (on Unix sockets) one kernel skb instead of
    /// two, which doubles how many small unread frames fit in the socket
    /// buffer before backpressure.
    wbuf: Vec<u8>,
    peer: String,
}

impl<S: RawStream> FramedConnection<S> {
    /// Wrap a connected stream.
    pub fn new(stream: S) -> Self {
        let peer = stream.peer_label();
        FramedConnection {
            stream,
            rbuf: Vec::with_capacity(64 * 1024),
            wbuf: Vec::with_capacity(4 * 1024),
            peer,
        }
    }

    /// If `rbuf` holds a complete frame, detach and return it.
    fn try_extract_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.rbuf.len() < 4 {
            return Ok(None);
        }
        let len =
            u32::from_be_bytes([self.rbuf[0], self.rbuf[1], self.rbuf[2], self.rbuf[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(BriskError::Protocol(format!(
                "frame length {len} exceeds {MAX_FRAME_BYTES}"
            )));
        }
        if self.rbuf.len() < 4 + len {
            return Ok(None);
        }
        let frame = self.rbuf[4..4 + len].to_vec();
        self.rbuf.drain(..4 + len);
        Ok(Some(frame))
    }

    fn recv_inner(&mut self) -> Result<Option<Vec<u8>>> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(frame) = self.try_extract_frame()? {
                return Ok(Some(frame));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(BriskError::Disconnected),
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

impl<S: RawStream> Connection for FramedConnection<S> {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        if frame.len() > MAX_FRAME_BYTES {
            return Err(BriskError::Protocol(format!(
                "frame length {} exceeds {MAX_FRAME_BYTES}",
                frame.len()
            )));
        }
        self.wbuf.clear();
        self.wbuf
            .extend_from_slice(&(frame.len() as u32).to_be_bytes());
        self.wbuf.extend_from_slice(frame);
        self.stream.write_all(&self.wbuf)?;
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>> {
        // A zero timeout means "poll without blocking": the EXS uses it on
        // its hot path, so it must cost one non-blocking read, not a 1 ms
        // stall. std rejects Duration::ZERO in set_read_timeout, hence the
        // nonblocking-mode branch.
        let nonblocking = timeout == Some(Duration::ZERO);
        if nonblocking {
            self.stream.set_nonblocking(true)?;
        } else {
            self.stream.set_nonblocking(false)?;
            let timeout = timeout.map(|t| t.max(Duration::from_millis(1)));
            self.stream.set_read_timeout(timeout)?;
        }
        let result = self.recv_inner();
        if nonblocking {
            self.stream.set_nonblocking(false)?;
        }
        result
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn poll_fd(&self) -> Option<std::os::unix::io::RawFd> {
        self.stream.raw_fd()
    }

    fn has_buffered(&self) -> bool {
        !self.rbuf.is_empty()
    }
}
