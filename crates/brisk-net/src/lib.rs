//! # brisk-net — transport substrate
//!
//! BRISK sends instrumentation data "over a TCP stream socket" (§3.4); the
//! in-order, reliable delivery of batches "is guaranteed by the socket
//! stream protocol" (§3.5). This crate provides that substrate behind a
//! small trait surface so the LIS and ISM are transport-agnostic:
//!
//! * [`traits`] — [`traits::Transport`], [`traits::Listener`],
//!   [`traits::Connection`]: blocking, frame-oriented (each frame is one
//!   protocol message; framing is a 4-byte big-endian length prefix on the
//!   wire).
//! * [`tcp`] — the real `std::net` TCP implementation. One OS thread per
//!   connection mirrors the 1999 design (a handful of long-lived
//!   connections, one per external sensor).
//! * [`uds`] — Unix-domain sockets for co-located deployments (Unix only).
//! * [`mem`] — an in-process transport with a configurable link model
//!   (latency, jitter, drop-on-connect), used by tests and by experiments
//!   that need a network without the OS in the loop. (The fully
//!   deterministic virtual-time network lives in `brisk-sim`.)

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod fault;
pub mod framed;
pub mod mem;
pub mod metered;
#[cfg(unix)]
pub mod poll;
pub mod tcp;
pub mod traits;
#[cfg(unix)]
pub mod uds;

pub use fault::{
    FaultEvent, FaultKind, FaultSpec, FaultStats, FaultingConnection, FaultingTransport,
};
pub use framed::{FramedConnection, RawStream};
pub use mem::{LinkModel, MemTransport};
pub use metered::{ConnMetrics, MeteredConnection};
#[cfg(unix)]
pub use poll::{poll_in, PollFd, Poller, Waker, POLLERR, POLLHUP, POLLIN};
pub use tcp::TcpTransport;
pub use traits::{Connection, Listener, Transport};
#[cfg(unix)]
pub use uds::UdsTransport;

/// Upper bound on one frame; a corrupt length prefix must not cause a
/// multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 16 << 20;
