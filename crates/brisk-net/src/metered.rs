//! Connection instrumentation: a transparent byte/frame-counting wrapper.
//!
//! [`MeteredConnection`] wraps any [`Connection`] and counts frames and
//! bytes in each direction into shared telemetry counters, so the ISM
//! can expose per-direction traffic totals without the transports
//! knowing anything about metrics. The counters are registry handles
//! (`Arc<Counter>`), so wrapping every accepted connection with the same
//! [`ConnMetrics`] aggregates naturally into one series per direction.

use crate::traits::Connection;
use brisk_core::Result;
use brisk_telemetry::{Counter, Registry};
use std::sync::Arc;
use std::time::Duration;

/// The four traffic counters a [`MeteredConnection`] feeds.
#[derive(Clone)]
pub struct ConnMetrics {
    frames_in: Arc<Counter>,
    frames_out: Arc<Counter>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
}

impl ConnMetrics {
    /// Register (or fetch) the traffic series in `registry`, labeled by
    /// `role` (e.g. `"ism"` or `"exs"`):
    /// `brisk_net_frames_total{role=..,dir=in|out}` and
    /// `brisk_net_bytes_total{role=..,dir=in|out}`.
    pub fn register(registry: &Registry, role: &str) -> ConnMetrics {
        let f = "brisk_net_frames_total";
        let fh = "Frames moved over connections";
        let b = "brisk_net_bytes_total";
        let bh = "Frame payload bytes moved over connections";
        ConnMetrics {
            frames_in: registry.counter_with(f, fh, &[("role", role), ("dir", "in")]),
            frames_out: registry.counter_with(f, fh, &[("role", role), ("dir", "out")]),
            bytes_in: registry.counter_with(b, bh, &[("role", role), ("dir", "in")]),
            bytes_out: registry.counter_with(b, bh, &[("role", role), ("dir", "out")]),
        }
    }

    /// Standalone counters not attached to any registry (tests).
    pub fn detached() -> ConnMetrics {
        ConnMetrics {
            frames_in: Arc::new(Counter::new()),
            frames_out: Arc::new(Counter::new()),
            bytes_in: Arc::new(Counter::new()),
            bytes_out: Arc::new(Counter::new()),
        }
    }

    /// (frames_in, frames_out, bytes_in, bytes_out) totals so far.
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (
            self.frames_in.get(),
            self.frames_out.get(),
            self.bytes_in.get(),
            self.bytes_out.get(),
        )
    }

    /// Wrap a connection so its traffic feeds these counters.
    pub fn wrap(&self, inner: Box<dyn Connection>) -> Box<dyn Connection> {
        Box::new(MeteredConnection {
            inner,
            metrics: self.clone(),
        })
    }
}

/// A [`Connection`] decorator counting frames and payload bytes per
/// direction. `recv` timeouts and disconnects are passed through
/// uncounted; only delivered frames move the counters.
pub struct MeteredConnection {
    inner: Box<dyn Connection>,
    metrics: ConnMetrics,
}

impl Connection for MeteredConnection {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.inner.send(frame)?;
        self.metrics.frames_out.inc();
        self.metrics.bytes_out.add(frame.len() as u64);
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>> {
        let got = self.inner.recv(timeout)?;
        if let Some(frame) = &got {
            self.metrics.frames_in.inc();
            self.metrics.bytes_in.add(frame.len() as u64);
        }
        Ok(got)
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }

    fn poll_fd(&self) -> Option<std::os::unix::io::RawFd> {
        self.inner.poll_fd()
    }

    fn has_buffered(&self) -> bool {
        self.inner.has_buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemTransport;
    use crate::traits::Transport;

    #[test]
    fn counts_both_directions() {
        let t = MemTransport::new();
        let mut l = t.listen("x").unwrap();
        let client = t.connect("x").unwrap();
        let server = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();

        let m = ConnMetrics::detached();
        let mut client = m.wrap(client);
        let mut server = server;

        client.send(b"hello").unwrap();
        client.send(b"worlds!").unwrap();
        let a = server.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        server.send(&a).unwrap();
        let echoed = client.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(echoed, b"hello");

        let (fi, fo, bi, bo) = m.totals();
        assert_eq!((fi, fo), (1, 2));
        assert_eq!(bo, 12); // "hello" + "worlds!"
        assert_eq!(bi, 5);
    }

    #[test]
    fn registry_series_aggregate_across_connections() {
        let registry = Registry::new();
        let m = ConnMetrics::register(&registry, "ism");
        let t = MemTransport::new();
        let mut l = t.listen("x").unwrap();
        for _ in 0..3 {
            let c = t.connect("x").unwrap();
            let mut srv = m.wrap(l.accept(Some(Duration::from_secs(1))).unwrap().unwrap());
            let mut c = c;
            c.send(b"abcd").unwrap();
            srv.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_labeled("brisk_net_frames_total", &[("role", "ism"), ("dir", "in")]),
            Some(3)
        );
        assert_eq!(
            snap.counter_labeled("brisk_net_bytes_total", &[("role", "ism"), ("dir", "in")]),
            Some(12)
        );
    }

    #[test]
    fn timeout_is_not_counted() {
        let t = MemTransport::new();
        let mut l = t.listen("x").unwrap();
        let _client = t.connect("x").unwrap();
        let server = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        let m = ConnMetrics::detached();
        let mut server = m.wrap(server);
        assert!(server
            .recv(Some(Duration::from_millis(5)))
            .unwrap()
            .is_none());
        assert_eq!(m.totals(), (0, 0, 0, 0));
    }
}
