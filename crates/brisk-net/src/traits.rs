//! Transport abstraction: blocking, frame-oriented, reliable, in-order.

use brisk_core::Result;
use std::time::Duration;

/// A bidirectional, reliable, in-order frame channel between an external
/// sensor and the ISM.
pub trait Connection: Send {
    /// Send one frame. Blocks until the frame is handed to the transport.
    fn send(&mut self, frame: &[u8]) -> Result<()>;

    /// Receive one frame.
    ///
    /// * `Ok(Some(frame))` — a frame arrived;
    /// * `Ok(None)` — the timeout elapsed with no complete frame (only when
    ///   a timeout was given);
    /// * `Err(BriskError::Disconnected)` — the peer closed the channel.
    ///
    /// A `None` timeout blocks indefinitely. This is the "waiting select
    /// system call" of the paper's latency analysis: the ISM's receive loop
    /// runs on it.
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>>;

    /// Human-readable peer identity, for diagnostics.
    fn peer(&self) -> String;

    /// The OS file descriptor a reactor may poll for readability, if this
    /// connection is backed by one. Transports without a kernel object
    /// (the in-memory ones) return `None` and are driven by periodic
    /// zero-timeout `recv` calls instead; see `brisk_net::poll`.
    fn poll_fd(&self) -> Option<std::os::unix::io::RawFd> {
        None
    }

    /// True if a previous `recv` left bytes in a userspace read buffer.
    /// Framed transports drain the kernel socket eagerly, so complete
    /// frames can be waiting here with `poll_fd` showing no readability —
    /// a reactor must treat such a connection as readable or those frames
    /// stall until the peer happens to send more bytes.
    fn has_buffered(&self) -> bool {
        false
    }
}

/// Accepts incoming connections (the ISM side).
pub trait Listener: Send {
    /// Accept one connection, or `Ok(None)` on timeout.
    fn accept(&mut self, timeout: Option<Duration>) -> Result<Option<Box<dyn Connection>>>;

    /// The address peers should connect to.
    fn local_addr(&self) -> String;
}

/// A transport: a way to listen and to connect.
pub trait Transport: Send + Sync {
    /// Bind a listener. `addr` syntax is transport-specific (`host:port`
    /// for TCP, any string key for the in-memory transport; for TCP, port 0
    /// picks a free port, see [`Listener::local_addr`]).
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>>;

    /// Connect to a listener.
    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>>;
}
