//! Readiness polling for the ISM's pump reactor.
//!
//! A thin, dependency-free wrapper over `poll(2)`: enough for a bounded
//! pool of reactor threads to drive hundreds of connection sockets each
//! without a thread per connection, honoring the no-tokio policy. The
//! single `unsafe` block in the crate lives here, confined to the raw
//! syscall binding in `sys`; everything above it is safe Rust over
//! `std` socket types.
//!
//! Two pieces:
//!
//! * [`Poller`] — owns a wake channel (a socketpair) and sleeps in
//!   `poll(2)` over caller-supplied [`PollFd`]s plus its own wake fd.
//! * [`Waker`] — the cross-thread handle that interrupts a sleeping
//!   [`Poller`]; cheap to clone, safe to fire from any thread.
//!
//! Connections without a kernel fd (the in-memory transports) cannot be
//! polled; a reactor drives those with periodic zero-timeout `recv` calls
//! between waits, which is why [`Poller::wait`] accepts a timeout at all.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::Duration;

pub use sys::{PollFd, POLLERR, POLLHUP, POLLIN};

/// The raw `poll(2)` binding. `libc` is not among the vendored crates, so
/// the struct layout and constants are declared here; they are fixed ABI
/// on every platform this repo targets (Linux, and POSIX generally).
#[allow(unsafe_code)]
mod sys {
    /// One pollable descriptor, layout-compatible with `struct pollfd`.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        /// File descriptor to watch.
        pub fd: i32,
        /// Requested events ([`POLLIN`]).
        pub events: i16,
        /// Returned events, filled by the kernel.
        pub revents: i16,
    }

    /// Data may be read without blocking.
    pub const POLLIN: i16 = 0x001;
    /// Error condition (returned only; never requested).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (returned only; never requested).
    pub const POLLHUP: i16 = 0x010;

    unsafe extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    /// Safe wrapper: poll `fds` for at most `timeout_ms` milliseconds
    /// (negative blocks indefinitely). Returns the number of descriptors
    /// with non-zero `revents`. Retries on `EINTR`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // `#[repr(C)]` pollfd-layout structs for the duration of the
            // call, and `nfds` matches its length.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                continue;
            }
            return Err(err);
        }
    }
}

/// Cross-thread wake handle for a [`Poller`]; see [`Poller::waker`].
///
/// Firing writes one byte into the poller's wake socketpair, making its
/// `poll(2)` return immediately (or its next call return without
/// sleeping). Wakes coalesce: many calls before the poller drains cost
/// one byte each at most, and a full pipe just means a wake is already
/// pending.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Interrupt the poller. Never blocks, never fails: a full wake pipe
    /// already guarantees the poller will wake.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1]);
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker").finish()
    }
}

/// A `poll(2)` loop core: sleeps over a set of descriptors plus an
/// internal wake channel.
pub struct Poller {
    wake_rx: UnixStream,
    waker: Waker,
}

impl Poller {
    /// Create a poller and its wake channel.
    pub fn new() -> std::io::Result<Poller> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Poller {
            wake_rx: rx,
            waker: Waker { tx: Arc::new(tx) },
        })
    }

    /// A handle other threads can use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        self.waker.clone()
    }

    /// Sleep until a descriptor in `fds` is ready, the timeout elapses, or
    /// a [`Waker`] fires. On return each entry's `revents` is filled in;
    /// the result is `true` when the poller was explicitly woken. `None`
    /// blocks indefinitely (only sensible when a waker is held somewhere).
    ///
    /// The wake fd is appended to `fds` for the syscall and removed again
    /// before returning, so the caller's indices are stable.
    pub fn wait(&self, fds: &mut Vec<PollFd>, timeout: Option<Duration>) -> std::io::Result<bool> {
        let timeout_ms: i32 = match timeout {
            // Round up so a 100 µs deadline does not spin at timeout 0.
            Some(t) => i32::try_from(t.as_millis().max(u128::from(u32::from(!t.is_zero()))))
                .unwrap_or(i32::MAX),
            None => -1,
        };
        fds.push(PollFd {
            fd: self.wake_rx.as_raw_fd(),
            events: POLLIN,
            revents: 0,
        });
        let polled = sys::poll_fds(fds, timeout_ms);
        let wake_entry = fds.pop();
        polled?;
        let woken = wake_entry.is_some_and(|e| e.revents & (POLLIN | POLLERR | POLLHUP) != 0);
        if woken {
            self.drain_wakes();
        }
        Ok(woken)
    }

    /// Swallow all pending wake bytes (the channel is nonblocking).
    fn drain_wakes(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish()
    }
}

/// Build a [`PollFd`] watching `fd` for readability.
pub fn poll_in(fd: RawFd) -> PollFd {
    PollFd {
        fd,
        events: POLLIN,
        revents: 0,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn timeout_elapses_without_ready_fds() {
        let p = Poller::new().unwrap();
        let mut fds = Vec::new();
        let t0 = Instant::now();
        let woken = p.wait(&mut fds, Some(Duration::from_millis(20))).unwrap();
        assert!(!woken);
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert!(fds.is_empty(), "wake entry must not leak into caller fds");
    }

    #[test]
    fn readable_fd_wakes_immediately() {
        let (a, b) = UnixStream::pair().unwrap();
        (&a).write_all(&[7]).unwrap();
        let p = Poller::new().unwrap();
        let mut fds = vec![poll_in(b.as_raw_fd())];
        let t0 = Instant::now();
        let woken = p.wait(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(!woken, "readiness is not an explicit wake");
        assert!(fds[0].revents & POLLIN != 0);
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn waker_interrupts_a_sleeping_poller() {
        let p = Poller::new().unwrap();
        let w = p.waker();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            w.wake();
        });
        let mut fds = Vec::new();
        let t0 = Instant::now();
        let woken = p.wait(&mut fds, Some(Duration::from_secs(10))).unwrap();
        assert!(woken);
        assert!(t0.elapsed() < Duration::from_secs(5));
        h.join().unwrap();
    }

    #[test]
    fn wakes_coalesce_and_drain() {
        let p = Poller::new().unwrap();
        let w = p.waker();
        for _ in 0..100 {
            w.wake();
        }
        let mut fds = Vec::new();
        assert!(p.wait(&mut fds, Some(Duration::ZERO)).unwrap());
        // All pending wakes were drained by the previous wait.
        let t0 = Instant::now();
        assert!(!p.wait(&mut fds, Some(Duration::from_millis(15))).unwrap());
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn hangup_on_watched_fd_reports_ready() {
        let (a, b) = UnixStream::pair().unwrap();
        drop(a);
        let p = Poller::new().unwrap();
        let mut fds = vec![poll_in(b.as_raw_fd())];
        p.wait(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(fds[0].revents & (POLLIN | POLLHUP) != 0);
    }
}
