//! Unix-domain-socket transport (Unix only).
//!
//! On a single host — EXS and ISM co-located, or containerized nodes
//! sharing a volume — Unix sockets skip the TCP/IP stack entirely while
//! keeping the exact same reliable-stream semantics. The address is a
//! filesystem path; binding removes a stale socket file left by a crashed
//! predecessor, and the listener unlinks its path on drop.

#![cfg(unix)]

use crate::framed::FramedConnection;
use crate::traits::{Connection, Listener, Transport};
use brisk_core::Result;
use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// The Unix-domain-socket transport. Addresses are filesystem paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdsTransport;

impl Transport for UdsTransport {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>> {
        // Remove a stale socket file (e.g. from a crashed ISM); a live
        // listener would have it open, making the remove harmless to new
        // connections only in the crashed case we care about.
        let path = PathBuf::from(addr);
        if path.exists() {
            let _ = std::fs::remove_file(&path);
        }
        let listener = UnixListener::bind(&path)?;
        Ok(Box::new(UdsListenerWrap { listener, path }))
    }

    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>> {
        let stream = UnixStream::connect(addr)?;
        Ok(Box::new(FramedConnection::new(stream)))
    }
}

struct UdsListenerWrap {
    listener: UnixListener,
    path: PathBuf,
}

impl Drop for UdsListenerWrap {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Listener for UdsListenerWrap {
    fn accept(&mut self, timeout: Option<Duration>) -> Result<Option<Box<dyn Connection>>> {
        match timeout {
            None => {
                self.listener.set_nonblocking(false)?;
                let (stream, _) = self.listener.accept()?;
                Ok(Some(Box::new(FramedConnection::new(stream))))
            }
            Some(t) => {
                self.listener.set_nonblocking(true)?;
                let deadline = std::time::Instant::now() + t;
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false)?;
                            return Ok(Some(Box::new(FramedConnection::new(stream))));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            if std::time::Instant::now() >= deadline {
                                return Ok(None);
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
    }

    fn local_addr(&self) -> String {
        self.path.display().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn sock_path(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("brisk-uds-test-{tag}-{}.sock", std::process::id()))
            .display()
            .to_string()
    }

    fn pair(tag: &str) -> (Box<dyn Connection>, Box<dyn Connection>) {
        let t = UdsTransport;
        let mut listener = t.listen(&sock_path(tag)).unwrap();
        let addr = listener.local_addr();
        let client = thread::spawn(move || UdsTransport.connect(&addr).unwrap());
        let server = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        let client = client.join().unwrap();
        // Listener may drop now; established connections outlive it.
        (server, client)
    }

    #[test]
    fn round_trip_frames() {
        let (mut server, mut client) = pair("rt");
        client.send(b"over unix").unwrap();
        let got = server.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(got, b"over unix");
        server.send(b"ack").unwrap();
        assert_eq!(
            client.recv(Some(Duration::from_secs(5))).unwrap().unwrap(),
            b"ack"
        );
    }

    #[test]
    fn ordering_and_boundaries_hold() {
        // Sender on its own thread: hundreds of unread tiny frames can
        // legitimately fill the socket buffer (each frame costs a whole
        // kernel skb on AF_UNIX), so sending inline would deadlock — the
        // same backpressure a real EXS/ISM pair never hits because the ISM
        // always drains.
        let (mut server, mut client) = pair("ord");
        let sender = thread::spawn(move || {
            for i in 0..500u32 {
                client.send(&i.to_le_bytes()).unwrap();
            }
            client
        });
        for i in 0..500u32 {
            let f = server.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
        drop(sender.join().unwrap());
    }

    #[test]
    fn timeout_and_disconnect() {
        let (mut server, client) = pair("dc");
        assert!(server
            .recv(Some(Duration::from_millis(10)))
            .unwrap()
            .is_none());
        drop(client);
        let err = server.recv(Some(Duration::from_secs(5))).unwrap_err();
        assert!(err.is_disconnect());
    }

    #[test]
    fn stale_socket_file_is_replaced() {
        let path = sock_path("stale");
        std::fs::write(&path, b"stale").unwrap();
        let t = UdsTransport;
        let mut listener = t.listen(&path).unwrap();
        let client = {
            let addr = listener.local_addr();
            thread::spawn(move || UdsTransport.connect(&addr).unwrap())
        };
        assert!(listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .is_some());
        drop(client.join().unwrap());
    }

    #[test]
    fn socket_file_removed_on_drop() {
        let path = sock_path("rm");
        let t = UdsTransport;
        let listener = t.listen(&path).unwrap();
        assert!(std::path::Path::new(&path).exists());
        drop(listener);
        assert!(!std::path::Path::new(&path).exists());
    }

    #[test]
    fn works_with_the_full_pipeline_protocol() {
        use brisk_proto::Message;
        let (mut server, mut client) = pair("proto");
        client
            .send(
                &Message::Hello {
                    node: brisk_core::NodeId(3),
                    version: brisk_proto::VERSION,
                }
                .encode(),
            )
            .unwrap();
        let frame = server.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert!(matches!(
            Message::decode(&frame).unwrap(),
            Message::Hello { .. }
        ));
    }
}
