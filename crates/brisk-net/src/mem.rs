//! In-memory transport with a configurable link model.
//!
//! Functionally identical to the TCP transport (reliable, in-order,
//! frame-oriented) but running over crossbeam channels inside one process.
//! A [`LinkModel`] can add one-way latency, uniform jitter and random
//! frame *delay spikes* — enough to exercise BRISK's batching, sorting and
//! sync logic under adverse conditions without a real network. (Frames are
//! never silently dropped: BRISK runs over a reliable stream; loss shows up
//! to the application as a disconnect.) For fault-injection tests the model
//! can also *kill* a connection deterministically: after an endpoint has
//! sent [`LinkModel::kill_after_frames`] frames, both directions sever
//! abruptly — exactly the mid-stream connection death the supervisor's
//! retransmit/replay machinery exists for.

use crate::traits::{Connection, Listener, Transport};
use crate::MAX_FRAME_BYTES;
use brisk_core::{BriskError, Result};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One-way link behaviour applied to every frame.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkModel {
    /// Fixed one-way latency.
    pub latency: Duration,
    /// Extra uniform random delay in `[0, jitter]`.
    pub jitter: Duration,
    /// Probability of a delay *spike* on a frame.
    pub spike_probability: f64,
    /// Size of a delay spike when one occurs.
    pub spike: Duration,
    /// Fault injection: abruptly sever the connection once an endpoint
    /// has sent this many frames (each endpoint counts its own sends).
    /// The kill takes out *both* directions, like a TCP reset: the
    /// killing side's subsequent sends and recvs fail, and the peer sees
    /// a disconnect. `None` (the default) disables killing.
    pub kill_after_frames: Option<u64>,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            spike_probability: 0.0,
            spike: Duration::ZERO,
            kill_after_frames: None,
        }
    }
}

impl LinkModel {
    /// A perfect, zero-latency link.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A LAN-ish link: fixed latency plus small jitter.
    pub fn lan() -> Self {
        LinkModel {
            latency: Duration::from_micros(150),
            jitter: Duration::from_micros(50),
            ..LinkModel::default()
        }
    }

    fn delay(&self, rng: &mut StdRng) -> Duration {
        let mut d = self.latency;
        if !self.jitter.is_zero() {
            d += Duration::from_nanos(rng.gen_range(0..=self.jitter.as_nanos() as u64));
        }
        if self.spike_probability > 0.0 && rng.gen_bool(self.spike_probability.min(1.0)) {
            d += self.spike;
        }
        d
    }
}

/// A frame stamped with its delivery time.
struct Delayed {
    deliver_at: Instant,
    frame: Vec<u8>,
}

/// The in-memory transport. Addresses are arbitrary strings; each
/// `MemTransport` instance is its own private namespace.
pub struct MemTransport {
    model: LinkModel,
    registry: Arc<Mutex<HashMap<String, Sender<MemConnection>>>>,
    seed: Mutex<u64>,
}

impl MemTransport {
    /// New transport with an ideal link.
    pub fn new() -> Arc<Self> {
        Self::with_model(LinkModel::ideal())
    }

    /// New transport applying `model` to every connection.
    pub fn with_model(model: LinkModel) -> Arc<Self> {
        Arc::new(MemTransport {
            model,
            registry: Arc::new(Mutex::new(HashMap::new())),
            seed: Mutex::new(0x5eed_b415),
        })
    }

    fn next_rng(&self) -> StdRng {
        let mut seed = self.seed.lock();
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        StdRng::seed_from_u64(*seed)
    }

    fn make_pair(&self, a_name: String, b_name: String) -> (MemConnection, MemConnection) {
        let (a_tx, a_rx) = unbounded::<Delayed>();
        let (b_tx, b_rx) = unbounded::<Delayed>();
        let a = MemConnection {
            tx: Some(a_tx),
            rx: Some(b_rx),
            model: self.model,
            rng: self.next_rng(),
            peer: b_name,
            sent_frames: 0,
            held: None,
        };
        let b = MemConnection {
            tx: Some(b_tx),
            rx: Some(a_rx),
            model: self.model,
            rng: self.next_rng(),
            peer: a_name,
            sent_frames: 0,
            held: None,
        };
        (a, b)
    }
}

impl Transport for Arc<MemTransport> {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>> {
        let (tx, rx) = unbounded();
        let mut reg = self.registry.lock();
        if reg.contains_key(addr) {
            return Err(BriskError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrInUse,
                format!("mem address {addr:?} already bound"),
            )));
        }
        reg.insert(addr.to_string(), tx);
        Ok(Box::new(MemListener {
            addr: addr.to_string(),
            incoming: rx,
            registry: Arc::clone(&self.registry),
        }))
    }

    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>> {
        let acceptor = {
            let reg = self.registry.lock();
            reg.get(addr).cloned()
        }
        .ok_or_else(|| {
            BriskError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                format!("no mem listener at {addr:?}"),
            ))
        })?;
        let (client, server) = self.make_pair(format!("client->{addr}"), addr.to_string());
        acceptor
            .send(server)
            .map_err(|_| BriskError::Disconnected)?;
        Ok(Box::new(client))
    }
}

/// Listener half of [`MemTransport`]. Unbinds its address on drop.
pub struct MemListener {
    addr: String,
    incoming: Receiver<MemConnection>,
    registry: Arc<Mutex<HashMap<String, Sender<MemConnection>>>>,
}

impl Drop for MemListener {
    fn drop(&mut self) {
        self.registry.lock().remove(&self.addr);
    }
}

impl Listener for MemListener {
    fn accept(&mut self, timeout: Option<Duration>) -> Result<Option<Box<dyn Connection>>> {
        match timeout {
            None => match self.incoming.recv() {
                Ok(c) => Ok(Some(Box::new(c))),
                Err(_) => Err(BriskError::Disconnected),
            },
            Some(t) => match self.incoming.recv_timeout(t) {
                Ok(c) => Ok(Some(Box::new(c))),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(BriskError::Disconnected),
            },
        }
    }

    fn local_addr(&self) -> String {
        self.addr.clone()
    }
}

/// One endpoint of an in-memory connection.
pub struct MemConnection {
    /// `None` once the connection was killed by fault injection; the
    /// `Option` lets a kill *drop* both channel halves so the peer sees a
    /// disconnect too, like a TCP reset.
    tx: Option<Sender<Delayed>>,
    rx: Option<Receiver<Delayed>>,
    model: LinkModel,
    rng: StdRng,
    peer: String,
    /// Frames this endpoint has sent (drives `kill_after_frames`).
    sent_frames: u64,
    /// A frame received from the channel whose delivery time has not yet
    /// arrived when a short recv timeout expired.
    held: Option<Delayed>,
}

impl MemConnection {
    /// Fault injection: abruptly drop both directions.
    fn sever(&mut self) {
        self.tx = None;
        self.rx = None;
        self.held = None;
    }
}

impl Connection for MemConnection {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        if frame.len() > MAX_FRAME_BYTES {
            return Err(BriskError::Protocol(format!(
                "frame length {} exceeds {MAX_FRAME_BYTES}",
                frame.len()
            )));
        }
        if let Some(kill_after) = self.model.kill_after_frames {
            if self.tx.is_some() && self.sent_frames >= kill_after {
                self.sever();
            }
        }
        let Some(tx) = &self.tx else {
            return Err(BriskError::Disconnected);
        };
        let delay = self.model.delay(&mut self.rng);
        tx.send(Delayed {
            deliver_at: Instant::now() + delay,
            frame: frame.to_vec(),
        })
        .map_err(|_| BriskError::Disconnected)?;
        self.sent_frames += 1;
        Ok(())
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let Some(rx) = &self.rx else {
            return Err(BriskError::Disconnected);
        };
        // Take the next in-flight frame (channel order == send order, so
        // in-order delivery holds even with variable delays — this models a
        // stream, not a datagram network).
        let delayed = match self.held.take() {
            Some(d) => d,
            None => match deadline {
                None => rx.recv().map_err(|_| BriskError::Disconnected)?,
                Some(dl) => {
                    let now = Instant::now();
                    let budget = dl.saturating_duration_since(now);
                    match rx.recv_timeout(budget) {
                        Ok(d) => d,
                        Err(RecvTimeoutError::Timeout) => return Ok(None),
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(BriskError::Disconnected)
                        }
                    }
                }
            },
        };
        // Honour the link delay.
        let now = Instant::now();
        if delayed.deliver_at > now {
            match deadline {
                None => std::thread::sleep(delayed.deliver_at - now),
                Some(dl) if delayed.deliver_at <= dl => {
                    std::thread::sleep(delayed.deliver_at - now)
                }
                Some(_) => {
                    // Not deliverable within the timeout; keep it for the
                    // next call.
                    self.held = Some(delayed);
                    return Ok(None);
                }
            }
        }
        Ok(Some(delayed.frame))
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn pair(model: LinkModel) -> (Box<dyn Connection>, Box<dyn Connection>) {
        let t = MemTransport::with_model(model);
        let mut l = t.listen("ism").unwrap();
        let c = t.connect("ism").unwrap();
        let s = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        (s, c)
    }

    #[test]
    fn round_trip() {
        let (mut s, mut c) = pair(LinkModel::ideal());
        c.send(b"batch").unwrap();
        assert_eq!(
            s.recv(Some(Duration::from_secs(1))).unwrap().unwrap(),
            b"batch"
        );
        s.send(b"ack").unwrap();
        assert_eq!(
            c.recv(Some(Duration::from_secs(1))).unwrap().unwrap(),
            b"ack"
        );
    }

    #[test]
    fn in_order_delivery() {
        let (mut s, mut c) = pair(LinkModel {
            latency: Duration::from_micros(100),
            jitter: Duration::from_micros(500),
            spike_probability: 0.2,
            spike: Duration::from_millis(1),
            ..LinkModel::ideal()
        });
        for i in 0..200u32 {
            c.send(&i.to_le_bytes()).unwrap();
        }
        for i in 0..200u32 {
            let f = s.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn latency_is_applied() {
        let (mut s, mut c) = pair(LinkModel {
            latency: Duration::from_millis(20),
            ..LinkModel::ideal()
        });
        let t0 = Instant::now();
        c.send(b"x").unwrap();
        s.recv(None).unwrap().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn timeout_shorter_than_latency_holds_frame() {
        let (mut s, mut c) = pair(LinkModel {
            latency: Duration::from_millis(50),
            ..LinkModel::ideal()
        });
        c.send(b"slow").unwrap();
        // Too-early recv must not deliver nor drop the frame.
        assert!(s.recv(Some(Duration::from_millis(5))).unwrap().is_none());
        let got = s.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(got, b"slow");
    }

    #[test]
    fn disconnect_detected() {
        let (mut s, c) = pair(LinkModel::ideal());
        drop(c);
        let err = s.recv(Some(Duration::from_secs(1))).unwrap_err();
        assert!(err.is_disconnect());
    }

    #[test]
    fn connection_killed_after_n_frames() {
        let (mut s, mut c) = pair(LinkModel {
            kill_after_frames: Some(3),
            ..LinkModel::ideal()
        });
        for i in 0..3u32 {
            c.send(&i.to_le_bytes()).unwrap();
        }
        // The 4th send hits the kill threshold: the connection severs.
        let err = c.send(&3u32.to_le_bytes()).unwrap_err();
        assert!(err.is_disconnect(), "got {err}");
        // Frames already in flight still drain (like kernel-buffered TCP
        // data after a peer reset race), then the peer sees the disconnect.
        for i in 0..3u32 {
            let f = s.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
        let err = s.recv(Some(Duration::from_secs(1))).unwrap_err();
        assert!(err.is_disconnect(), "got {err}");
        // The severed endpoint can no longer receive either.
        assert!(c.recv(Some(Duration::from_millis(10))).is_err());
    }

    #[test]
    fn connect_to_missing_address_fails() {
        let t = MemTransport::new();
        assert!(t.connect("nowhere").is_err());
    }

    #[test]
    fn double_bind_rejected_and_freed_on_drop() {
        let t = MemTransport::new();
        let l = t.listen("a").unwrap();
        assert!(t.listen("a").is_err());
        drop(l);
        assert!(t.listen("a").is_ok());
    }

    #[test]
    fn multiple_clients_one_listener() {
        let t = MemTransport::new();
        let mut l = t.listen("ism").unwrap();
        let mut clients: Vec<Box<dyn Connection>> =
            (0..4).map(|_| t.connect("ism").unwrap()).collect();
        let mut servers = Vec::new();
        for _ in 0..4 {
            servers.push(l.accept(Some(Duration::from_secs(1))).unwrap().unwrap());
        }
        for (i, c) in clients.iter_mut().enumerate() {
            c.send(&(i as u32).to_le_bytes()).unwrap();
        }
        let mut seen = Vec::new();
        for s in &mut servers {
            let f = s.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
            seen.push(u32::from_le_bytes(f[..].try_into().unwrap()));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cross_thread_traffic() {
        let (mut s, mut c) = pair(LinkModel::lan());
        const N: u32 = 2_000;
        let producer = thread::spawn(move || {
            for i in 0..N {
                c.send(&i.to_le_bytes()).unwrap();
            }
            c
        });
        for i in 0..N {
            let f = s.recv(Some(Duration::from_secs(10))).unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
        drop(producer.join().unwrap());
    }
}
