//! Deterministic wire-fault injection: the chaos plane of `brisk-net`.
//!
//! [`FaultingTransport`] wraps any [`Transport`] (tcp, uds or mem) and
//! perturbs *outbound* frames on every connection it creates: per-frame
//! byte corruption, truncation, duplication, adjacent-frame reordering,
//! bounded extra delay, and an abrupt mid-stream kill. All decisions are
//! drawn from a seeded per-connection RNG described by [`FaultSpec`], so
//! **the same seed replays the same fault sequence byte-for-byte** — a
//! failing chaos run is a reproducible test case, not an anecdote.
//!
//! The wrapper sits *above* framing: a "corrupted frame" arrives with a
//! consistent length prefix but damaged payload, which is exactly what the
//! decode layers (`brisk-proto`/`brisk-xdr`) must survive. Truncation
//! shortens the payload (the transport re-frames it), reordering swaps two
//! adjacent frames, and a kill severs the connection like a TCP reset.
//! Inbound frames pass through untouched — fault one side of a link by
//! wrapping that side's transport.
//!
//! Every injected fault is counted in a shared [`FaultStats`] and appended
//! to a bounded event log ([`FaultStats::events`]) that tests compare
//! across runs to assert determinism.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::traits::{Connection, Listener, Transport};
use brisk_core::{BriskError, Result};
use brisk_telemetry::Registry;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on retained [`FaultEvent`]s; counters keep counting past it.
const MAX_FAULT_EVENTS: usize = 4096;

/// What faults to inject, and with what probability. All rates are
/// per-frame probabilities in `[0, 1]`; `seed` makes the whole schedule
/// deterministic (each connection derives its own RNG from `seed` and its
/// connection index, so multi-connection runs replay too).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Master seed for the fault schedule.
    pub seed: u64,
    /// Probability of flipping 1–3 payload bytes of a frame.
    pub corrupt_rate: f64,
    /// Probability of truncating a frame to a random prefix.
    pub truncate_rate: f64,
    /// Probability of sending a frame twice.
    pub duplicate_rate: f64,
    /// Probability of holding a frame back so it swaps places with the
    /// next one (adjacent reorder — the strongest reorder a stream
    /// transport's consumer can observe).
    pub reorder_rate: f64,
    /// Probability of delaying a frame by a uniform draw from
    /// `[0, max_delay]`.
    pub delay_rate: f64,
    /// Bound for injected delays.
    pub max_delay: Duration,
    /// Sever the connection (both directions, like a TCP reset) after this
    /// many sends. `None` disables the kill.
    pub kill_after_frames: Option<u64>,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0,
            corrupt_rate: 0.0,
            truncate_rate: 0.0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            delay_rate: 0.0,
            max_delay: Duration::from_millis(5),
            kill_after_frames: None,
        }
    }
}

impl FaultSpec {
    /// A spec injecting nothing, with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// True when every fault is disabled (the wrapper becomes a no-op
    /// pass-through apart from send accounting).
    pub fn is_noop(&self) -> bool {
        self.corrupt_rate == 0.0
            && self.truncate_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.delay_rate == 0.0
            && self.kill_after_frames.is_none()
    }

    /// Validate rates are probabilities.
    pub fn validate(&self) -> Result<()> {
        for (name, r) in [
            ("corrupt", self.corrupt_rate),
            ("truncate", self.truncate_rate),
            ("duplicate", self.duplicate_rate),
            ("reorder", self.reorder_rate),
            ("delay", self.delay_rate),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(BriskError::Config(format!(
                    "fault {name} rate {r} outside [0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// One injected fault, recorded with enough detail that two runs with the
/// same [`FaultSpec`] can be compared byte-for-byte.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Bytes flipped in place: `(offset, xor_mask)` pairs.
    Corrupt(Vec<(usize, u8)>),
    /// Frame cut down to its first `keep` bytes.
    Truncate {
        /// Bytes kept.
        keep: usize,
    },
    /// Frame sent twice.
    Duplicate,
    /// Frame held back to swap with its successor.
    Reorder,
    /// Frame delayed by this many microseconds before sending.
    Delay {
        /// Injected delay.
        us: u64,
    },
    /// Connection severed mid-stream.
    Kill,
}

/// A fault applied to one frame of one connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Which connection of the transport (creation order, from 0).
    pub conn: u64,
    /// Which outbound frame of that connection (from 0).
    pub frame: u64,
    /// What was done to it.
    pub kind: FaultKind,
}

/// Shared fault accounting: per-kind counters plus a bounded event log.
#[derive(Default)]
pub struct FaultStats {
    corrupted: AtomicU64,
    truncated: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    delayed: AtomicU64,
    killed: AtomicU64,
    clean: AtomicU64,
    events: Mutex<Vec<FaultEvent>>,
}

impl FaultStats {
    /// Fresh, empty stats.
    pub fn new() -> Arc<FaultStats> {
        Arc::new(FaultStats::default())
    }

    fn record(&self, counter: &AtomicU64, event: FaultEvent) {
        counter.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock();
        if events.len() < MAX_FAULT_EVENTS {
            events.push(event);
        }
    }

    /// `(corrupted, truncated, duplicated, reordered, delayed, killed)`
    /// totals so far.
    pub fn counts(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.corrupted.load(Ordering::Relaxed),
            self.truncated.load(Ordering::Relaxed),
            self.duplicated.load(Ordering::Relaxed),
            self.reordered.load(Ordering::Relaxed),
            self.delayed.load(Ordering::Relaxed),
            self.killed.load(Ordering::Relaxed),
        )
    }

    /// Total faults injected, of any kind.
    pub fn total(&self) -> u64 {
        let (c, t, d, r, dl, k) = self.counts();
        c + t + d + r + dl + k
    }

    /// Frames that passed through unperturbed.
    pub fn clean(&self) -> u64 {
        self.clean.load(Ordering::Relaxed)
    }

    /// The (bounded) fault event log, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().clone()
    }

    /// Export the per-kind injection counters as
    /// `brisk_fault_injected_total{kind=...}`.
    pub fn bind_telemetry(self: &Arc<Self>, registry: &Registry) {
        let name = "brisk_fault_injected_total";
        let help = "Wire faults injected by the brisk-net fault plane";
        let s = Arc::clone(self);
        registry.counter_fn(name, help, &[("kind", "corrupt")], move || {
            s.corrupted.load(Ordering::Relaxed)
        });
        let s = Arc::clone(self);
        registry.counter_fn(name, help, &[("kind", "truncate")], move || {
            s.truncated.load(Ordering::Relaxed)
        });
        let s = Arc::clone(self);
        registry.counter_fn(name, help, &[("kind", "duplicate")], move || {
            s.duplicated.load(Ordering::Relaxed)
        });
        let s = Arc::clone(self);
        registry.counter_fn(name, help, &[("kind", "reorder")], move || {
            s.reordered.load(Ordering::Relaxed)
        });
        let s = Arc::clone(self);
        registry.counter_fn(name, help, &[("kind", "delay")], move || {
            s.delayed.load(Ordering::Relaxed)
        });
        let s = Arc::clone(self);
        registry.counter_fn(name, help, &[("kind", "kill")], move || {
            s.killed.load(Ordering::Relaxed)
        });
    }
}

/// SplitMix64-style mix of the master seed and a connection index into a
/// per-connection RNG seed.
fn conn_seed(master: u64, conn: u64) -> u64 {
    let mut z = master ^ conn.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`Transport`] decorator that injects [`FaultSpec`] faults into the
/// outbound direction of every connection it creates (both dialed and
/// accepted). Connection indices are assigned in creation order from a
/// shared counter, so a single-connection-per-role test is fully
/// deterministic.
pub struct FaultingTransport<T> {
    inner: T,
    spec: FaultSpec,
    stats: Arc<FaultStats>,
    next_conn: Arc<AtomicU64>,
}

impl<T: Transport> FaultingTransport<T> {
    /// Wrap `inner` so its connections inject faults per `spec`.
    pub fn new(inner: T, spec: FaultSpec) -> Self {
        FaultingTransport {
            inner,
            spec,
            stats: FaultStats::new(),
            next_conn: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The shared fault accounting for all connections of this transport.
    pub fn stats(&self) -> Arc<FaultStats> {
        Arc::clone(&self.stats)
    }
}

impl<T: Transport> Transport for FaultingTransport<T> {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>> {
        Ok(Box::new(FaultingListener {
            inner: self.inner.listen(addr)?,
            spec: self.spec,
            stats: Arc::clone(&self.stats),
            next_conn: Arc::clone(&self.next_conn),
        }))
    }

    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>> {
        let conn = self.inner.connect(addr)?;
        let idx = self.next_conn.fetch_add(1, Ordering::Relaxed);
        Ok(FaultingConnection::wrap(
            conn,
            self.spec,
            idx,
            Arc::clone(&self.stats),
        ))
    }
}

/// Listener half of [`FaultingTransport`]: wraps every accepted
/// connection.
struct FaultingListener {
    inner: Box<dyn Listener>,
    spec: FaultSpec,
    stats: Arc<FaultStats>,
    next_conn: Arc<AtomicU64>,
}

impl Listener for FaultingListener {
    fn accept(&mut self, timeout: Option<Duration>) -> Result<Option<Box<dyn Connection>>> {
        match self.inner.accept(timeout)? {
            None => Ok(None),
            Some(conn) => {
                let idx = self.next_conn.fetch_add(1, Ordering::Relaxed);
                Ok(Some(FaultingConnection::wrap(
                    conn,
                    self.spec,
                    idx,
                    Arc::clone(&self.stats),
                )))
            }
        }
    }

    fn local_addr(&self) -> String {
        self.inner.local_addr()
    }
}

/// A [`Connection`] decorator injecting seeded faults into its outbound
/// frames. See the module docs for the fault model.
pub struct FaultingConnection {
    /// `None` once the kill fault severed the connection; dropping the
    /// inner half makes the peer observe a disconnect, like a TCP reset.
    inner: Option<Box<dyn Connection>>,
    spec: FaultSpec,
    rng: StdRng,
    stats: Arc<FaultStats>,
    conn: u64,
    /// Outbound frames offered so far (drives `kill_after_frames` and the
    /// per-frame event indices).
    frames: u64,
    /// A frame held back by the reorder fault, sent after the next one.
    stashed: Option<Vec<u8>>,
    peer: String,
}

impl FaultingConnection {
    /// Wrap one connection. `conn` is its index in the fault schedule
    /// (connections with the same `(spec.seed, conn)` draw identical fault
    /// sequences).
    pub fn wrap(
        inner: Box<dyn Connection>,
        spec: FaultSpec,
        conn: u64,
        stats: Arc<FaultStats>,
    ) -> Box<dyn Connection> {
        let peer = inner.peer();
        Box::new(FaultingConnection {
            inner: Some(inner),
            spec,
            rng: StdRng::seed_from_u64(conn_seed(spec.seed, conn)),
            stats,
            conn,
            frames: 0,
            stashed: None,
            peer,
        })
    }

    fn event(&self, frame: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            conn: self.conn,
            frame,
            kind,
        }
    }

    /// Perturb one frame and hand it (and any stashed predecessor) to the
    /// inner connection.
    fn send_faulted(&mut self, frame: &[u8]) -> Result<()> {
        let idx = self.frames;
        self.frames += 1;

        if let Some(kill_after) = self.spec.kill_after_frames {
            if idx >= kill_after && self.inner.is_some() {
                self.inner = None;
                self.stashed = None;
                self.stats
                    .record(&self.stats.killed, self.event(idx, FaultKind::Kill));
            }
        }
        if self.inner.is_none() {
            return Err(BriskError::Disconnected);
        }

        // Decisions are drawn in a fixed order so a given (seed, conn,
        // frame) triple always yields the same perturbation.
        let mut payload = frame.to_vec();
        let mut faulted = false;

        if self.spec.delay_rate > 0.0 && self.rng.gen_bool(self.spec.delay_rate) {
            let us = self
                .rng
                .gen_range(0..=self.spec.max_delay.as_micros() as u64);
            self.stats.record(
                &self.stats.delayed,
                self.event(idx, FaultKind::Delay { us }),
            );
            std::thread::sleep(Duration::from_micros(us));
            faulted = true;
        }
        if !payload.is_empty()
            && self.spec.corrupt_rate > 0.0
            && self.rng.gen_bool(self.spec.corrupt_rate)
        {
            let n = self.rng.gen_range(1..=3usize);
            let mut flips = Vec::with_capacity(n);
            for _ in 0..n {
                let off = self.rng.gen_range(0..payload.len());
                let mask = self.rng.gen_range(1..=255u32) as u8;
                payload[off] ^= mask;
                flips.push((off, mask));
            }
            self.stats.record(
                &self.stats.corrupted,
                self.event(idx, FaultKind::Corrupt(flips)),
            );
            faulted = true;
        }
        if !payload.is_empty()
            && self.spec.truncate_rate > 0.0
            && self.rng.gen_bool(self.spec.truncate_rate)
        {
            let keep = self.rng.gen_range(0..payload.len());
            payload.truncate(keep);
            self.stats.record(
                &self.stats.truncated,
                self.event(idx, FaultKind::Truncate { keep }),
            );
            faulted = true;
        }
        let duplicate =
            self.spec.duplicate_rate > 0.0 && self.rng.gen_bool(self.spec.duplicate_rate);
        let reorder = self.spec.reorder_rate > 0.0 && self.rng.gen_bool(self.spec.reorder_rate);

        if reorder && self.stashed.is_none() {
            // Hold this frame back; it goes out right after the next one.
            self.stats
                .record(&self.stats.reordered, self.event(idx, FaultKind::Reorder));
            self.stashed = Some(payload);
            return Ok(());
        }
        if duplicate {
            self.stats.record(
                &self.stats.duplicated,
                self.event(idx, FaultKind::Duplicate),
            );
            faulted = true;
        }

        let held = self.stashed.take();
        let inner = match self.inner.as_mut() {
            Some(inner) => inner,
            None => return Err(BriskError::Disconnected),
        };
        inner.send(&payload)?;
        if duplicate {
            inner.send(&payload)?;
        }
        if let Some(held) = held {
            inner.send(&held)?;
        }
        if !faulted {
            self.stats.clean.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

impl Connection for FaultingConnection {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.send_faulted(frame)
    }

    fn recv(&mut self, timeout: Option<Duration>) -> Result<Option<Vec<u8>>> {
        match self.inner.as_mut() {
            Some(inner) => inner.recv(timeout),
            None => Err(BriskError::Disconnected),
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn poll_fd(&self) -> Option<std::os::unix::io::RawFd> {
        // A killed link has no fd anymore; the reactor's next recv sees
        // the Disconnected it expects.
        self.inner.as_ref().and_then(|c| c.poll_fd())
    }

    fn has_buffered(&self) -> bool {
        self.inner.as_ref().is_some_and(|c| c.has_buffered())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::mem::MemTransport;

    fn chaos_spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            corrupt_rate: 0.3,
            truncate_rate: 0.2,
            duplicate_rate: 0.2,
            reorder_rate: 0.15,
            delay_rate: 0.0,
            ..FaultSpec::default()
        }
    }

    /// Run N frames through a faulted link; return (delivered frames, events).
    fn run(seed: u64, frames: usize) -> (Vec<Vec<u8>>, Vec<FaultEvent>) {
        let t = FaultingTransport::new(MemTransport::new(), chaos_spec(seed));
        let stats = t.stats();
        let mut l = t.listen("x").unwrap();
        let mut c = t.connect("x").unwrap();
        let mut s = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        for i in 0..frames {
            c.send(format!("frame-{i:04}-payload").as_bytes()).unwrap();
        }
        let mut got = Vec::new();
        while let Ok(Some(f)) = s.recv(Some(Duration::from_millis(20))) {
            got.push(f);
        }
        (got, stats.events())
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_sequence() {
        let (frames_a, events_a) = run(42, 200);
        let (frames_b, events_b) = run(42, 200);
        assert!(!events_a.is_empty(), "chaos spec injected nothing");
        assert_eq!(events_a, events_b, "fault schedules diverged");
        assert_eq!(frames_a, frames_b, "delivered bytes diverged");
    }

    #[test]
    fn different_seeds_differ() {
        let (_, events_a) = run(1, 200);
        let (_, events_b) = run(2, 200);
        assert_ne!(events_a, events_b);
    }

    #[test]
    fn noop_spec_passes_frames_untouched() {
        let t = FaultingTransport::new(MemTransport::new(), FaultSpec::seeded(7));
        assert!(FaultSpec::seeded(7).is_noop());
        let stats = t.stats();
        let mut l = t.listen("x").unwrap();
        let mut c = t.connect("x").unwrap();
        let mut s = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        for i in 0..50u32 {
            c.send(&i.to_be_bytes()).unwrap();
        }
        for i in 0..50u32 {
            let f = s.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
            assert_eq!(f, i.to_be_bytes());
        }
        assert_eq!(stats.total(), 0);
        assert_eq!(stats.clean(), 50);
    }

    #[test]
    fn corruption_changes_bytes_but_not_framing() {
        let spec = FaultSpec {
            seed: 9,
            corrupt_rate: 1.0,
            ..FaultSpec::default()
        };
        let t = FaultingTransport::new(MemTransport::new(), spec);
        let stats = t.stats();
        let mut l = t.listen("x").unwrap();
        let mut c = t.connect("x").unwrap();
        let mut s = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        let original = b"all-good-bytes".to_vec();
        c.send(&original).unwrap();
        let got = s.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(got.len(), original.len(), "corruption must preserve length");
        assert_ne!(got, original, "corruption must change bytes");
        let (corrupted, ..) = stats.counts();
        assert_eq!(corrupted, 1);
    }

    #[test]
    fn kill_severs_both_directions() {
        let spec = FaultSpec {
            seed: 3,
            kill_after_frames: Some(2),
            ..FaultSpec::default()
        };
        let t = FaultingTransport::new(MemTransport::new(), spec);
        let mut l = t.listen("x").unwrap();
        let mut c = t.connect("x").unwrap();
        let mut s = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        c.send(b"one").unwrap();
        c.send(b"two").unwrap();
        let err = c.send(b"three").unwrap_err();
        assert!(err.is_disconnect());
        assert!(c.recv(Some(Duration::from_millis(5))).is_err());
        // In-flight frames drain, then the peer sees the disconnect.
        assert_eq!(
            s.recv(Some(Duration::from_secs(1))).unwrap().unwrap(),
            b"one"
        );
        assert_eq!(
            s.recv(Some(Duration::from_secs(1))).unwrap().unwrap(),
            b"two"
        );
        assert!(s.recv(Some(Duration::from_secs(1))).is_err());
        assert_eq!(t.stats().counts().5, 1);
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        // reorder_rate 1.0 stashes frame 0, sends frame 1 then releases 0;
        // frame 2 is stashed again, and so on. With an even frame count
        // every pair arrives swapped.
        let spec = FaultSpec {
            seed: 5,
            reorder_rate: 1.0,
            ..FaultSpec::default()
        };
        let t = FaultingTransport::new(MemTransport::new(), spec);
        let mut l = t.listen("x").unwrap();
        let mut c = t.connect("x").unwrap();
        let mut s = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        for i in 0..4u32 {
            c.send(&i.to_be_bytes()).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..4 {
            let f = s.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
            got.push(u32::from_be_bytes([f[0], f[1], f[2], f[3]]));
        }
        assert_eq!(got, vec![1, 0, 3, 2]);
    }

    #[test]
    fn rates_validated() {
        let mut spec = FaultSpec::seeded(1);
        spec.corrupt_rate = 1.5;
        assert!(spec.validate().is_err());
        assert!(FaultSpec::seeded(1).validate().is_ok());
    }
}
