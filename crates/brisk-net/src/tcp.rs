//! TCP transport: `std::net` with 4-byte big-endian length framing.
//!
//! `TCP_NODELAY` is set on every connection: BRISK batches records itself
//! (the EXS's "batching, latency control" stage), so Nagle's algorithm
//! would only add latency on top of deliberately-flushed batches.

use crate::framed::FramedConnection;
use crate::traits::{Connection, Listener, Transport};
use brisk_core::Result;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// The real-network transport.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpTransport;

fn wrap(stream: TcpStream) -> Result<Box<dyn Connection>> {
    stream.set_nodelay(true)?;
    Ok(Box::new(FramedConnection::new(stream)))
}

impl Transport for TcpTransport {
    fn listen(&self, addr: &str) -> Result<Box<dyn Listener>> {
        let listener = TcpListener::bind(addr)?;
        Ok(Box::new(TcpListenerWrap { listener }))
    }

    fn connect(&self, addr: &str) -> Result<Box<dyn Connection>> {
        wrap(TcpStream::connect(addr)?)
    }
}

struct TcpListenerWrap {
    listener: TcpListener,
}

impl Listener for TcpListenerWrap {
    fn accept(&mut self, timeout: Option<Duration>) -> Result<Option<Box<dyn Connection>>> {
        // std's TcpListener has no accept timeout; emulate with
        // non-blocking polling. Accept latency is not on any measured path
        // (connections are long-lived), so the wait backs off: a couple of
        // fine-grained polls catch an already-pending connection almost
        // instantly, then the sleep doubles toward a coarse cap so an idle
        // accept loop does not burn a core the way the old fixed 1 ms
        // busy-poll did.
        const WAIT_FLOOR: Duration = Duration::from_micros(100);
        const WAIT_CAP: Duration = Duration::from_millis(10);
        match timeout {
            None => {
                self.listener.set_nonblocking(false)?;
                let (stream, _) = self.listener.accept()?;
                Ok(Some(wrap(stream)?))
            }
            Some(t) => {
                self.listener.set_nonblocking(true)?;
                let deadline = std::time::Instant::now() + t;
                let mut wait = WAIT_FLOOR;
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false)?;
                            return Ok(Some(wrap(stream)?));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            let remaining =
                                deadline.saturating_duration_since(std::time::Instant::now());
                            if remaining.is_zero() {
                                return Ok(None);
                            }
                            // Never oversleep the caller's deadline.
                            std::thread::sleep(wait.min(remaining));
                            wait = (wait * 2).min(WAIT_CAP);
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
        }
    }

    fn local_addr(&self) -> String {
        self.listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MAX_FRAME_BYTES;
    use std::thread;

    fn pair() -> (Box<dyn Connection>, Box<dyn Connection>) {
        let t = TcpTransport;
        let mut listener = t.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let client = thread::spawn(move || TcpTransport.connect(&addr).unwrap());
        let server = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        (server, client.join().unwrap())
    }

    #[test]
    fn round_trip_frames() {
        let (mut server, mut client) = pair();
        client.send(b"hello ism").unwrap();
        let got = server.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(got, b"hello ism");
        server.send(b"hello exs").unwrap();
        let got = client.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(got, b"hello exs");
    }

    #[test]
    fn empty_frames_are_legal() {
        let (mut server, mut client) = pair();
        client.send(b"").unwrap();
        let got = server.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn many_frames_keep_order_and_boundaries() {
        let (mut server, mut client) = pair();
        let frames: Vec<Vec<u8>> = (0..500u32)
            .map(|i| {
                let mut v = i.to_le_bytes().to_vec();
                v.resize(4 + (i % 97) as usize, (i % 251) as u8);
                v
            })
            .collect();
        let sender = {
            let frames = frames.clone();
            thread::spawn(move || {
                for f in &frames {
                    client.send(f).unwrap();
                }
                client // keep alive until the receiver is done
            })
        };
        for expect in &frames {
            let got = server.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
            assert_eq!(&got, expect);
        }
        drop(sender.join().unwrap());
    }

    #[test]
    fn recv_timeout_returns_none_and_loses_nothing() {
        let (mut server, mut client) = pair();
        assert!(server
            .recv(Some(Duration::from_millis(10)))
            .unwrap()
            .is_none());
        client.send(b"late").unwrap();
        let got = server.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(got, b"late");
    }

    #[test]
    fn zero_timeout_is_nonblocking_poll() {
        let (mut server, mut client) = pair();
        let t0 = std::time::Instant::now();
        assert!(server.recv(Some(Duration::ZERO)).unwrap().is_none());
        assert!(t0.elapsed() < Duration::from_millis(5), "must not stall");
        client.send(b"x").unwrap();
        // Poll until the kernel delivers it.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if let Some(got) = server.recv(Some(Duration::ZERO)).unwrap() {
                assert_eq!(got, b"x");
                break;
            }
            assert!(std::time::Instant::now() < deadline);
        }
    }

    #[test]
    fn peer_disconnect_is_reported() {
        let (mut server, client) = pair();
        drop(client);
        let err = loop {
            match server.recv(Some(Duration::from_secs(5))) {
                Ok(Some(_)) => continue,
                Ok(None) => continue,
                Err(e) => break e,
            }
        };
        assert!(err.is_disconnect(), "got {err}");
    }

    #[test]
    fn oversized_send_rejected_locally() {
        let (mut server, mut client) = pair();
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(client.send(&huge).is_err());
        // Connection still usable.
        client.send(b"ok").unwrap();
        let got = server.recv(Some(Duration::from_secs(5))).unwrap().unwrap();
        assert_eq!(got, b"ok");
    }

    #[test]
    fn accept_timeout_expires() {
        let t = TcpTransport;
        let mut listener = t.listen("127.0.0.1:0").unwrap();
        let r = listener.accept(Some(Duration::from_millis(20))).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn accept_timeout_expires_near_deadline_despite_backoff() {
        // The adaptive wait doubles toward its 10 ms cap; it must still
        // honour the caller's deadline, not oversleep past it.
        let t = TcpTransport;
        let mut listener = t.listen("127.0.0.1:0").unwrap();
        let t0 = std::time::Instant::now();
        let r = listener.accept(Some(Duration::from_millis(60))).unwrap();
        let elapsed = t0.elapsed();
        assert!(r.is_none());
        assert!(
            elapsed >= Duration::from_millis(60),
            "returned early: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(200),
            "overslept the deadline: {elapsed:?}"
        );
    }

    #[test]
    fn connection_arriving_mid_wait_is_accepted() {
        // A connect that lands while accept() is parked in its adaptive
        // wait must still be picked up well before the timeout expires.
        let t = TcpTransport;
        let mut listener = t.listen("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let client = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            TcpTransport.connect(&addr).unwrap()
        });
        let r = listener.accept(Some(Duration::from_secs(5))).unwrap();
        assert!(r.is_some(), "mid-wait connection must be accepted");
        drop(client.join().unwrap());
    }

    #[test]
    fn concurrent_bidirectional_traffic() {
        let (mut server, mut client) = pair();
        const N: u32 = 1_000;
        let a = thread::spawn(move || {
            for i in 0..N {
                client.send(&i.to_le_bytes()).unwrap();
            }
            let mut sum = 0u64;
            for _ in 0..N {
                let f = client.recv(Some(Duration::from_secs(10))).unwrap().unwrap();
                sum += u32::from_le_bytes(f[..].try_into().unwrap()) as u64;
            }
            sum
        });
        let b = thread::spawn(move || {
            let mut sum = 0u64;
            for _ in 0..N {
                let f = server.recv(Some(Duration::from_secs(10))).unwrap().unwrap();
                let v = u32::from_le_bytes(f[..].try_into().unwrap());
                sum += v as u64;
                server.send(&v.to_le_bytes()).unwrap();
            }
            sum
        });
        let expected: u64 = (0..N as u64).sum();
        assert_eq!(a.join().unwrap(), expected);
        assert_eq!(b.join().unwrap(), expected);
    }
}
