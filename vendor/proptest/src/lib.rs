//! Offline shim for `proptest` 1.x: the subset BRISK's property tests
//! use, implemented as a deterministic seeded random tester.
//!
//! Differences from upstream:
//! * no shrinking — a failing case reports the generated inputs and the
//!   case index instead;
//! * each `proptest!` test runs `PROPTEST_CASES` (default 64) cases with
//!   seeds derived from the test's module path and name, so failures are
//!   reproducible run-to-run;
//! * regex strategies support the literal patterns the workspace uses
//!   (`.`/char-class atoms with `*` or `{m,n}` quantifiers).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the RNG for one test case: FNV-1a of the test name mixed
    /// with the case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniformly-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform usize in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Outcome of a single generated test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Input rejected by `prop_assume!` — the case is skipped.
    Reject(String),
    /// Assertion failure.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Number of cases per `proptest!` test (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A generator of values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe strategy, used by `prop_oneof!` to erase arm types.
pub trait DynStrategy<V> {
    /// Generate one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` strategy).
pub struct Union<V> {
    arms: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Build from the macro-collected arms.
    pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].dyn_generate(rng)
    }
}

// ---------------------------------------------------------------- any::<T>()

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T` (`any::<u32>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Edge values are drawn with probability 1/8 to bias toward boundaries
/// (upstream proptest similarly biases toward special values).
macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.below(8) == 0 {
                    const EDGES: [i128; 5] = [0, 1, -1, <$t>::MIN as i128, <$t>::MAX as i128];
                    let e = EDGES[rng.below(EDGES.len())];
                    if e >= <$t>::MIN as i128 && e <= <$t>::MAX as i128 {
                        return e as $t;
                    }
                }
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, u8, i16, u16, i32, u32, i64, usize);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        if rng.below(8) == 0 {
            [0, 1, u64::MAX][rng.below(3)]
        } else {
            rng.next_u64()
        }
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Raw bit patterns: exercises NaN, infinities and subnormals.
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        arbitrary_char(rng)
    }
}

// ------------------------------------------------------------ range strategies

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ------------------------------------------------------------ tuple strategies

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// -------------------------------------------------------------- string regexes

/// The character classes supported by the mini regex parser.
enum Atom {
    /// `.` — any char except newline.
    Dot,
    /// `[...]` — an explicit set of chars.
    Class(Vec<char>),
}

/// A parsed `atom{m,n}`-style literal pattern.
struct Pattern {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Pattern {
    let mut chars = pat.chars().peekable();
    let atom = match chars.next() {
        Some('.') => Atom::Dot,
        Some('[') => {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some('\\') => {
                        let c = match chars.next() {
                            Some('n') => '\n',
                            Some('t') => '\t',
                            Some('r') => '\r',
                            Some(c) => c,
                            None => panic!("unterminated escape in pattern {pat:?}"),
                        };
                        set.push(c);
                        prev = Some(c);
                    }
                    Some('-') => {
                        // Range `a-b` if bracketed by chars, else literal '-'.
                        let hi = match chars.peek() {
                            Some(&c) if c != ']' => {
                                chars.next();
                                c
                            }
                            _ => {
                                set.push('-');
                                prev = Some('-');
                                continue;
                            }
                        };
                        let lo = prev.take().unwrap_or('-');
                        for u in (lo as u32)..=(hi as u32) {
                            if let Some(c) = char::from_u32(u) {
                                set.push(c);
                            }
                        }
                    }
                    Some(c) => {
                        set.push(c);
                        prev = Some(c);
                    }
                    None => panic!("unterminated char class in pattern {pat:?}"),
                }
            }
            Atom::Class(set)
        }
        other => panic!("unsupported regex strategy {pat:?} (starts with {other:?})"),
    };
    let (min, max) = match chars.next() {
        None => (1, 1),
        Some('*') => (0, 32),
        Some('{') => {
            let rest: String = chars.collect();
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pat:?}"));
            match body.split_once(',') {
                Some((m, n)) => (
                    m.parse().expect("bad quantifier min"),
                    n.parse().expect("bad quantifier max"),
                ),
                None => {
                    let n = body.parse().expect("bad quantifier");
                    (n, n)
                }
            }
        }
        Some(q) => panic!("unsupported quantifier {q:?} in pattern {pat:?}"),
    };
    Pattern { atom, min, max }
}

/// An arbitrary char: mostly printable ASCII, sometimes multi-byte
/// Unicode so codecs see non-trivial encodings. Never a newline (regex
/// `.` semantics).
fn arbitrary_char(rng: &mut TestRng) -> char {
    const EXOTIC: [char; 8] = ['é', 'Ω', 'щ', '中', '🦀', '\u{10348}', '\u{7f}', '\u{1}'];
    match rng.below(8) {
        0 => EXOTIC[rng.below(EXOTIC.len())],
        _ => (b' ' + rng.below(95) as u8) as char,
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let p = parse_pattern(self);
        let len = p.min + rng.below(p.max - p.min + 1);
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match &p.atom {
                Atom::Dot => arbitrary_char(rng),
                Atom::Class(set) => set[rng.below(set.len())],
            };
            s.push(c);
        }
        s
    }
}

// ---------------------------------------------------------------- collections

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// Size bound for generated collections.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, 0..64)` — a vector of 0..64 generated elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --------------------------------------------------------------------- macros

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::DynStrategy<_>>),+
        ])
    };
}

/// Assert inside a proptest body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test runs [`cases`] deterministic cases; a failing case panics
/// with the case index and the `Debug` rendering of every input.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let total = $crate::cases();
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut ran = 0u64;
                let mut case = 0u64;
                // Cap rejection-driven retries so a bad prop_assume!
                // cannot loop forever.
                while ran < total && case < total * 16 {
                    let mut rng = $crate::TestRng::for_case(test_name, case);
                    case += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    // Render inputs up front: the body may consume them.
                    let rendered_inputs =
                        format!(concat!($("\n  ", stringify!($arg), " = {:?}"),+), $(&$arg),+);
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match result {
                        ::std::result::Result::Ok(()) => { ran += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}:\n{}\ninputs:{}",
                                test_name,
                                case - 1,
                                msg,
                                rendered_inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Everything a property test needs in one import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Strategy, TestCaseError,
    };
}
