//! Offline shim for `criterion` 0.5: the subset BRISK's benches use,
//! implemented as a lightweight timing harness.
//!
//! Each benchmark is warmed up briefly, then measured for a fixed
//! wall-clock budget; the mean and minimum per-iteration times are
//! printed. Set `CRITERION_JSON_OUT=<path>` to additionally append one
//! JSON object per benchmark (used to produce `BENCH_*.json` files).

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored beyond
/// choosing a batch count).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state: large batches.
    SmallInput,
    /// Large per-iteration state: small batches.
    LargeInput,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("drain", 64)` renders as `drain/64`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Trait unifying the `&str` / `BenchmarkId` argument forms.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    /// Total measured time across iterations.
    elapsed: Duration,
    /// Iterations measured.
    iters: u64,
    /// Best (minimum) single-iteration estimate from any sub-run.
    best_ns: f64,
    /// Measurement budget.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            best_ns: f64::INFINITY,
            budget,
        }
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.elapsed += elapsed;
        self.iters += iters;
        if iters > 0 {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            if per < self.best_ns {
                self.best_ns = per;
            }
        }
    }

    /// Time `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: grow the batch until one
        // batch takes ~1ms so Instant overhead stays negligible.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt > Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.record(t0.elapsed(), batch);
        }
    }

    /// Time `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        size: BatchSize,
    ) {
        let per_batch: usize = match size {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
        };
        let deadline = Instant::now() + self.budget;
        // One untimed warm-up round.
        let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
        for i in inputs {
            black_box(routine(i));
        }
        while Instant::now() < deadline {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for i in inputs {
                black_box(routine(i));
            }
            self.record(t0.elapsed(), per_batch as u64);
        }
    }
}

#[derive(Clone, Copy)]
struct Settings {
    measure: Duration,
}

impl Settings {
    fn from_env() -> Self {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Settings {
            measure: Duration::from_millis(ms),
        }
    }
}

/// The top-level harness.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    /// Upstream parity; configuration comes from the environment here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            settings: self.settings,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(None, &id.into_id(), None, self.settings, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    settings: Settings,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput annotation.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Upstream parity; the shim sizes runs by wall-clock budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shorten measurement for slow benches (upstream parity).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measure = d;
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into_id(),
            self.throughput,
            self.settings,
            f,
        );
        self
    }

    /// Benchmark a closure with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into_id(),
            self.throughput,
            self.settings,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (upstream parity; nothing buffered here).
    pub fn finish(self) {}
}

fn run_one(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    settings: Settings,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher::new(settings.measure);
    f(&mut b);
    let mean_ns = if b.iters > 0 {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    } else {
        f64::NAN
    };
    let mut line = format!("bench {full:<50} mean {:>12.1} ns/iter", mean_ns);
    if b.best_ns.is_finite() {
        let _ = write!(line, "  (best {:.1})", b.best_ns);
    }
    if let Some(t) = throughput {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if n > 0 && mean_ns > 0.0 {
            let rate = n as f64 / (mean_ns * 1e-9);
            let _ = write!(line, "  {rate:.0} {unit}/s");
        }
    }
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON_OUT") {
        if let Ok(mut fh) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                fh,
                "{{\"bench\":\"{}\",\"mean_ns\":{:.2},\"best_ns\":{:.2},\"iters\":{}}}",
                full.replace('"', "'"),
                mean_ns,
                if b.best_ns.is_finite() {
                    b.best_ns
                } else {
                    -1.0
                },
                b.iters
            );
        }
    }
}

/// Group benchmark functions into one registration point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
