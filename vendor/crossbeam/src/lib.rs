//! Offline shim for `crossbeam`: the subset BRISK uses —
//! `utils::CachePadded` and `channel::{unbounded, Sender, Receiver, ...}`
//! — implemented over the standard library. Since Rust 1.72
//! `std::sync::mpsc::Sender` is `Sync`, so a straight re-export matches
//! the crossbeam surface the workspace exercises.

/// Utilities: cache-line padding.
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) a cache line, preventing
    /// false sharing between adjacent atomics.
    #[derive(Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap `value` in cache-line-aligned storage.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap, returning the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }
}

/// Multi-producer channels (unbounded only, as used by BRISK).
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use super::utils::CachePadded;
    use std::time::Duration;

    #[test]
    fn cache_padded_aligns() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let p = CachePadded::new(7u32);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn channel_basics() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        drop(tx);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
    }
}
