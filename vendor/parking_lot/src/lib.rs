//! Offline shim for `parking_lot`: the subset BRISK uses (`Mutex`),
//! implemented over `std::sync::Mutex` with poison transparently ignored
//! (matching parking_lot's poison-free semantics).

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A poison-free mutex with the `parking_lot::Mutex` calling convention:
/// `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. A panic while
    /// holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_panic_while_held() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
