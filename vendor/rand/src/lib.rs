//! Offline shim for `rand` 0.8: the subset BRISK uses — `rngs::StdRng`
//! seeded via `SeedableRng::seed_from_u64`, and `Rng::{gen_range,
//! gen_bool}` over integer and float ranges.
//!
//! The generator is SplitMix64: tiny, fast, and statistically fine for
//! simulation jitter and property-test inputs (the only uses here).
//! Streams are deterministic per seed but do **not** match upstream
//! rand's StdRng output.

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next uniformly-distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The standard generator (here: SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        // Closed-interval floats: the open-interval draw is fine in
        // practice (hitting `hi` exactly has measure zero anyway).
        lo + rng.next_f64() * (hi - lo)
    }
}

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Convenience re-exports matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_hit_bounds_only() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let u = r.gen_range(0u64..3);
            assert!(u < 3);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
