//! Workspace e2e: a two-level relay tree under seeded wire faults.
//!
//! Three relay ISMs serve three leaf nodes each and re-export their
//! merged, repaired streams to one root ISM under per-relay namespace
//! prefixes. One leaf→relay link and one relay→root link run through the
//! seeded fault plane (duplicated frames plus periodic kills — no
//! corruption, which a CRC-less wire cannot distinguish from data). The
//! root must still see every record exactly once, in per-node order,
//! with every CRE reason delivered before its consequence, and the
//! relay tier must export its link telemetry.

use brisk::prelude::*;
use brisk::sim::{RelayTree, TreeConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Records each leaf emits (an even number: reason/conseq pairs).
const PER_LEAF: usize = 300;
const RELAYS: usize = 3;
const LEAVES_PER_RELAY: u32 = 3;

/// Duplication plus periodic kills: every failure mode the sequenced
/// window can repair. (Corruption/truncation would be quarantined and
/// *lost* — there is no wire CRC — so they would break the
/// delivered == produced check by design, not by bug.) The kill
/// threshold sits well above the replay backlog a reconnect carries, or
/// the link would livelock re-killing mid-replay forever.
fn link_faults(seed: u64, kill_after: u64) -> FaultSpec {
    FaultSpec {
        seed,
        duplicate_rate: 0.08,
        kill_after_frames: Some(kill_after),
        ..FaultSpec::default()
    }
}

fn quiet_sync() -> SyncConfig {
    SyncConfig {
        poll_period: Duration::from_secs(60), // keep sync out of the way
        ..SyncConfig::default()
    }
}

#[test]
fn two_tier_tree_survives_faulted_links_with_exactly_once_delivery() {
    let mut cfg = TreeConfig::new(RELAYS);
    cfg.sync = quiet_sync();
    let mut link = RelayConfig::new(NodePrefix::new(1).unwrap());
    link.flush_timeout = Duration::from_millis(2);
    // Small upstream batches so the faulted link sees enough frames to
    // hit its kill threshold several times within one test run.
    link.max_batch_records = 8;
    cfg.link = Some(link);
    // One faulted link in the relay→root tier.
    cfg.upstream_faults.insert(0, link_faults(0xBEEF, 40));
    let tree = RelayTree::build(cfg).unwrap();
    let mut reader = tree.root().memory().reader();

    // Nine supervised leaves; leaf 1 under relay 1 speaks through the
    // fault plane (the faulted link in the leaf→relay tier).
    let mut leaves = Vec::new();
    let mut emitters = Vec::new();
    for relay in 0..RELAYS {
        for leaf in 1..=LEAVES_PER_RELAY {
            let rings = RingSet::new(NodeId(leaf), 1 << 20);
            let mut port = rings.register();
            let t = Arc::clone(tree.transport());
            let name = RelayTree::relay_name(relay);
            let faulted = relay == 1 && leaf == 1;
            let fault_stats = FaultStats::new();
            let connect: Box<dyn Fn() -> Result<Box<dyn Connection>> + Send> = if faulted {
                let stats = Arc::clone(&fault_stats);
                Box::new(move || {
                    let raw = t.connect(&name)?;
                    Ok(FaultingConnection::wrap(
                        raw,
                        link_faults(0xF00D, 12),
                        0,
                        Arc::clone(&stats),
                    ))
                })
            } else {
                Box::new(move || t.connect(&name))
            };
            let exs = spawn_exs_supervised(
                NodeId(leaf),
                Arc::clone(&rings),
                Arc::new(SystemClock),
                connect,
                ExsConfig {
                    flush_timeout: Duration::from_millis(2),
                    // Small leaf batches for the same reason as the
                    // relay link: enough frames to trip the fault plane.
                    max_batch_records: 32,
                    ..ExsConfig::default()
                },
                SupervisorConfig::default(),
            )
            .unwrap();
            // Reason/conseq pairs with per-leaf-unique correlations and
            // explicitly increasing timestamps (per-node order must be
            // checkable at the root even when two emits land in the same
            // microsecond). Emission is paced in small bursts from a
            // thread: a killed link must find a replay backlog *smaller*
            // than its kill threshold after reconnecting, or it would
            // die mid-replay forever and never make progress.
            emitters.push(std::thread::spawn(move || {
                let base = UtcMicros::now();
                for k in 0..PER_LEAF / 2 {
                    let corr = CorrelationId(leaf as u64 * 1_000_000 + k as u64);
                    let ts = |off: usize| UtcMicros::from_micros(base.as_micros() + off as i64 * 5);
                    port.emit(EventTypeId(1), ts(2 * k), vec![Value::Reason(corr)])
                        .unwrap();
                    port.emit(EventTypeId(2), ts(2 * k + 1), vec![Value::Conseq(corr)])
                        .unwrap();
                    if k % 5 == 4 {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }));
            leaves.push(exs);
        }
    }

    // Drain the root until every leaf's records arrived (or a generous
    // deadline passes), then let would-be duplicates settle.
    let expected_total = RELAYS * LEAVES_PER_RELAY as usize * PER_LEAF;
    let mut got: Vec<EventRecord> = Vec::with_capacity(expected_total);
    let deadline = Instant::now() + Duration::from_secs(60);
    while got.len() < expected_total && Instant::now() < deadline {
        let (records, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0, "the root buffer must not overflow in-test");
        got.extend(records);
        std::thread::sleep(Duration::from_millis(10));
    }
    for emitter in emitters {
        emitter.join().unwrap();
    }
    std::thread::sleep(Duration::from_millis(300));
    let (records, _) = reader.poll().unwrap();
    got.extend(records);

    // Exactly once: every (relay, leaf) contributes PER_LEAF records
    // under its rewritten node id — no more, no less.
    let mut per_node: HashMap<NodeId, Vec<u64>> = HashMap::new();
    for r in &got {
        per_node.entry(r.node).or_default().push(r.seq);
    }
    if got.len() != expected_total {
        let mut counts: Vec<(NodeId, usize)> =
            per_node.iter().map(|(n, s)| (*n, s.len())).collect();
        counts.sort();
        eprintln!("per-node counts: {counts:?}");
        for relay in 0..RELAYS {
            let snap = tree.relay_registry(relay).snapshot();
            eprintln!(
                "relay {relay}: exported={} retx={} connects={} acks={} credit_stalls={} window_evicted={} connected={:?} window_depth={:?}",
                snap.counter_total("brisk_relay_exported_records_total"),
                snap.counter_total("brisk_relay_retransmitted_batches_total"),
                snap.counter_total("brisk_relay_connects_total"),
                snap.counter_total("brisk_relay_acks_total"),
                snap.counter_total("brisk_relay_credit_stalls_total"),
                snap.counter_total("brisk_relay_window_evicted_total"),
                snap.gauge("brisk_relay_upstream_connected"),
                snap.gauge("brisk_relay_window_depth"),
            );
            let rsnap = tree.relay(relay);
            eprintln!(
                "relay {relay} quarantine: rejected_hellos={}",
                rsnap.quarantine().rejected_hellos()
            );
        }
        eprintln!(
            "root quarantine: rejected_hellos={}",
            tree.root().quarantine().rejected_hellos()
        );
    }
    assert_eq!(got.len(), expected_total, "no loss, no duplicates");
    for relay in 0..RELAYS {
        for leaf in 1..=LEAVES_PER_RELAY {
            let node = RelayTree::global_node(relay, NodeId(leaf));
            let seqs = per_node
                .get(&node)
                .unwrap_or_else(|| panic!("no records for {node} (relay {relay} leaf {leaf})"));
            assert_eq!(seqs.len(), PER_LEAF, "exactly once for {node}");
            // In order: the per-sensor sequence numbers the leaf stamped
            // must come back strictly increasing at the root.
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "per-node order violated for {node}"
            );
        }
    }

    // CRE link order: every reason before its consequence, under the
    // relay-rewritten correlation ids.
    let mut reason_at: HashMap<CorrelationId, usize> = HashMap::new();
    for (i, r) in got.iter().enumerate() {
        for v in &r.fields {
            if let Value::Reason(c) = v {
                reason_at.entry(*c).or_insert(i);
            }
        }
    }
    let mut pairs = 0usize;
    for (i, r) in got.iter().enumerate() {
        for v in &r.fields {
            if let Value::Conseq(c) = v {
                pairs += 1;
                let at = reason_at
                    .get(c)
                    .unwrap_or_else(|| panic!("conseq {c:?} has no reason at the root"));
                assert!(
                    *at < i,
                    "reason for {c:?} must be delivered before its conseq"
                );
            }
        }
    }
    assert_eq!(pairs, expected_total / 2, "every pair must survive rewrite");

    // The fault planes actually fired…
    assert!(
        !tree.upstream_fault_stats(0).unwrap().events().is_empty(),
        "the relay→root fault plane must have fired"
    );
    // …and the relay tier exported its link telemetry.
    for relay in 0..RELAYS {
        let snap = tree.relay_registry(relay).snapshot();
        assert!(
            snap.counter_total("brisk_relay_exported_batches_total") >= 1,
            "relay {relay} must export batches upstream"
        );
        assert_eq!(
            snap.gauge("brisk_relay_upstream_connected"),
            Some(1),
            "relay {relay} must be connected upstream"
        );
    }
    let faulted_snap = tree.relay_registry(0).snapshot();
    assert!(
        faulted_snap.counter_total("brisk_relay_connects_total") >= 2,
        "the faulted upstream link must have reconnected"
    );
    assert!(
        faulted_snap.counter_total("brisk_relay_retransmitted_batches_total") >= 1,
        "kills must force window replay on the faulted link"
    );

    for leaf in leaves {
        leaf.stop().unwrap();
    }
    let (root_report, relay_reports) = tree.stop().unwrap();
    assert_eq!(root_report.core.records_out as usize, expected_total);
    assert!(root_report.relay.is_none(), "the root is not a relay");
    for (i, report) in relay_reports.iter().enumerate() {
        let relay = report.relay.as_ref().expect("relay reports carry stats");
        assert!(
            relay.records_exported >= 1,
            "relay {i} must report upstream exports"
        );
    }
}

/// Satellite: a quiet subtree behind a relay must not be evicted by the
/// root's liveness sweep. The relay's upstream exporter heartbeats its
/// idle v3 link, standing in for every leaf behind it, so a root
/// `node_timeout` far shorter than the leaves' chatter cadence still
/// keeps the subtree registered.
#[test]
fn quiet_subtree_behind_a_relay_survives_root_eviction() {
    let mut cfg = TreeConfig::new(1);
    cfg.sync = quiet_sync();
    cfg.root.node_timeout = Some(Duration::from_millis(400));
    let mut link = RelayConfig::new(NodePrefix::new(1).unwrap());
    link.flush_timeout = Duration::from_millis(2);
    link.heartbeat_interval = Duration::from_millis(100);
    cfg.link = Some(link);
    let tree = RelayTree::build(cfg).unwrap();
    let mut reader = tree.root().memory().reader();

    let rings = RingSet::new(NodeId(1), 1 << 16);
    let mut port = rings.register();
    let t = Arc::clone(tree.transport());
    let exs = spawn_exs_supervised(
        NodeId(1),
        Arc::clone(&rings),
        Arc::new(SystemClock),
        Box::new(move || t.connect(&RelayTree::relay_name(0))),
        ExsConfig {
            flush_timeout: Duration::from_millis(2),
            ..ExsConfig::default()
        },
        SupervisorConfig::default(),
    )
    .unwrap();

    let emit_and_await = |port: &mut SensorPort, reader: &mut MemoryBufferReader, n: usize| {
        for i in 0..n {
            port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i as i32)])
                .unwrap();
        }
        let mut seen = 0;
        let deadline = Instant::now() + Duration::from_secs(20);
        while seen < n && Instant::now() < deadline {
            let (records, _) = reader.poll().unwrap();
            seen += records.len();
            std::thread::sleep(Duration::from_millis(10));
        }
        seen
    };

    assert_eq!(
        emit_and_await(&mut port, &mut reader, 10),
        10,
        "warm-up records must reach the root"
    );

    // Whole subtree goes quiet for several multiples of the root's
    // node_timeout; only the relay's heartbeats keep it registered.
    std::thread::sleep(Duration::from_millis(1_500));
    let snap = tree.root_registry().snapshot();
    assert_eq!(
        snap.counter_total("brisk_ism_evicted_nodes_total"),
        0,
        "a heartbeat-forwarding relay's subtree must not be evicted"
    );

    // The link is still live end-to-end.
    assert_eq!(
        emit_and_await(&mut port, &mut reader, 10),
        10,
        "records after the quiet spell must still arrive"
    );

    exs.stop().unwrap();
    let (_, relay_reports) = tree.stop().unwrap();
    let relay = relay_reports[0].relay.as_ref().unwrap();
    assert!(
        relay.heartbeats_sent >= 3,
        "the relay must have heartbeated its idle upstream link, saw {}",
        relay.heartbeats_sent
    );
}
