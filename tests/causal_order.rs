//! Workspace e2e for causal ordering under clock faults — the headline
//! scenario of the causality-true ordering work.
//!
//! A two-tier relay tree runs in [`OrderMode::Causal`] at every tier.
//! One leaf's clock is *badly* wrong (seconds of skew, or drift plus a
//! backward step) and clock synchronization is disabled on that node, so
//! nothing ever corrects it. The leaf emits CRE consequence records
//! whose reasons live on a healthy sibling leaf: by physical timestamps
//! every pair is inverted by seconds. The hybrid logical clocks carried
//! as `X_HLC` must still prove the true order, the relay's CRE must
//! repair the tachyons against that proof, and the root must deliver
//! every reason before its consequence with exactly-once delivery
//! intact — while the clock-fault telemetry (divergence histogram,
//! tachyon repairs, causal reorders) records what happened.

use brisk::prelude::*;
use brisk::sim::{RelayTree, TreeConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reason/conseq pairs emitted across the faulted relay-0 leaves.
const PAIRS: usize = 200;

fn quiet_sync() -> SyncConfig {
    SyncConfig {
        poll_period: Duration::from_secs(60), // periodic sync out of the way
        ..SyncConfig::default()
    }
}

fn causal_tree(relays: usize) -> TreeConfig {
    let mut cfg = TreeConfig::new(relays);
    cfg.sync = quiet_sync();
    cfg.root.order_mode = OrderMode::Causal;
    cfg.relay.order_mode = OrderMode::Causal;
    let mut link = RelayConfig::new(NodePrefix::new(1).unwrap());
    link.flush_timeout = Duration::from_millis(2);
    cfg.link = Some(link);
    cfg
}

/// Leaf EXS knobs for the causal experiments: stamp `X_HLC` at scoop;
/// optionally refuse clock synchronization (the chaos plane's "this node
/// will never be fixed" switch).
fn leaf_cfg(sync_disabled: bool) -> ExsConfig {
    ExsConfig {
        flush_timeout: Duration::from_millis(2),
        stamp_hlc: true,
        sync_disabled,
        ..ExsConfig::default()
    }
}

fn spawn_leaf<C: Clock + Send + Sync + 'static>(
    tree: &RelayTree,
    relay: usize,
    node: NodeId,
    clock: Arc<C>,
    cfg: ExsConfig,
) -> (SupervisedExsHandle, SensorPort) {
    let rings = RingSet::new(node, 1 << 20);
    let port = rings.register();
    let t = Arc::clone(tree.transport());
    let name = RelayTree::relay_name(relay);
    let exs = spawn_exs_supervised(
        node,
        rings,
        clock,
        Box::new(move || t.connect(&name)),
        cfg,
        SupervisorConfig::default(),
    )
    .unwrap();
    (exs, port)
}

/// Drain the root until `expected` records arrive (generous deadline),
/// then let stragglers settle.
fn drain_root(reader: &mut MemoryBufferReader, expected: usize) -> Vec<EventRecord> {
    let mut got = Vec::with_capacity(expected);
    let deadline = Instant::now() + Duration::from_secs(60);
    while got.len() < expected && Instant::now() < deadline {
        let (records, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0, "the root buffer must not overflow in-test");
        got.extend(records);
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(300));
    let (records, _) = reader.poll().unwrap();
    got.extend(records);
    got
}

/// Every consequence delivered after its reason, every pair present.
fn assert_causal_pairs(got: &[EventRecord], pairs: usize) {
    let mut reason_at: HashMap<CorrelationId, usize> = HashMap::new();
    for (i, r) in got.iter().enumerate() {
        for v in &r.fields {
            if let Value::Reason(c) = v {
                reason_at.entry(*c).or_insert(i);
            }
        }
    }
    let mut seen = 0usize;
    for (i, r) in got.iter().enumerate() {
        for v in &r.fields {
            if let Value::Conseq(c) = v {
                seen += 1;
                let at = reason_at
                    .get(c)
                    .unwrap_or_else(|| panic!("conseq {c:?} has no reason at the root"));
                assert!(
                    *at < i,
                    "reason for {c:?} must be delivered before its conseq despite the clock fault"
                );
            }
        }
    }
    assert_eq!(seen, pairs, "every pair must reach the root");
}

/// Headline: one leaf's clock is 3 s slow and will never be synchronized
/// (`sync_disabled`). Its consequence records carry physical timestamps
/// seconds before their reasons on a healthy sibling — yet the root of
/// the two-tier causal tree delivers every reason before its conseq,
/// exactly once, because HLC stamps prove the order and the relay's CRE
/// repairs the timestamps against that proof.
#[test]
fn skewed_unsynced_leaf_keeps_reason_before_conseq_at_the_root() {
    let tree = RelayTree::build(causal_tree(2)).unwrap();
    let mut reader = tree.root().memory().reader();

    // Relay 0: healthy reason leaf + skewed conseq leaf. The skewed
    // leaf's raw clock reads 3 s in the past, and it ignores SyncAdjust,
    // so the skew persists for the whole run.
    const SKEW_US: i64 = -3_000_000;
    let (reason_exs, mut reason_port) =
        spawn_leaf(&tree, 0, NodeId(1), Arc::new(SystemClock), leaf_cfg(false));
    let skewed_clock = FaultClock::new(SystemClock, SKEW_US, 0.0);
    let (conseq_exs, mut conseq_port) = spawn_leaf(
        &tree,
        0,
        NodeId(2),
        Arc::clone(&skewed_clock),
        leaf_cfg(true),
    );
    // Relay 1: a healthy filler leaf, proving unrelated subtrees are
    // unaffected by relay 0's chaos.
    let (filler_exs, mut filler_port) =
        spawn_leaf(&tree, 1, NodeId(1), Arc::new(SystemClock), leaf_cfg(false));

    // Reasons are stamped with the true time; consequences with the
    // skewed clock's view — each pair physically inverted by ~3 s.
    let emitter = std::thread::spawn(move || {
        for k in 0..PAIRS {
            let corr = CorrelationId(k as u64);
            reason_port
                .emit(EventTypeId(1), UtcMicros::now(), vec![Value::Reason(corr)])
                .unwrap();
            conseq_port
                .emit(
                    EventTypeId(2),
                    skewed_clock.now(),
                    vec![Value::Conseq(corr)],
                )
                .unwrap();
            if k % 5 == 4 {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    });
    let filler = std::thread::spawn(move || {
        for k in 0..PAIRS {
            filler_port
                .emit(EventTypeId(3), UtcMicros::now(), vec![Value::I32(k as i32)])
                .unwrap();
            if k % 5 == 4 {
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    });

    let expected_total = 3 * PAIRS;
    let got = drain_root(&mut reader, expected_total);
    emitter.join().unwrap();
    filler.join().unwrap();

    // Exactly once, per-node order intact. (Repaired conseq stamps
    // inherit the reasons' monotone HLC order, so even the skewed node's
    // stream stays seq-ordered at the root.)
    let mut per_node: HashMap<NodeId, Vec<u64>> = HashMap::new();
    for r in &got {
        per_node.entry(r.node).or_default().push(r.seq);
    }
    assert_eq!(got.len(), expected_total, "no loss, no duplicates");
    for (relay, leaf) in [(0usize, 1u32), (0, 2), (1, 1)] {
        let node = RelayTree::global_node(relay, NodeId(leaf));
        let seqs = per_node
            .get(&node)
            .unwrap_or_else(|| panic!("no records for {node}"));
        assert_eq!(seqs.len(), PAIRS, "exactly once for {node}");
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "per-node order violated for {node}"
        );
    }

    // The causal contract itself.
    assert_causal_pairs(&got, PAIRS);

    // The repairs also reconciled the physical timestamps: each pair now
    // survives a *physically* ordered downstream consumer too.
    let mut reason_ts: HashMap<CorrelationId, UtcMicros> = HashMap::new();
    for r in &got {
        for v in &r.fields {
            if let Value::Reason(c) = v {
                reason_ts.insert(*c, r.ts);
            }
        }
    }
    for r in &got {
        for v in &r.fields {
            if let Value::Conseq(c) = v {
                assert!(
                    r.ts > reason_ts[c],
                    "repaired conseq ts must sit after its reason's"
                );
            }
        }
    }
    // Every delivered record carries a stamp in causal mode.
    assert!(got.iter().all(|r| r.hlc().is_some()));

    // The chaos was visible: relay 0 measured seconds of divergence
    // between X_HLC and its own clock…
    let snap = tree.relay_registry(0).snapshot();
    let divergence = snap
        .histogram("brisk_hlc_divergence_us")
        .expect("causal plane exports the divergence histogram");
    assert!(
        divergence.max >= 2_000_000,
        "divergence must show the 3 s skew, saw max {} us",
        divergence.max
    );
    assert!(
        snap.counter_total("brisk_ism_tachyons_repaired_total") >= (PAIRS / 2) as u64,
        "relay 0 must repair the inverted pairs"
    );
    // …while the healthy subtree saw none of it.
    let quiet = tree.relay_registry(1).snapshot();
    assert_eq!(
        quiet.counter_total("brisk_ism_tachyons_repaired_total"),
        0,
        "relay 1's subtree is healthy"
    );

    reason_exs.stop().unwrap();
    conseq_exs.stop().unwrap();
    filler_exs.stop().unwrap();
    let (root_report, relay_reports) = tree.stop().unwrap();
    assert_eq!(root_report.core.records_out as usize, expected_total);
    assert!(
        relay_reports[0].cre.tachyons_repaired >= (PAIRS / 2) as u64,
        "relay 0's CRE must report the repairs, saw {}",
        relay_reports[0].cre.tachyons_repaired
    );
    assert_eq!(
        root_report.cre.tachyons_repaired, 0,
        "repairs happen once, at the relay tier — the root sees proven order"
    );
}

/// The messier fault: a leaf whose clock *drifts* behind real time and
/// then takes a sudden 2.5 s backward step mid-run (a misfired NTP
/// correction). The HLC generator freezes its physical component across
/// the step, so the node's stamps stay monotone, causal pairs stay
/// provable, and the root's order survives — with the merge plane
/// counting the deliveries where HLC order overruled physical
/// timestamps.
#[test]
fn drifting_leaf_with_backward_step_keeps_causal_order() {
    const PAIRS: usize = 240;
    const DRIFT_PPM: f64 = -200_000.0; // falls behind 200 ms per second
    const STEP_US: i64 = -2_500_000;

    let tree = RelayTree::build(causal_tree(1)).unwrap();
    let mut reader = tree.root().memory().reader();

    let (reason_exs, mut reason_port) =
        spawn_leaf(&tree, 0, NodeId(1), Arc::new(SystemClock), leaf_cfg(false));
    let drifting_clock = FaultClock::new(SystemClock, 0, DRIFT_PPM);
    let (conseq_exs, mut conseq_port) = spawn_leaf(
        &tree,
        0,
        NodeId(2),
        Arc::clone(&drifting_clock),
        leaf_cfg(true),
    );

    // Each pair: a healthy reason, then a consequence plus an unmarked
    // record from the drifting node (both timestamped by its lying
    // clock). The step fires deterministically between pairs, from the
    // emitter itself.
    let emitter = std::thread::spawn(move || {
        for k in 0..PAIRS {
            if k == PAIRS / 2 {
                drifting_clock.step_by(STEP_US);
            }
            let corr = CorrelationId(k as u64);
            reason_port
                .emit(EventTypeId(1), UtcMicros::now(), vec![Value::Reason(corr)])
                .unwrap();
            let ts = drifting_clock.now();
            conseq_port
                .emit(EventTypeId(2), ts, vec![Value::Conseq(corr)])
                .unwrap();
            conseq_port
                .emit(EventTypeId(3), ts, vec![Value::I32(k as i32)])
                .unwrap();
            if k % 4 == 3 {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    });

    let expected_total = 3 * PAIRS;
    let got = drain_root(&mut reader, expected_total);
    emitter.join().unwrap();

    // Exactly once for both nodes. The drifting node's stream is not
    // asserted seq-ordered: near the drift threshold a repaired conseq
    // legitimately overtakes a not-yet-tachyonic neighbour — causal
    // order, not FIFO, is the contract here.
    let mut per_node: HashMap<NodeId, Vec<u64>> = HashMap::new();
    for r in &got {
        per_node.entry(r.node).or_default().push(r.seq);
    }
    assert_eq!(got.len(), expected_total, "no loss, no duplicates");
    let healthy = RelayTree::global_node(0, NodeId(1));
    let seqs = &per_node[&healthy];
    assert_eq!(seqs.len(), PAIRS);
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    let drifting = RelayTree::global_node(0, NodeId(2));
    let mut seqs = per_node[&drifting].clone();
    assert_eq!(seqs.len(), 2 * PAIRS);
    seqs.sort_unstable();
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "no duplicate seqs from the drifting node"
    );

    assert_causal_pairs(&got, PAIRS);
    assert!(got.iter().all(|r| r.hlc().is_some()));

    // The fault plane left its fingerprints: tachyons were repaired, the
    // frozen-clock window shows up as HLC divergence, and some records
    // were delivered out of physical-timestamp order because the causal
    // order demanded it.
    let snap = tree.relay_registry(0).snapshot();
    assert!(
        snap.counter_total("brisk_ism_tachyons_repaired_total") >= 1,
        "drift must eventually invert pairs"
    );
    let divergence = snap
        .histogram("brisk_hlc_divergence_us")
        .expect("causal plane exports the divergence histogram");
    assert!(
        divergence.max >= 100_000,
        "post-step frozen stamps must diverge visibly, saw max {} us",
        divergence.max
    );
    assert!(
        snap.counter_total("brisk_hlc_causal_reorders_total") >= 1,
        "HLC order must have overruled physical timestamps at least once"
    );

    reason_exs.stop().unwrap();
    conseq_exs.stop().unwrap();
    let (root_report, relay_reports) = tree.stop().unwrap();
    assert_eq!(root_report.core.records_out as usize, expected_total);
    assert!(relay_reports[0].cre.tachyons_repaired >= 1);
}
