//! Workspace integration tests: self-hosted pipeline tracing.
//!
//! With `TraceConfig::every(1)` each notice carries an `X_TRACE` context
//! that every pipeline stage stamps on the way through. These tests run
//! the full LIS → TP → ISM path and assert the stamp chain is complete,
//! ordered, and survives a durable-store round trip; and that the
//! always-on flight recorder retains the damage history a panic dump
//! would need.

use brisk::core::TraceStage;
use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_for<T>(mut poll: impl FnMut() -> Vec<T>, expect: usize, timeout: Duration) -> Vec<T> {
    let deadline = Instant::now() + timeout;
    let mut got = Vec::new();
    while got.len() < expect && Instant::now() < deadline {
        got.extend(poll());
        std::thread::sleep(Duration::from_millis(5));
    }
    got
}

/// The stamp sequence every plain (non-CRE) record must accumulate on a
/// healthy path, in pipeline order.
const FULL_PATH: [TraceStage; 7] = [
    TraceStage::Notice,
    TraceStage::ExsScoop,
    TraceStage::BatchSend,
    TraceStage::PumpRecv,
    TraceStage::SorterAdmit,
    TraceStage::SorterRelease,
    TraceStage::Deliver,
];

#[test]
fn one_in_one_sampling_traces_every_record_end_to_end() {
    const N: usize = 500;
    let registry = Registry::new();
    let transport = MemTransport::new();
    let mut server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig {
            // No sync rounds: corrections stay zero so node-side and
            // ISM-side stamps share one uncorrected timebase.
            poll_period: Duration::from_secs(3600),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    server.bind_telemetry(&registry);
    let ism = server.spawn(transport.listen("ism").unwrap()).unwrap();
    let mut reader = ism.memory().reader();

    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig {
        trace: TraceConfig::every(1),
        ..ExsConfig::default()
    };
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    for i in 0..N {
        assert!(notice!(port, lis.clock(), EventTypeId(1), i as u64));
    }
    let got = wait_for(|| reader.poll().unwrap().0, N, Duration::from_secs(15));
    assert_eq!(got.len(), N);

    let mut ids = std::collections::HashSet::new();
    for rec in &got {
        let ctx = rec
            .trace()
            .unwrap_or_else(|| panic!("1-in-1 sampling must trace record seq {}", rec.seq));
        assert!(ids.insert(ctx.trace_id), "trace ids must be unique");
        let stages: Vec<TraceStage> = ctx.stamps().iter().map(|&(s, _)| s).collect();
        assert_eq!(
            stages, FULL_PATH,
            "record seq {} missing stages: {ctx}",
            rec.seq
        );
        for pair in ctx.stamps().windows(2) {
            assert!(
                pair[1].1.micros_since(pair[0].1) >= 0,
                "stamps must be monotonic within {ctx}"
            );
        }
        // The notice stamp is the record's own origin timestamp.
        assert_eq!(ctx.stamp_at(TraceStage::Notice), Some(rec.ts));
    }

    // Every adjacent stage pair fed the latency histograms, and each slow
    // bucket carries a real exemplar id from the delivered set.
    let stages = ism.stage_latencies().expect("telemetry bound");
    let (bucket_us, exemplar) = stages.slowest_exemplar().expect("exemplars recorded");
    assert!(bucket_us >= 1);
    assert!(
        ids.contains(&exemplar),
        "exemplar {exemplar:016x} must be a delivered trace id"
    );
    let json =
        stages.exemplars_json(|code| TraceStage::from_code(code).map(|s| s.name()).unwrap_or("?"));
    for (from, to) in FULL_PATH.iter().zip(FULL_PATH.iter().skip(1)) {
        assert!(
            json.contains(&format!("\"{from}\"")) && json.contains(&format!("\"{to}\"")),
            "stage pair {from}->{to} missing from exemplars json: {json}"
        );
    }

    // The trace context must survive the durable store: write the
    // delivered stream out, read it back, and compare stamp-for-stamp —
    // this is the data path `brisk-trace --store` renders waterfalls from.
    let dir = std::env::temp_dir().join(format!("brisk-trace-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_cfg = StoreConfig::at(&dir);
    let mut writer = StoreWriter::open(&store_cfg).unwrap();
    for rec in &got {
        writer.append(rec).unwrap();
    }
    writer.sync().unwrap();
    drop(writer);
    let (replayed, _) = StoreReader::open(&dir).unwrap().read_all().unwrap();
    assert_eq!(replayed.len(), N);
    for (orig, back) in got.iter().zip(&replayed) {
        assert_eq!(orig.trace().unwrap(), back.trace().unwrap());
    }
    let _ = std::fs::remove_dir_all(&dir);

    exs.stop().unwrap();
    ism.stop().unwrap();
}

/// A 1-in-N sampler must trace roughly one record in N — and untraced
/// records must carry no `X_TRACE` field at all (zero wire overhead).
#[test]
fn sampled_tracing_stamps_a_subset_without_touching_the_rest() {
    const N: usize = 1_024;
    const EVERY: u32 = 64;
    let (transport, listener) = {
        let t = MemTransport::new();
        let l = t.listen("ism").unwrap();
        (t, l)
    };
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig {
            poll_period: Duration::from_secs(3600),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    let ism = server.spawn(listener).unwrap();
    let mut reader = ism.memory().reader();
    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig {
        trace: TraceConfig::every(EVERY),
        ..ExsConfig::default()
    };
    let lis = Lis::new(NodeId(7), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(7),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    for i in 0..N {
        assert!(notice!(port, lis.clock(), EventTypeId(1), i as u64));
    }
    let got = wait_for(|| reader.poll().unwrap().0, N, Duration::from_secs(15));
    assert_eq!(got.len(), N);
    let traced = got.iter().filter(|r| r.trace().is_some()).count();
    assert_eq!(
        traced,
        N / EVERY as usize,
        "deterministic sampler fires exactly one in {EVERY}"
    );
    for rec in got.iter().filter(|r| r.trace().is_some()) {
        let stages: Vec<TraceStage> = rec
            .trace()
            .unwrap()
            .stamps()
            .iter()
            .map(|&(s, _)| s)
            .collect();
        assert_eq!(stages, FULL_PATH);
    }
    exs.stop().unwrap();
    ism.stop().unwrap();
}

/// An induced panic must dump a flight recorder that still holds the
/// damage history that preceded it — here, the quarantine events from an
/// undecodable peer.
#[test]
fn flight_dump_on_panic_retains_prior_quarantine_events() {
    let transport = MemTransport::new();
    let server = IsmServer::new(
        IsmConfig {
            protocol_error_budget: 2,
            ..IsmConfig::default()
        },
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    let ism = server.spawn(transport.listen("ism").unwrap()).unwrap();

    // A peer that says a clean hello, then speaks garbage until the ISM
    // hangs up — each bad frame lands in the flight recorder.
    let mut bad = transport.connect("ism").unwrap();
    bad.send(
        &Message::Hello {
            node: NodeId(66),
            version: brisk::proto::VERSION,
        }
        .encode(),
    )
    .unwrap();
    for i in 0..10u8 {
        if bad.send(&[0xDE, 0xAD, i, 0xEF, i]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while ism.quarantine().disconnects() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        ism.quarantine().disconnects() >= 1,
        "peer never quarantined"
    );

    // Induce a panic with the hook installed. The hook prints the dump to
    // stderr; it reads the same global ring we assert on here.
    install_flight_panic_hook();
    let caught = std::panic::catch_unwind(|| panic!("induced: tracing test"));
    assert!(caught.is_err());

    let dump = flight().dump();
    assert!(
        dump.contains("quarantine") && dump.contains("ism.pump"),
        "panic-time dump must retain the quarantine history:\n{dump}"
    );
    assert!(
        dump.contains("quarantine_disconnect"),
        "the disconnect event must be in the dump:\n{dump}"
    );
    let json = flight().to_json();
    assert!(json.contains("\"kind\":\"quarantine\""), "{json}");
    assert!(flight().recorded() >= 3, "per-frame events plus disconnect");

    ism.stop().unwrap();
}
