//! Workspace chaos test: the full pipeline under seeded wire faults.
//!
//! Three nodes share one ISM. One of them speaks through the brisk-net
//! fault plane, which corrupts, truncates and duplicates its frames on a
//! deterministic seeded schedule; one goes silent mid-session; the rest are
//! clean. The ISM must quarantine the faulty connection within its error
//! budget, evict the silent node, and deliver the clean nodes' records
//! exactly once — all while staying up and exporting the damage as
//! Prometheus counters.

use brisk::lis::supervisor::{spawn_exs_supervised, SupervisorConfig};
use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The seeded fault schedule used throughout: heavy enough that a few
/// dozen frames are certain to blow a small error budget.
fn chaos_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        seed,
        corrupt_rate: 0.35,
        truncate_rate: 0.2,
        duplicate_rate: 0.15,
        ..FaultSpec::default()
    }
}

/// A deterministic pool of batch frames for the faulty node to push.
fn scripted_frames(node: u32, count: usize) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let record = EventRecord::new(
                NodeId(node),
                SensorId(0),
                EventTypeId(1),
                i as u64,
                UtcMicros::from_micros(1_000_000 + i as i64),
                vec![Value::I32(i as i32)],
            )
            .unwrap();
            Message::EventBatch {
                node: NodeId(node),
                seq: Some(i as u64 + 1),
                records: vec![record],
            }
            .encode()
        })
        .collect()
}

#[test]
fn seeded_faults_are_quarantined_while_clean_nodes_deliver_exactly_once() {
    let transport = MemTransport::new();
    let registry = Registry::new();
    let mut server = IsmServer::new(
        IsmConfig {
            // Generous against the clean nodes' 500 ms heartbeat default,
            // tight enough that the silent node is evicted within the test.
            node_timeout: Some(Duration::from_secs(2)),
            protocol_error_budget: 4,
            ..IsmConfig::default()
        },
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    server.bind_telemetry(&registry);
    let ism = server.spawn(transport.listen("ism").unwrap()).unwrap();
    let mut reader = ism.memory().reader();

    // Two clean supervised nodes, 500 records each.
    const PER_NODE: usize = 500;
    let mut handles = Vec::new();
    for id in [1u32, 2] {
        let rings = RingSet::new(NodeId(id), 1 << 20);
        let mut port = rings.register();
        let t = Arc::clone(&transport);
        let handle = spawn_exs_supervised(
            NodeId(id),
            Arc::clone(&rings),
            Arc::new(SystemClock),
            Box::new(move || t.connect("ism")),
            ExsConfig {
                flush_timeout: Duration::from_millis(2),
                ..ExsConfig::default()
            },
            SupervisorConfig::default(),
        )
        .unwrap();
        for i in 0..PER_NODE {
            port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i as i32)])
                .unwrap();
        }
        handles.push(handle);
    }

    // The faulty node: a clean Hello (so it reaches its pump), then batch
    // frames through the seeded fault plane until the ISM hangs up on it.
    let fault_stats = FaultStats::new();
    let mut faulty = {
        let raw = transport.connect("ism").unwrap();
        FaultingConnection::wrap(raw, chaos_spec(0xC0FFEE), 0, Arc::clone(&fault_stats))
    };
    faulty
        .send(
            &Message::Hello {
                node: NodeId(3),
                version: brisk::proto::VERSION,
            }
            .encode(),
        )
        .unwrap();
    for frame in scripted_frames(3, 60) {
        if faulty.send(&frame).is_err() {
            break; // the fault plane's kill, or the ISM hung up — both fine
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    // The silent node: says hello, sends one batch, then holds the
    // connection open without another word — a half-open link in miniature.
    let mut silent = transport.connect("ism").unwrap();
    silent
        .send(
            &Message::Hello {
                node: NodeId(4),
                version: brisk::proto::VERSION,
            }
            .encode(),
        )
        .unwrap();
    silent.send(&scripted_frames(4, 1)[0]).unwrap();

    // The faulty connection must be quarantined within the error budget...
    let deadline = Instant::now() + Duration::from_secs(10);
    while ism.quarantine().disconnects() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        ism.quarantine().disconnects() >= 1,
        "the faulty connection must be dropped"
    );
    let quarantined = ism.quarantine().frames();
    assert!(
        quarantined >= 1,
        "undecodable frames must be recorded before the drop"
    );
    assert!(
        !ism.quarantine().samples().is_empty(),
        "quarantine must keep hex-dump samples for diagnosis"
    );
    // ...having tolerated no more than budget + 1 frames from it.
    assert!(
        quarantined <= 5,
        "budget 4 tolerates at most 5 bad frames, saw {quarantined}"
    );

    // ...and the silent node evicted once its timeout lapses.
    let deadline = Instant::now() + Duration::from_secs(10);
    while registry
        .snapshot()
        .counter_total("brisk_ism_evicted_nodes_total")
        == 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }

    // Clean nodes: every record exactly once, fault plane notwithstanding.
    let mut per_node = [0usize; 2];
    let deadline = Instant::now() + Duration::from_secs(20);
    while per_node[0] < PER_NODE && Instant::now() < deadline {
        let (records, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0, "the test's buffer must not overflow");
        for r in &records {
            if let Some(slot) = per_node.get_mut(r.node.raw() as usize - 1) {
                *slot += 1;
            }
        }
        if per_node[0] >= PER_NODE && per_node[1] >= PER_NODE {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Let stragglers (would-be duplicates) land before demanding exactness.
    std::thread::sleep(Duration::from_millis(200));
    let (records, _) = reader.poll().unwrap();
    for r in &records {
        if let Some(slot) = per_node.get_mut(r.node.raw() as usize - 1) {
            *slot += 1;
        }
    }
    assert_eq!(
        per_node,
        [PER_NODE, PER_NODE],
        "clean nodes must deliver exactly once"
    );

    // The damage is visible in the Prometheus export.
    let text = registry.snapshot().to_prometheus();
    for series in [
        "brisk_ism_quarantined_frames_total",
        "brisk_ism_quarantine_disconnects_total",
        "brisk_ism_evicted_nodes_total",
    ] {
        assert!(text.contains(series), "export must carry {series}");
    }
    let snap = registry.snapshot();
    assert!(snap.counter_total("brisk_ism_quarantined_frames_total") >= 1);
    assert!(snap.counter_total("brisk_ism_quarantine_disconnects_total") >= 1);
    assert!(
        snap.counter_total("brisk_ism_evicted_nodes_total") >= 1,
        "the silent node must be evicted"
    );

    for h in handles {
        h.stop().unwrap();
    }
    drop(silent);
    // The ISM is still healthy enough for an orderly shutdown.
    let report = ism.stop().unwrap();
    assert!(report.core.records_in >= (2 * PER_NODE) as u64);
}

/// The fault plane is a deterministic function of `(seed, conn, frames)`:
/// pushing the same frames through two connections wrapped with the same
/// seed must put byte-identical streams on the wire — the property that
/// makes an ISM-side quarantine report replayable.
#[test]
fn same_seed_reproduces_the_fault_sequence_byte_for_byte() {
    fn run(seed: u64) -> (Vec<Vec<u8>>, Vec<(u64, u64)>) {
        let t = MemTransport::new();
        let mut listener = t.listen("sink").unwrap();
        let raw = t.connect("sink").unwrap();
        let mut server = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        let stats = FaultStats::new();
        let mut conn = FaultingConnection::wrap(raw, chaos_spec(seed), 0, Arc::clone(&stats));
        for frame in scripted_frames(9, 40) {
            conn.send(&frame).unwrap();
        }
        drop(conn);
        let mut received = Vec::new();
        while let Ok(Some(frame)) = server.recv(Some(Duration::from_millis(100))) {
            received.push(frame);
        }
        let events = stats
            .events()
            .iter()
            .map(|e| (e.conn, e.frame))
            .collect::<Vec<_>>();
        (received, events)
    }
    let (bytes_a, events_a) = run(42);
    let (bytes_b, events_b) = run(42);
    assert_eq!(events_a, events_b, "fault schedule must be deterministic");
    assert_eq!(bytes_a, bytes_b, "wire bytes must replay identically");
    assert!(!bytes_a.is_empty());
    // A different seed draws a different schedule.
    let (bytes_c, _) = run(43);
    assert_ne!(bytes_a, bytes_c, "distinct seeds must differ");
}
