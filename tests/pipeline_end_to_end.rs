//! Workspace integration tests: the full LIS → TP → ISM → consumer path.

use brisk::core as brisk_core;
use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn wait_for<T>(mut poll: impl FnMut() -> Vec<T>, expect: usize, timeout: Duration) -> Vec<T> {
    let deadline = Instant::now() + timeout;
    let mut got = Vec::new();
    while got.len() < expect && Instant::now() < deadline {
        got.extend(poll());
        std::thread::sleep(Duration::from_millis(5));
    }
    got
}

fn start_mem_ism(sync_period: Duration) -> (brisk::ism::IsmHandle, Arc<MemTransport>) {
    start_mem_ism_with(sync_period, IsmConfig::default())
}

fn start_mem_ism_with(
    sync_period: Duration,
    ism_cfg: IsmConfig,
) -> (brisk::ism::IsmHandle, Arc<MemTransport>) {
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let server = IsmServer::new(
        ism_cfg,
        SyncConfig {
            poll_period: sync_period,
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    (server.spawn(listener).unwrap(), transport)
}

#[test]
fn single_node_events_arrive_sorted_and_complete() {
    let (ism, transport) = start_mem_ism(Duration::from_secs(3600));
    let mut reader = ism.memory().reader();
    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    for i in 0..1_000i32 {
        assert!(notice!(
            port,
            lis.clock(),
            EventTypeId(2),
            i,
            i as f64 / 3.0
        ));
    }
    let got = wait_for(|| reader.poll().unwrap().0, 1_000, Duration::from_secs(10));
    assert_eq!(got.len(), 1_000);
    assert!(got.windows(2).all(|w| w[0].ts <= w[1].ts));
    // Payload integrity end to end.
    for (i, rec) in got.iter().enumerate() {
        assert_eq!(rec.node, NodeId(1));
        assert_eq!(rec.event_type, EventTypeId(2));
        assert_eq!(rec.seq, i as u64);
        assert_eq!(rec.fields[0], Value::I32(i as i32));
        assert_eq!(rec.fields[1], Value::F64(i as f64 / 3.0));
    }
    exs.stop().unwrap();
    let report = ism.stop().unwrap();
    assert_eq!(report.core.records_in, 1_000);
    assert_eq!(report.core.records_out, 1_000);
}

#[test]
fn eight_nodes_merge_into_one_sorted_stream() {
    // Perfect output order is only guaranteed when the time frame T covers
    // the worst-case delivery skew (here: the 40 ms flush timeout) — the
    // ordering/latency trade-off of §3.6. Pin T above it.
    let ism_cfg = IsmConfig {
        sorter: brisk_core::SorterConfig {
            initial_frame_us: 80_000,
            min_frame_us: 80_000,
            max_frame_us: 200_000,
            ..brisk_core::SorterConfig::default()
        },
        ..IsmConfig::default()
    };
    let (ism, transport) = start_mem_ism_with(Duration::from_secs(3600), ism_cfg);
    let mut reader = ism.memory().reader();
    const NODES: u32 = 8;
    const PER_NODE: usize = 500;
    let mut handles = Vec::new();
    let mut workers = Vec::new();
    for n in 0..NODES {
        let clock = Arc::new(SystemClock);
        let cfg = ExsConfig::default();
        let lis = Lis::new(NodeId(n), Arc::clone(&clock), &cfg);
        let exs = spawn_exs(
            NodeId(n),
            Arc::clone(lis.rings()),
            clock,
            transport.connect("ism").unwrap(),
            cfg,
        )
        .unwrap();
        handles.push(exs);
        let mut port = lis.register();
        let clock = Arc::clone(lis.clock());
        workers.push(std::thread::spawn(move || {
            for i in 0..PER_NODE {
                notice!(port, clock, EventTypeId(1), i as u32);
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    let expect = NODES as usize * PER_NODE;
    let got = wait_for(|| reader.poll().unwrap().0, expect, Duration::from_secs(20));
    assert_eq!(got.len(), expect);
    // Sorted overall; per-node sequence order intact.
    assert!(got.windows(2).all(|w| w[0].ts <= w[1].ts));
    for n in 0..NODES {
        let seqs: Vec<u64> = got
            .iter()
            .filter(|r| r.node == NodeId(n))
            .map(|r| r.seq)
            .collect();
        assert_eq!(seqs.len(), PER_NODE);
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }
    for h in handles {
        h.stop().unwrap();
    }
    ism.stop().unwrap();
}

#[test]
fn skewed_node_clock_is_pulled_in_by_sync() {
    // Two nodes; node 1's clock starts 5 ms ahead. With a fast sync period
    // the ISM's master drives the laggard's correction value toward the
    // most-ahead clock, so the corrections observed must be positive and
    // the gap between the two corrected clocks must shrink.
    let (ism, transport) = start_mem_ism(Duration::from_millis(100));
    let src = SimTimeSource::starting_at(UtcMicros::now());
    // Keep the simulated source tracking real time so timeouts fire.
    let tick_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ticker = {
        let src = src.clone();
        let stop = Arc::clone(&tick_stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                src.advance_by(1_000);
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };
    let ahead = Arc::new(SimClock::new(src.clone(), 5_000, 0.0, 1));
    let behind = Arc::new(SimClock::new(src.clone(), 0, 0.0, 1));
    let cfg = ExsConfig::default();
    let lis_a = Lis::new(NodeId(0), Arc::clone(&ahead), &cfg);
    let lis_b = Lis::new(NodeId(1), Arc::clone(&behind), &cfg);
    let exs_a = spawn_exs(
        NodeId(0),
        Arc::clone(lis_a.rings()),
        ahead.clone(),
        transport.connect("ism").unwrap(),
        cfg.clone(),
    )
    .unwrap();
    let exs_b = spawn_exs(
        NodeId(1),
        Arc::clone(lis_b.rings()),
        behind.clone(),
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();

    // Wait for a few sync rounds.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let gap = (ahead.now().as_micros() + exs_a.corrected_clock().correction_us())
            - (behind.now().as_micros() + exs_b.corrected_clock().correction_us());
        if gap.abs() < 1_000 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let corr_b = exs_b.corrected_clock().correction_us();
    let corr_a = exs_a.corrected_clock().correction_us();
    assert!(
        corr_a >= 0 && corr_b >= 0,
        "BRISK only advances: {corr_a} {corr_b}"
    );
    assert!(
        corr_b > 3_000,
        "behind clock must have been advanced, correction = {corr_b}"
    );
    tick_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    ticker.join().unwrap();
    exs_a.stop().unwrap();
    exs_b.stop().unwrap();
    let report = ism.stop().unwrap();
    assert!(report.sync_rounds >= 1);
}

#[test]
fn tcp_pipeline_with_picl_and_visual_outputs() {
    use parking_lot::Mutex;
    let mut server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    let picl_path = std::env::temp_dir().join("brisk_it_tcp.picl");
    let file = std::fs::File::create(&picl_path).unwrap();
    server.core_mut().add_sink(Box::new(
        PiclFileSink::new(Box::new(file), TsMode::Utc).unwrap(),
    ));
    let counter = EventCounter::new();
    let counts = counter.counts();
    let registry = Arc::new(Mutex::new(VisualObjectRegistry::new()));
    registry.lock().register(Box::new(counter));
    server
        .core_mut()
        .add_sink(Box::new(VisualObjectSink::new(registry, TsMode::Utc)));

    let transport = TcpTransport;
    let listener = transport.listen("127.0.0.1:0").unwrap();
    let ism = server.spawn(listener).unwrap();
    let addr = ism.addr().to_string();
    let mut reader = ism.memory().reader();

    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(9), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(9),
        Arc::clone(lis.rings()),
        clock,
        transport.connect(&addr).unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    for i in 0..300u32 {
        notice!(port, lis.clock(), EventTypeId(4), i);
    }
    let got = wait_for(|| reader.poll().unwrap().0, 300, Duration::from_secs(10));
    assert_eq!(got.len(), 300);
    exs.stop().unwrap();
    ism.stop().unwrap();

    assert_eq!(counts.lock()[&9], 300);
    let text = std::fs::read_to_string(&picl_path).unwrap();
    let parsed = brisk::picl::read_trace(text.as_bytes()).unwrap();
    assert_eq!(parsed.len(), 300);
    assert!(parsed.iter().all(|r| r.node == 9 && r.event == 4));
}

#[test]
fn ring_overflow_shows_up_as_seq_gaps_not_corruption() {
    let (ism, transport) = start_mem_ism(Duration::from_secs(3600));
    let mut reader = ism.memory().reader();
    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig {
        ring_capacity: 2048, // tiny ring: overflow is certain
        ..ExsConfig::default()
    };
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    let mut accepted = 0u64;
    for i in 0..20_000i64 {
        if notice!(port, lis.clock(), EventTypeId(1), i, i * 2, i * 3) {
            accepted += 1;
        }
    }
    assert!(accepted < 20_000, "a 2 KiB ring must overflow");
    let got = wait_for(
        || reader.poll().unwrap().0,
        accepted as usize,
        Duration::from_secs(20),
    );
    assert_eq!(got.len() as u64, accepted, "every accepted record arrives");
    let mut checker = OrderChecker::new();
    for r in &got {
        checker.observe(r);
    }
    assert_eq!(checker.inversions(), 0);
    // Gaps are only observable BETWEEN delivered records; drops after the
    // last delivered one are invisible to the checker, so compare against
    // the highest delivered sequence number.
    let last_seq = got.iter().map(|r| r.seq).max().unwrap();
    assert_eq!(
        checker.seq_gaps(),
        last_seq + 1 - accepted,
        "dropped records are visible as sequence gaps"
    );
    assert!(checker.seq_gaps() > 0);
    exs.stop().unwrap();
    ism.stop().unwrap();
}

#[test]
fn telemetry_accounts_for_every_record_across_the_pipeline() {
    const N: usize = 2_000;
    let registry = Registry::new();

    // ISM side: bind before spawn so the accept loop is metered.
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let mut server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig {
            poll_period: Duration::from_millis(100),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    server.bind_telemetry(&registry);
    let ism = server.spawn(listener).unwrap();
    let mut reader = ism.memory().reader();

    // Node side: rings, notice counter and EXS share the same registry.
    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    lis.rings().bind_telemetry(&registry);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();
    exs.bind_telemetry(&registry);
    let mut port = lis.register();
    port.set_notice_counter(registry.counter("brisk_notices_total", "Notices emitted"));
    for i in 0..N {
        assert!(notice!(port, lis.clock(), EventTypeId(1), i as u64));
    }

    let got = wait_for(|| reader.poll().unwrap().0, N, Duration::from_secs(15));
    assert_eq!(got.len(), N);

    // The Prometheus endpoint serves a scrape-parseable view of the same
    // registry while everything runs.
    let stats = serve_prometheus("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let body = {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(stats.addr()).unwrap();
        s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        resp.split_once("\r\n\r\n").unwrap().1.to_string()
    };
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("unparseable exposition line: {line:?}");
        });
        assert!(series.starts_with("brisk_"), "bad series name in {line:?}");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value in {line:?}"
        );
    }
    for needle in [
        "brisk_ring_produced_total",
        "brisk_exs_records_sent_total",
        "brisk_ism_records_out_total",
        "brisk_ism_e2e_latency_us_bucket",
        "brisk_net_frames_total",
    ] {
        assert!(body.contains(needle), "scrape body missing {needle}");
    }
    stats.stop();

    exs.stop().unwrap();
    let report = ism.stop().unwrap();
    assert_eq!(report.core.records_out as usize, N);

    // Counter identity: every accepted notice is accounted for at every
    // stage, with zero drops anywhere.
    let snap = registry.snapshot();
    let n = N as u64;
    assert_eq!(snap.counter_total("brisk_notices_total"), n);
    assert_eq!(snap.counter_total("brisk_ring_produced_total"), n);
    assert_eq!(snap.counter_total("brisk_ring_consumed_total"), n);
    assert_eq!(snap.counter_total("brisk_ring_dropped_total"), 0);
    assert_eq!(snap.counter_total("brisk_exs_records_drained_total"), n);
    assert_eq!(snap.counter_total("brisk_exs_records_sent_total"), n);
    assert_eq!(snap.counter_total("brisk_ism_records_in_total"), n);
    assert_eq!(snap.counter_total("brisk_ism_records_out_total"), n);
    assert_eq!(snap.counter_total("brisk_ism_memory_written_total"), n);
    assert_eq!(
        snap.gauge("brisk_ring_occupancy_bytes"),
        Some(0),
        "all drained"
    );
    assert!(snap.gauge("brisk_ring_capacity_bytes").unwrap() > 0);

    // Batching: every batch is counted once, with a flush reason.
    let batches = snap.counter_total("brisk_exs_batches_sent_total");
    assert!(batches >= 1);
    assert_eq!(snap.counter_total("brisk_exs_flush_total"), batches);
    let batch_hist = snap.histogram("brisk_exs_batch_records").unwrap();
    assert_eq!(batch_hist.count(), batches);
    assert_eq!(batch_hist.sum, n);

    // Stage latency distributions are well-formed.
    let e2e = snap.histogram("brisk_ism_e2e_latency_us").unwrap();
    assert_eq!(e2e.count(), n);
    assert!(e2e.p50() <= e2e.p99());
    assert!(
        e2e.p99() <= e2e.max.max(1) * 2,
        "quantiles bounded by max bucket"
    );
    let drains = snap.histogram("brisk_exs_drain_us").unwrap();
    assert!(drains.count() >= 1);

    // Sorter / queue gauges were bound (instantaneous values are
    // whatever the final tick left behind, but the series must exist).
    assert!(snap.gauge("brisk_ism_sorter_frame_us").is_some());
    assert!(snap.gauge("brisk_ism_sorter_depth").is_some());
    assert_eq!(snap.gauge("brisk_ism_manager_queue_depth"), Some(0));

    // Connection metering saw the Hello plus at least one batch frame.
    assert!(
        snap.counter_labeled("brisk_net_frames_total", &[("role", "ism"), ("dir", "in")])
            .unwrap()
            > batches
    );
}

#[cfg(unix)]
#[test]
fn unix_socket_pipeline_end_to_end() {
    use brisk::net::UdsTransport;
    let sock = std::env::temp_dir().join(format!("brisk-it-{}.sock", std::process::id()));
    let transport = UdsTransport;
    let listener = transport.listen(sock.to_str().unwrap()).unwrap();
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    let ism = server.spawn(listener).unwrap();
    let mut reader = ism.memory().reader();
    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(4), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(4),
        Arc::clone(lis.rings()),
        clock,
        transport.connect(ism.addr()).unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    for i in 0..400i64 {
        notice!(port, lis.clock(), EventTypeId(2), i, "uds");
    }
    let got = wait_for(|| reader.poll().unwrap().0, 400, Duration::from_secs(10));
    assert_eq!(got.len(), 400);
    assert!(got.windows(2).all(|w| w[0].ts <= w[1].ts));
    exs.stop().unwrap();
    ism.stop().unwrap();
}
