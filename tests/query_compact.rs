//! End-to-end query & compaction over a real store directory: zone-map
//! pruning visible through telemetry counters, shared result caching,
//! background compaction transparency and replay parity.

use brisk::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "brisk-qc-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn store_cfg(dir: &Path) -> StoreConfig {
    let mut cfg = StoreConfig::at(dir.to_path_buf());
    cfg.segment_bytes = 4096;
    cfg.fsync = FsyncPolicy::Never;
    cfg
}

fn rec(node: u32, sensor: u32, seq: u64, ts: i64) -> EventRecord {
    EventRecord::new(
        NodeId(node),
        SensorId(sensor),
        EventTypeId(1),
        seq,
        UtcMicros::from_micros(ts),
        vec![
            Value::U32(seq as u32),
            Value::U32((seq / 3) as u32),
            Value::I32(-(seq as i32)),
            Value::U32(node),
            Value::U32(sensor),
            Value::I32(7),
        ],
    )
    .unwrap()
}

/// Phase the workload by node over time — each node's records land in
/// their own run of segments — so a node predicate lets zone maps prune
/// most of the store without reading it.
fn write_phased_store(dir: &Path, per_node: u64) {
    let cfg = store_cfg(dir);
    let mut w = StoreWriter::open(&cfg).unwrap();
    let mut seq = 0u64;
    for node in 1..=3u32 {
        for _ in 0..per_node {
            w.append(&rec(node, node * 10, seq, seq as i64 * 10))
                .unwrap();
            seq += 1;
        }
    }
    // Drop seals the active segment and writes its zoned sidecar.
}

#[test]
fn query_prunes_segments_and_counts_in_telemetry() {
    let dir = temp_dir("prune");
    write_phased_store(&dir, 400);
    let registry = Registry::new();
    let mut reader = StoreReader::open(&dir).unwrap();
    reader.bind_telemetry(&registry);

    let pred = Predicate::all().node(1);
    let (hit, report) = reader.query(&pred).unwrap();
    assert_eq!(hit.records.len(), 400, "every node-1 record found");
    assert!(hit.records.iter().all(|r| r.node == NodeId(1)));
    assert!(
        report.segments_pruned > 0,
        "zone maps must prune node-2/node-3 segments, report: {report:?}"
    );
    assert!(
        report.segments_scanned < report.segments_total,
        "a pruned query must not scan the whole store"
    );
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_total("brisk_store_segments_pruned_total"),
        report.segments_pruned as u64,
        "pruning must be visible as a telemetry counter"
    );
    assert_eq!(
        snap.counter_total("brisk_store_segments_scanned_total"),
        report.segments_scanned as u64
    );

    // Sensor-only predicates prune through the bloom filter.
    let (hit, report) = reader.query(&Predicate::all().sensor(30)).unwrap();
    assert_eq!(hit.records.len(), 400);
    assert!(hit.records.iter().all(|r| r.sensor == SensorId(30)));
    assert!(
        report.segments_pruned > 0,
        "bloom pruning, report: {report:?}"
    );

    // A predicate matching nothing prunes everything.
    let (hit, report) = reader.query(&Predicate::all().node(99)).unwrap();
    assert!(hit.records.is_empty());
    assert_eq!(report.segments_scanned, 0, "report: {report:?}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn query_cache_answers_repeats_without_scanning() {
    let dir = temp_dir("cache");
    write_phased_store(&dir, 200);
    let reader = StoreReader::open(&dir)
        .unwrap()
        .with_cache(QueryCache::with_default_capacity());
    let pred = Predicate::all().node(2);
    let (first, r1) = reader.query(&pred).unwrap();
    assert!(!r1.cache_hit);
    let (second, r2) = reader.query(&pred).unwrap();
    assert!(
        r2.cache_hit,
        "identical query over unchanged store must hit"
    );
    assert_eq!(r2.records_matched, r1.records_matched);
    assert_eq!(first.records.len(), second.records.len());

    // Growing the store changes the fingerprint: the stale entry is
    // simply never addressed again.
    {
        let mut w = StoreWriter::open(&store_cfg(&dir)).unwrap();
        w.append(&rec(2, 20, 100_000, 100_000_000)).unwrap();
    }
    let (third, r3) = reader.query(&pred).unwrap();
    assert!(!r3.cache_hit, "store changed, cache must miss");
    assert_eq!(third.records.len(), second.records.len() + 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compaction_shrinks_cold_segments_and_preserves_replay() {
    let dir = temp_dir("compact");
    write_phased_store(&dir, 500);
    let reader = StoreReader::open(&dir).unwrap();
    let (before, _) = reader.read_all().unwrap();
    let size_of = |dir: &PathBuf| -> u64 {
        fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "seg"))
            .map(|e| e.metadata().unwrap().len())
            .sum()
    };
    let bytes_before = size_of(&dir);

    let registry = Registry::new();
    let compactor = Compactor::new(
        &dir,
        CompactConfig {
            keep_hot: 0,
            ..Default::default()
        },
    );
    compactor.bind_telemetry(&registry);
    let report = compactor.run_once().unwrap();
    assert!(report.compacted > 0, "cold segments must be rewritten");
    assert!(
        report.bytes_after * 5 <= report.bytes_before,
        "telemetry-shaped cold segments must shrink at least 5x, report: {report:?}"
    );
    assert!(size_of(&dir) < bytes_before);
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter_total("brisk_store_compactions_total"),
        report.compacted as u64
    );

    // Transparency: the same records, in the same order, through the
    // same reader API.
    let (after, rep) = StoreReader::open(&dir).unwrap().read_all().unwrap();
    assert_eq!(rep.corrupt_frames, 0);
    assert_eq!(after, before, "compaction must be invisible to readers");

    // Replay parity: a replayed compacted store delivers record-for-record
    // what the uncompacted store did.
    let mut replayed = Vec::new();
    let mut sink = |r: &EventRecord| -> Result<()> {
        replayed.push(r.clone());
        Ok(())
    };
    Replayer::flat_out().replay(&after, &mut sink).unwrap();
    assert_eq!(replayed, before);

    // A second pass finds nothing left to do.
    let again = compactor.run_once().unwrap();
    assert_eq!(again.compacted, 0, "already-compact segments are skipped");

    // A writer reopening the compacted store trusts the rebuilt sidecars
    // and keeps appending where it left off.
    {
        let mut w = StoreWriter::open(&store_cfg(&dir)).unwrap();
        assert_eq!(w.stats().idx_rebuilds.load(Ordering::Relaxed), 0);
        w.append(&rec(4, 40, 9_999_999, 999_999_999)).unwrap();
    }
    let (grown, _) = StoreReader::open(&dir).unwrap().read_all().unwrap();
    assert_eq!(grown.len(), before.len() + 1);
    let _ = fs::remove_dir_all(&dir);
}

/// The `brisk-query` binary end to end: select with pruning stats,
/// windowed aggregation, and compaction via the CLI.
#[test]
fn brisk_query_cli_selects_aggregates_and_compacts() {
    use std::process::Command;
    let dir = temp_dir("cli");
    write_phased_store(&dir, 300);
    let bin = env!("CARGO_BIN_EXE_brisk-query");

    let out = Command::new(bin)
        .args([
            dir.to_str().unwrap(),
            "--node",
            "1",
            "--limit",
            "5",
            "--stats",
        ])
        .output()
        .expect("run brisk-query");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 5, "limit respected:\n{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("300 records matched"), "{stderr}");
    assert!(stderr.contains("pruned"), "{stderr}");

    let out = Command::new(bin)
        .args([dir.to_str().unwrap(), "--node", "2", "--window-ms", "1"])
        .output()
        .expect("run brisk-query --window-ms");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.lines().count() > 1, "header plus windows:\n{stdout}");

    let out = Command::new(bin)
        .args([dir.to_str().unwrap(), "--compact", "--keep-hot", "0"])
        .output()
        .expect("run brisk-query --compact");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("compacted "), "{stdout}");

    // The compacted store answers the same query, through the same CLI.
    let out = Command::new(bin)
        .args([dir.to_str().unwrap(), "--node", "1", "--stats"])
        .output()
        .expect("run brisk-query after compaction");
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("300 records matched"),
        "compaction must not change query answers"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn query_through_compacted_store_still_prunes_and_matches() {
    let dir = temp_dir("compact-query");
    write_phased_store(&dir, 400);
    let compactor = Compactor::new(
        &dir,
        CompactConfig {
            keep_hot: 0,
            ..Default::default()
        },
    );
    compactor.run_once().unwrap();
    let reader = StoreReader::open(&dir).unwrap();
    let (hit, report) = reader.query(&Predicate::all().node(3)).unwrap();
    assert_eq!(hit.records.len(), 400);
    assert!(hit.records.iter().all(|r| r.node == NodeId(3)));
    assert!(
        report.segments_pruned > 0,
        "compacted sidecars keep pruning, report: {report:?}"
    );
    // Windowed aggregation over the query result: 400 records 10 µs apart
    // in 1 ms windows → 100 records per window.
    let aggs = windowed_aggregate(&hit.records, 1_000, AggSource::Gaps);
    assert!(!aggs.is_empty());
    assert!(aggs.iter().all(|a| a.count > 0 && a.rate_hz > 0.0));
    let _ = fs::remove_dir_all(&dir);
}
