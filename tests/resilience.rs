//! Workspace integration tests: failure injection and recovery.

use brisk::lis::supervisor::{spawn_exs_supervised, SupervisorConfig};
use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spawn_ism_tcp() -> brisk::ism::IsmHandle {
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    server
        .spawn(TcpTransport.listen("127.0.0.1:0").unwrap())
        .unwrap()
}

/// A supervised node keeps delivering through an ISM **crash**: the first
/// manager dies abruptly (no orderly `Shutdown`), a replacement binds, and
/// instrumentation resumes without the application noticing. (An orderly
/// `ism.stop()` is honoured rather than retried — that case is covered by
/// the supervisor's unit tests.)
#[test]
fn supervised_node_survives_ism_restart() {
    // Phase-1 "ISM": a bare listener that accepts the node, swallows its
    // traffic for a while, then crashes (drops the socket).
    let crash_listener = TcpTransport.listen("127.0.0.1:0").unwrap();
    let addr1 = crash_listener.local_addr();
    let phase1 = std::thread::spawn(move || {
        let mut listener = crash_listener;
        let mut conn = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        let mut batches = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while batches < 2 && Instant::now() < deadline {
            if let Ok(Some(frame)) = conn.recv(Some(Duration::from_millis(20))) {
                if matches!(Message::decode(&frame), Ok(Message::EventBatch { .. })) {
                    batches += 1;
                }
            }
        }
        batches
        // conn and listener dropped here: the "crash".
    });

    let addr = Arc::new(parking_lot::Mutex::new(addr1));
    let rings = RingSet::new(NodeId(1), 1 << 20);
    let mut port = rings.register();
    let addr2 = Arc::clone(&addr);
    let handle = spawn_exs_supervised(
        NodeId(1),
        Arc::clone(&rings),
        Arc::new(SystemClock),
        Box::new(move || TcpTransport.connect(&addr2.lock())),
        ExsConfig {
            flush_timeout: Duration::from_millis(5),
            ..ExsConfig::default()
        },
        SupervisorConfig {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            max_consecutive_failures: None,
        },
    )
    .unwrap();

    // Feed events until the phase-1 ISM has seen some batches and crashed.
    let mut i = 0i32;
    while !phase1.is_finished() {
        port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
            .unwrap();
        i += 1;
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(phase1.join().unwrap() >= 2, "phase-1 ISM saw traffic");

    // Phase 2: a real replacement ISM appears; the supervisor reconnects.
    let ism2 = spawn_ism_tcp();
    *addr.lock() = ism2.addr().to_string();
    let mut reader2 = ism2.memory().reader();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got2 = 0;
    let mut next = 100_000i32;
    while got2 < 100 && Instant::now() < deadline {
        // Keep emitting: some land while disconnected (buffered/dropped),
        // later ones flow once the new connection is up.
        for _ in 0..10 {
            port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(next)])
                .unwrap();
            next += 1;
        }
        got2 += reader2.poll().unwrap().0.len();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(got2 >= 100, "new ISM must receive records, got {got2}");
    assert!(handle.connects() >= 2, "a reconnect must have happened");

    let stats = handle.stop().unwrap();
    assert!(stats.reconnects >= 1);
    ism2.stop().unwrap();
}

/// A client that speaks garbage at the ISM is dropped without taking the
/// server down; well-behaved clients are unaffected.
#[test]
fn ism_survives_malformed_clients() {
    let ism = spawn_ism_tcp();
    let addr = ism.addr().to_string();
    let mut reader = ism.memory().reader();

    // Garbage client 1: junk instead of Hello.
    let mut bad1 = TcpTransport.connect(&addr).unwrap();
    bad1.send(b"this is not xdr").unwrap();

    // Garbage client 2: valid Hello, then a corrupt frame.
    let mut bad2 = TcpTransport.connect(&addr).unwrap();
    bad2.send(
        &Message::Hello {
            node: NodeId(66),
            version: brisk::proto::VERSION,
        }
        .encode(),
    )
    .unwrap();
    bad2.send(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4]).unwrap();

    // A good node still works end to end.
    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        TcpTransport.connect(&addr).unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    for i in 0..200i32 {
        notice!(port, lis.clock(), EventTypeId(1), i);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = 0;
    while got < 200 && Instant::now() < deadline {
        got += reader.poll().unwrap().0.len();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(got, 200);
    exs.stop().unwrap();
    let report = ism.stop().unwrap();
    assert_eq!(
        report.core.records_in, 200,
        "only the good node's records count"
    );
}

/// Slow consumers observe bounded memory: the ISM memory buffer evicts
/// oldest records and reports the loss explicitly.
#[test]
fn slow_consumer_sees_explicit_loss_not_unbounded_memory() {
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    // Note: IsmServer's default memory buffer is sized generously; build a
    // separate small MemoryBuffer through the core API instead.
    let ism = server.spawn(listener).unwrap();
    let mut lazy_reader = ism.memory().reader();

    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    const N: i32 = 5_000;
    for i in 0..N {
        notice!(port, lis.clock(), EventTypeId(1), i, i * 2, i * 3);
    }
    // Wait for delivery without reading (the lazy consumer sleeps).
    let deadline = Instant::now() + Duration::from_secs(15);
    while ism.memory().written() < N as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(ism.memory().written(), N as u64);
    // Whatever happened, records read + missed must equal records written.
    let (records, missed) = lazy_reader.poll().unwrap();
    assert_eq!(records.len() as u64 + missed, N as u64);
    exs.stop().unwrap();
    ism.stop().unwrap();
}
