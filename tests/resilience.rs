//! Workspace integration tests: failure injection and recovery.

use brisk::lis::supervisor::{spawn_exs_supervised, SupervisorConfig};
use brisk::net::LinkModel;
use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn spawn_ism_tcp() -> brisk::ism::IsmHandle {
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    server
        .spawn(TcpTransport.listen("127.0.0.1:0").unwrap())
        .unwrap()
}

/// A supervised node keeps delivering through an ISM **crash**: the first
/// manager dies abruptly (no orderly `Shutdown`), a replacement binds, and
/// instrumentation resumes without the application noticing — with **zero**
/// record loss. The phase-1 ISM never acknowledges anything, so every batch
/// it swallowed is still in the retransmit window, carried across the
/// restart and replayed to the replacement. (An orderly `ism.stop()` is
/// honoured rather than retried — that case is covered by the supervisor's
/// unit tests.)
#[test]
fn supervised_node_survives_ism_restart() {
    // Phase-1 "ISM": a bare listener that accepts the node, swallows its
    // traffic for a while, then crashes (drops the socket).
    let crash_listener = TcpTransport.listen("127.0.0.1:0").unwrap();
    let addr1 = crash_listener.local_addr();
    let phase1 = std::thread::spawn(move || {
        let mut listener = crash_listener;
        let mut conn = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        let mut batches = 0;
        let deadline = Instant::now() + Duration::from_secs(5);
        while batches < 2 && Instant::now() < deadline {
            if let Ok(Some(frame)) = conn.recv(Some(Duration::from_millis(20))) {
                if matches!(Message::decode(&frame), Ok(Message::EventBatch { .. })) {
                    batches += 1;
                }
            }
        }
        batches
        // conn and listener dropped here: the "crash".
    });

    let addr = Arc::new(parking_lot::Mutex::new(addr1));
    let rings = RingSet::new(NodeId(1), 1 << 20);
    let mut port = rings.register();
    let addr2 = Arc::clone(&addr);
    let handle = spawn_exs_supervised(
        NodeId(1),
        Arc::clone(&rings),
        Arc::new(SystemClock),
        Box::new(move || TcpTransport.connect(&addr2.lock())),
        ExsConfig {
            flush_timeout: Duration::from_millis(5),
            ..ExsConfig::default()
        },
        SupervisorConfig {
            initial_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(50),
            max_consecutive_failures: None,
        },
    )
    .unwrap();

    // Feed events until the phase-1 ISM has seen some batches and crashed.
    let mut i = 0i32;
    while !phase1.is_finished() {
        port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
            .unwrap();
        i += 1;
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(phase1.join().unwrap() >= 2, "phase-1 ISM saw traffic");

    // Phase 2: a real replacement ISM appears; the supervisor reconnects,
    // replays the carried window (phase 1 never acked, so everything it saw
    // is still retained), and new records flow. Some of the phase-2 records
    // below are emitted while still disconnected — they wait in the ring.
    let ism2 = spawn_ism_tcp();
    *addr.lock() = ism2.addr().to_string();
    for _ in 0..500 {
        port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
            .unwrap();
        i += 1;
    }
    let produced = i as u64;
    let deadline = Instant::now() + Duration::from_secs(15);
    while ism2.memory().written() < produced && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(handle.connects() >= 2, "a reconnect must have happened");

    let stats = handle.stop().unwrap();
    assert!(stats.reconnects >= 1);
    assert!(
        stats.exs.batches_retransmitted >= 1,
        "the carried window must have replayed phase-1 batches"
    );
    // Zero loss *and* zero duplicates: every record emitted since the very
    // start — including those the crashed ISM swallowed unacknowledged —
    // is in the replacement's memory buffer exactly once.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        ism2.memory().written(),
        produced,
        "exactly-once delivery across the crash"
    );
    let report = ism2.stop().unwrap();
    assert_eq!(report.core.records_in, produced);
}

/// Tentpole end-to-end: a link that abruptly dies every few frames (both
/// directions, like a TCP reset) must not lose **or duplicate** a single
/// record. The supervised EXS carries its retransmit window across each
/// reconnect and replays; the ISM deduplicates by `(node, seq)`; the
/// sinks see the produced stream exactly once.
#[test]
fn flaky_link_delivers_every_record_exactly_once() {
    // The kill threshold must comfortably exceed the deepest unacked
    // backlog the EXS can accumulate (one emission burst, below): a replay
    // longer than the link's lifetime could never complete. Real links die
    // at random times, not on a deterministic frame count, so that
    // degenerate schedule is an artifact of the fault model — but the
    // bound keeps the test deterministic.
    let transport = MemTransport::with_model(LinkModel {
        kill_after_frames: Some(60),
        ..LinkModel::ideal()
    });
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    let ism = server.spawn(transport.listen("ism").unwrap()).unwrap();

    let rings = RingSet::new(NodeId(7), 1 << 20);
    let mut port = rings.register();
    let t2 = Arc::clone(&transport);
    let handle = spawn_exs_supervised(
        NodeId(7),
        Arc::clone(&rings),
        Arc::new(SystemClock),
        Box::new(move || t2.connect("ism")),
        ExsConfig {
            max_batch_records: 8,
            flush_timeout: Duration::from_millis(2),
            ..ExsConfig::default()
        },
        SupervisorConfig {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            max_consecutive_failures: None,
        },
    )
    .unwrap();

    // Bursty emission: within a burst the EXS sends frames back-to-back,
    // so a kill landing mid-burst leaves delivered-but-unacked batches in
    // the window — exactly the case that used to duplicate (or, pre-window,
    // silently vanish). The pause between bursts lets the EXS drain its
    // ack backlog so the window depth stays far below the kill threshold.
    const N: i32 = 2_000;
    for i in 0..N {
        port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
            .unwrap();
        if i % 50 == 49 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let deadline = Instant::now() + Duration::from_secs(30);
    while ism.memory().written() < N as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = handle.stop().unwrap();
    assert!(
        stats.connects >= 2,
        "the link kill must have forced reconnects, connects = {}",
        stats.connects
    );
    assert!(
        stats.exs.batches_retransmitted >= 1,
        "reconnects must have replayed the window"
    );
    // Let any straggling (would-be duplicate) deliveries settle, then
    // demand exactness: delivered == produced, nothing lost, nothing
    // double-counted.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        ism.memory().written(),
        N as u64,
        "exactly-once delivery over the flaky link"
    );
    let report = ism.stop().unwrap();
    assert_eq!(report.core.records_in, N as u64);
    assert!(
        report.core.duplicate_batches >= 1,
        "replay over a killed-mid-burst link must exercise the dedup path"
    );
    assert!(report.core.duplicate_records >= 1);
}

/// A client that speaks garbage at the ISM is dropped without taking the
/// server down; well-behaved clients are unaffected.
#[test]
fn ism_survives_malformed_clients() {
    let ism = spawn_ism_tcp();
    let addr = ism.addr().to_string();
    let mut reader = ism.memory().reader();

    // Garbage client 1: junk instead of Hello.
    let mut bad1 = TcpTransport.connect(&addr).unwrap();
    bad1.send(b"this is not xdr").unwrap();

    // Garbage client 2: valid Hello, then a corrupt frame.
    let mut bad2 = TcpTransport.connect(&addr).unwrap();
    bad2.send(
        &Message::Hello {
            node: NodeId(66),
            version: brisk::proto::VERSION,
        }
        .encode(),
    )
    .unwrap();
    bad2.send(&[0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4]).unwrap();

    // A good node still works end to end.
    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        TcpTransport.connect(&addr).unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    for i in 0..200i32 {
        notice!(port, lis.clock(), EventTypeId(1), i);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut got = 0;
    while got < 200 && Instant::now() < deadline {
        got += reader.poll().unwrap().0.len();
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(got, 200);
    exs.stop().unwrap();
    let report = ism.stop().unwrap();
    assert_eq!(
        report.core.records_in, 200,
        "only the good node's records count"
    );
}

/// Slow consumers observe bounded memory: the ISM memory buffer evicts
/// oldest records and reports the loss explicitly.
#[test]
fn slow_consumer_sees_explicit_loss_not_unbounded_memory() {
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    // Note: IsmServer's default memory buffer is sized generously; build a
    // separate small MemoryBuffer through the core API instead.
    let ism = server.spawn(listener).unwrap();
    let mut lazy_reader = ism.memory().reader();

    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();
    let mut port = lis.register();
    const N: i32 = 5_000;
    for i in 0..N {
        notice!(port, lis.clock(), EventTypeId(1), i, i * 2, i * 3);
    }
    // Wait for delivery without reading (the lazy consumer sleeps).
    let deadline = Instant::now() + Duration::from_secs(15);
    while ism.memory().written() < N as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(ism.memory().written(), N as u64);
    // Whatever happened, records read + missed must equal records written.
    let (records, missed) = lazy_reader.poll().unwrap();
    assert_eq!(records.len() as u64 + missed, N as u64);
    exs.stop().unwrap();
    ism.stop().unwrap();
}

/// Credit accounting stays consistent across a link kill + window replay:
/// the grant in each incarnation's `HelloAck` is **authoritative** — the
/// replayed (already-sent, never-acked) window must not inflate the budget
/// the EXS believes it has, the exported balance (grant − unacked) never
/// exceeds the grant, and once the manager has acked everything the
/// balance converges back to the full grant. Guards the reactor rewrite
/// against reintroducing the post-reconnect credit stall: if carry-over
/// double-counted (or the fresh grant were ignored), the EXS would either
/// overrun the ISM's budget or wedge with ring backlog it refuses to send.
#[test]
fn credit_grant_stays_authoritative_across_reconnect_replay() {
    const CREDIT: u64 = 256;
    let transport = MemTransport::with_model(LinkModel {
        kill_after_frames: Some(60),
        ..LinkModel::ideal()
    });
    let mut server = IsmServer::new(
        IsmConfig {
            flow: FlowConfig {
                credit_records: CREDIT,
                ..FlowConfig::default()
            },
            ..IsmConfig::default()
        },
        SyncConfig {
            poll_period: Duration::from_secs(60),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    let registry = Registry::new();
    server.bind_telemetry(&registry);
    let ism = server.spawn(transport.listen("ism").unwrap()).unwrap();

    let rings = RingSet::new(NodeId(9), 1 << 20);
    let mut port = rings.register();
    let t2 = Arc::clone(&transport);
    let handle = spawn_exs_supervised(
        NodeId(9),
        Arc::clone(&rings),
        Arc::new(SystemClock),
        Box::new(move || t2.connect("ism")),
        ExsConfig {
            max_batch_records: 8,
            flush_timeout: Duration::from_millis(2),
            ..ExsConfig::default()
        },
        SupervisorConfig {
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(10),
            max_consecutive_failures: None,
        },
    )
    .unwrap();
    handle.bind_telemetry(&registry);

    // Bursty emission (as in the flaky-link test) so kills land with
    // delivered-but-unacked batches in the window, forcing replay while
    // credit accounting is mid-flight. Sample the exported balance the
    // whole way: `grant − unacked` may go negative while a replayed
    // backlog exceeds the fresh grant, but it must never exceed the grant
    // itself — that would mean the EXS invented credit the ISM never gave.
    const N: i32 = 2_000;
    let mut sampled = 0u64;
    for i in 0..N {
        port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
            .unwrap();
        if i % 50 == 49 {
            if let Some(bal) = registry.snapshot().gauge("brisk_exs_credit_balance") {
                assert!(
                    bal <= CREDIT as i64,
                    "balance {bal} exceeds the authoritative grant {CREDIT}"
                );
                sampled += 1;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    assert!(sampled >= 10, "the balance gauge must have been live");

    // No stall: every record must land despite kills mid-replay.
    let deadline = Instant::now() + Duration::from_secs(30);
    while ism.memory().written() < N as u64 && Instant::now() < deadline {
        if let Some(bal) = registry.snapshot().gauge("brisk_exs_credit_balance") {
            assert!(bal <= CREDIT as i64, "balance {bal} exceeds grant {CREDIT}");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        ism.memory().written(),
        N as u64,
        "credit accounting stalled the pipeline after reconnect"
    );

    // Convergence: once the manager acks the tail (replaying again if the
    // final ack was lost to a kill), unacked drains to zero and the
    // balance returns to exactly the HelloAck grant.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let bal = registry
            .snapshot()
            .gauge("brisk_exs_credit_balance")
            .unwrap_or(i64::MIN);
        if bal == CREDIT as i64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "balance never converged to the grant: {bal} != {CREDIT}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let stats = handle.stop().unwrap();
    assert!(
        stats.connects >= 2,
        "the link kill must have forced reconnects, connects = {}",
        stats.connects
    );
    assert!(
        stats.exs.hello_acks >= 2,
        "each incarnation must have received an authoritative grant"
    );
    assert!(
        stats.exs.batches_retransmitted >= 1,
        "reconnects must have replayed the window"
    );
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        ism.memory().written(),
        N as u64,
        "replay must stay exactly-once under credit"
    );
    let report = ism.stop().unwrap();
    assert_eq!(report.core.records_in, N as u64);
    assert!(
        report.core.duplicate_batches >= 1,
        "a lost-ack replay must exercise dedup, or the test saw no real kill"
    );
}
