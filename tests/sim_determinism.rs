//! The simulation substrate is exactly reproducible: identical seeds give
//! identical reports. This is a workspace-level guarantee the experiment
//! harness depends on, so it gets its own integration test.

use brisk::sim::{
    run_causal_experiment, run_sorting_experiment, ArrivalProcess, CausalConfig, DelayModel,
    SortingConfig, SyncSimConfig, SyncSimulation,
};
use std::time::Duration;

#[test]
fn sync_simulation_is_bit_reproducible() {
    let cfg = SyncSimConfig {
        duration: Duration::from_secs(60),
        ..SyncSimConfig::default()
    };
    let a = SyncSimulation::new(cfg.clone()).run().unwrap();
    let b = SyncSimulation::new(cfg).run().unwrap();
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.corrections, b.corrections);
    assert_eq!(a.total_advance_us, b.total_advance_us);
}

#[test]
fn sorting_experiment_is_bit_reproducible_across_processes() {
    let cfg = SortingConfig {
        nodes: 3,
        events_per_node: 1_000,
        arrivals: ArrivalProcess::Poisson { rate_hz: 2_000.0 },
        delay: DelayModel::disturbed_lan(),
        ..SortingConfig::default()
    };
    let a = run_sorting_experiment(&cfg).unwrap();
    let b = run_sorting_experiment(&cfg).unwrap();
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.inversions, b.inversions);
    assert_eq!(a.max_added_latency_us, b.max_added_latency_us);
    assert_eq!(a.mean_added_latency_us, b.mean_added_latency_us);
    assert_eq!(a.final_frame_us, b.final_frame_us);
}

#[test]
fn causal_experiment_is_bit_reproducible() {
    let cfg = CausalConfig {
        exchanges: 500,
        ..CausalConfig::default()
    };
    let a = run_causal_experiment(&cfg).unwrap();
    let b = run_causal_experiment(&cfg).unwrap();
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.repaired_tachyons, b.repaired_tachyons);
    assert_eq!(a.visible_tachyons, b.visible_tachyons);
}

#[test]
fn different_seeds_actually_differ() {
    let base = SortingConfig {
        nodes: 3,
        events_per_node: 1_000,
        ..SortingConfig::default()
    };
    let mut other = base.clone();
    other.seed ^= 0xdead_beef;
    let a = run_sorting_experiment(&base).unwrap();
    let b = run_sorting_experiment(&other).unwrap();
    // Same totals (conservation), different dynamics.
    assert_eq!(a.delivered, b.delivered);
    assert_ne!(
        (a.inversions, a.mean_added_latency_us.to_bits()),
        (b.inversions, b.mean_added_latency_us.to_bits())
    );
}

/// Cross-scenario sanity: every arrival process conserves records through
/// the sorter.
#[test]
fn every_arrival_process_conserves_records() {
    for arrivals in [
        ArrivalProcess::Uniform {
            rate_hz: 1_000.0,
            jitter: 0.0,
        },
        ArrivalProcess::Uniform {
            rate_hz: 1_000.0,
            jitter: 0.9,
        },
        ArrivalProcess::Poisson { rate_hz: 5_000.0 },
        ArrivalProcess::Bursty {
            rate_hz: 1_000.0,
            burst_size: 32,
            intra_gap_us: 2,
        },
        ArrivalProcess::Phased {
            rates_hz: vec![5_000.0, 200.0],
            phase_us: 50_000,
        },
    ] {
        let cfg = SortingConfig {
            nodes: 2,
            events_per_node: 800,
            arrivals: arrivals.clone(),
            ..SortingConfig::default()
        };
        let r = run_sorting_experiment(&cfg).unwrap();
        assert_eq!(r.delivered, 1_600, "lost records under {arrivals:?}");
    }
}
