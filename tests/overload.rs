//! Workspace integration tests: credit-based flow control under overload.
//!
//! Fault model: the ISM's consumer stalls (a sink that blocks the manager
//! thread), so the manager stops draining. The v3 credit budget and the
//! bounded pump→manager queue must turn that into backpressure that reaches
//! the EXS — bounded residency everywhere — and the whole pipeline must
//! resume without loss or deadlock once the consumer recovers.

use brisk::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A sink that blocks the manager thread while the gate is closed.
struct StallingSink(Arc<AtomicBool>);

impl EventSink for StallingSink {
    fn on_record(&mut self, _rec: &EventRecord) -> Result<()> {
        while self.0.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(())
    }
}

const CREDIT: u64 = 1_024;
const QUEUE_BOUND: usize = 128;
const BATCH: usize = 16;

/// While the consumer is stalled, record residency inside the ISM is
/// bounded by the configured credit and queue limits (the excess stays in
/// the EXS rings); when the consumer recovers, every record is delivered
/// exactly once with no deadlock.
#[test]
fn slow_consumer_backpressure_bounds_residency_then_recovers() {
    let transport = MemTransport::new();
    let mut server = IsmServer::new(
        IsmConfig {
            flow: FlowConfig {
                credit_records: CREDIT,
                max_queued_records: QUEUE_BOUND,
                shed_unmarked: false,
            },
            // Release records as soon as they arrive so the stalled sink
            // blocks the manager right away — otherwise the whole backlog
            // would slip into the sorter before the first release.
            sorter: SorterConfig {
                initial_frame_us: 0,
                min_frame_us: 0,
                ..SorterConfig::default()
            },
            ..IsmConfig::default()
        },
        SyncConfig {
            poll_period: Duration::from_secs(60),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    let registry = Registry::new();
    server.bind_telemetry(&registry);
    let stalled = Arc::new(AtomicBool::new(true));
    server
        .core_mut()
        .add_sink(Box::new(StallingSink(Arc::clone(&stalled))));
    let ism = server.spawn(transport.listen("ism").unwrap()).unwrap();

    let rings = RingSet::new(NodeId(1), 1 << 20);
    let mut port = rings.register();
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(&rings),
        Arc::new(SystemClock),
        transport.connect("ism").unwrap(),
        ExsConfig {
            max_batch_records: BATCH,
            flush_timeout: Duration::from_millis(1),
            ..ExsConfig::default()
        },
    )
    .unwrap();
    exs.bind_telemetry(&registry);

    const N: i32 = 5_000;
    for i in 0..N {
        port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
            .unwrap();
    }

    // Overload phase: wait until backpressure is visibly active at both
    // layers — pumps deferring socket reads (queue bound) and the EXS
    // pausing its ring scoops (credit exhausted).
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let snap = registry.snapshot();
        if snap.counter_total("brisk_ism_deferred_reads_total") >= 1
            && snap.counter_total("brisk_exs_credit_deferred_total") >= 1
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backpressure never engaged: {}",
            snap.to_prometheus()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Bounded residency while stalled: the manager queue never held more
    // than the bound plus one in-flight batch per pump, the EXS never had
    // more than its credit unacknowledged, and almost nothing reached the
    // output. The rest of the backlog is still in the SPSC rings.
    let snap = registry.snapshot();
    let high_water = snap
        .gauge("brisk_ism_manager_queue_depth_high_water")
        .unwrap();
    assert!(
        high_water as usize <= QUEUE_BOUND + BATCH,
        "queue high-water {high_water} exceeds bound {QUEUE_BOUND} + one batch"
    );
    assert!(high_water > 0, "the queue must have seen traffic");
    let unacked = exs.stats_now().credit_deferrals;
    assert!(unacked >= 1, "the EXS must have paused on spent credit");
    assert!(
        ism.memory().written() <= CREDIT,
        "records slipped past the stalled sink: {}",
        ism.memory().written()
    );

    // Recovery: open the gate; the pipeline must drain the rings, the
    // queue, and the sorter with no deadlock and exactly-once delivery.
    stalled.store(false, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(30);
    while ism.memory().written() < N as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        ism.memory().written(),
        N as u64,
        "recovery must deliver every record exactly once"
    );

    let stats = exs.stop().unwrap();
    assert_eq!(stats.records_drained, N as u64, "nothing lost in the rings");
    assert!(stats.credit_deferrals >= 1);

    // The whole story is visible in the Prometheus export.
    let snap = registry.snapshot();
    assert!(snap.counter_total("brisk_ism_credit_grants_total") >= 1);
    assert!(
        snap.histogram("brisk_ism_grant_latency_us")
            .unwrap()
            .count()
            >= 1
    );
    assert_eq!(
        snap.counter_total("brisk_ism_shed_total"),
        0,
        "no shedding configured, so nothing may be dropped"
    );
    let text = snap.to_prometheus();
    for series in [
        "brisk_ism_manager_queue_depth_high_water",
        "brisk_ism_deferred_reads_total",
        "brisk_ism_credit_grants_total",
        "brisk_ism_shed_total",
        "brisk_exs_credit_deferred_total",
        "brisk_exs_credit_balance",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }

    let report = ism.stop().unwrap();
    assert_eq!(report.core.records_in, N as u64);
}

/// N scraper threads hammer `/metrics` and `/json` while the pipeline is
/// overloaded and while it recovers: every response must be well-formed,
/// no thread may panic, and the counters each thread observes must be
/// monotonic — scrapes are consistent snapshots, never torn mid-update.
#[test]
fn concurrent_scrapes_are_never_torn_during_overload() {
    const SCRAPERS: usize = 4;
    let transport = MemTransport::new();
    let mut server = IsmServer::new(
        IsmConfig {
            flow: FlowConfig {
                credit_records: CREDIT,
                max_queued_records: QUEUE_BOUND,
                shed_unmarked: false,
            },
            sorter: SorterConfig {
                initial_frame_us: 0,
                min_frame_us: 0,
                ..SorterConfig::default()
            },
            ..IsmConfig::default()
        },
        SyncConfig {
            poll_period: Duration::from_secs(60),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    let registry = Registry::new();
    server.bind_telemetry(&registry);
    let stalled = Arc::new(AtomicBool::new(true));
    server
        .core_mut()
        .add_sink(Box::new(StallingSink(Arc::clone(&stalled))));
    let ism = server.spawn(transport.listen("ism").unwrap()).unwrap();

    let rings = RingSet::new(NodeId(1), 1 << 20);
    let mut port = rings.register();
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(&rings),
        Arc::new(SystemClock),
        transport.connect("ism").unwrap(),
        ExsConfig {
            max_batch_records: BATCH,
            flush_timeout: Duration::from_millis(1),
            ..ExsConfig::default()
        },
    )
    .unwrap();
    exs.bind_telemetry(&registry);
    const N: i32 = 4_000;
    for i in 0..N {
        port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
            .unwrap();
    }

    let stats = serve_prometheus("127.0.0.1:0", Arc::clone(&registry)).unwrap();
    let addr = stats.addr().to_string();
    let done = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..SCRAPERS)
        .map(|_| {
            let addr = addr.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let fetch = |path: &str| -> String {
                    use std::io::{Read, Write};
                    let mut s = std::net::TcpStream::connect(&addr).unwrap();
                    s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
                        .unwrap();
                    let mut resp = String::new();
                    s.read_to_string(&mut resp).unwrap();
                    let (head, body) = resp.split_once("\r\n\r\n").unwrap();
                    assert!(head.starts_with("HTTP/1.0 200"), "bad status: {head}");
                    body.to_string()
                };
                let mut scrapes = 0u64;
                let mut last_sent = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let body = fetch("/metrics");
                    let mut sent = None;
                    for line in body
                        .lines()
                        .filter(|l| !l.starts_with('#') && !l.is_empty())
                    {
                        let (series, value) = line
                            .rsplit_once(' ')
                            .unwrap_or_else(|| panic!("unparseable line {line:?}"));
                        assert!(series.starts_with("brisk_"), "bad series in {line:?}");
                        let v: f64 = value
                            .parse()
                            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
                        let name = series.split('{').next().unwrap_or(series);
                        if name == "brisk_exs_records_sent_total" {
                            *sent.get_or_insert(0) += v as u64;
                        }
                    }
                    // Counters only ever move forward between scrapes.
                    let sent = sent.expect("scrape must include the sent counter");
                    assert!(
                        sent >= last_sent,
                        "counter went backwards: {sent} < {last_sent}"
                    );
                    last_sent = sent;
                    let json = fetch("/json");
                    assert!(
                        json.starts_with('{') && json.ends_with('}'),
                        "torn json body: {json:?}"
                    );
                    scrapes += 1;
                }
                scrapes
            })
        })
        .collect();

    // Hold the stall long enough for the scrapers to see the overloaded
    // state, then recover and drain while they are still hammering.
    let deadline = Instant::now() + Duration::from_secs(10);
    while registry
        .snapshot()
        .counter_total("brisk_exs_credit_deferred_total")
        == 0
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(5));
    }
    stalled.store(false, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(30);
    while ism.memory().written() < N as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(ism.memory().written(), N as u64);

    done.store(true, Ordering::Relaxed);
    for s in scrapers {
        let scrapes = s.join().expect("scraper thread must not panic");
        assert!(scrapes >= 2, "each scraper must complete several rounds");
    }
    stats.stop();
    exs.stop().unwrap();
    ism.stop().unwrap();
}

/// Under sorter memory pressure with the shedding policy on, unmarked
/// records are dropped (and counted) but CRE-marked records are never
/// lost, end to end through the real transport.
#[test]
fn shed_policy_never_drops_cre_marked_records() {
    let transport = MemTransport::new();
    let mut server = IsmServer::new(
        IsmConfig {
            flow: FlowConfig {
                credit_records: 0,
                max_queued_records: 0,
                shed_unmarked: true,
            },
            // A huge frame keeps everything buffered in the sorter so the
            // tiny bound below forces the overload path.
            sorter: SorterConfig {
                initial_frame_us: 1_000_000,
                min_frame_us: 1_000_000,
                max_frame_us: 2_000_000,
                decay_factor: 1.0,
                ..SorterConfig::default()
            },
            max_buffered_records: 64,
            ..IsmConfig::default()
        },
        SyncConfig {
            poll_period: Duration::from_secs(60),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    let registry = Registry::new();
    server.bind_telemetry(&registry);
    let ism = server.spawn(transport.listen("ism").unwrap()).unwrap();
    let mut reader = ism.memory().reader();

    let rings = RingSet::new(NodeId(2), 1 << 20);
    let mut port = rings.register();
    let exs = spawn_exs(
        NodeId(2),
        Arc::clone(&rings),
        Arc::new(SystemClock),
        transport.connect("ism").unwrap(),
        ExsConfig {
            flush_timeout: Duration::from_millis(1),
            ..ExsConfig::default()
        },
    )
    .unwrap();

    // 500 plain records with a CRE-marked one every 25th.
    const N: i32 = 500;
    let mut marked = 0u64;
    for i in 0..N {
        if i % 25 == 0 {
            marked += 1;
            port.emit(
                EventTypeId(2),
                UtcMicros::now(),
                vec![Value::Reason(CorrelationId(i as u64)), Value::I32(i)],
            )
            .unwrap();
        } else {
            port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
                .unwrap();
        }
    }

    // Memory pressure must engage and shed plain records.
    let deadline = Instant::now() + Duration::from_secs(15);
    while registry.snapshot().counter_total("brisk_ism_shed_total") == 0 {
        assert!(Instant::now() < deadline, "shedding never engaged");
        std::thread::sleep(Duration::from_millis(5));
    }

    exs.stop().unwrap();
    let report = ism.stop().unwrap();

    // Every CRE-marked record survived; the losses are all unmarked and
    // all accounted for.
    let (records, missed) = reader.poll().unwrap();
    assert_eq!(missed, 0, "the memory buffer itself must not have evicted");
    let delivered_marked = records.iter().filter(|r| r.is_causally_marked()).count();
    assert_eq!(
        delivered_marked as u64, marked,
        "CRE-marked records are never shed"
    );
    let shed = registry.snapshot().counter_total("brisk_ism_shed_total");
    assert!(shed >= 1, "pressure must have shed unmarked records");
    assert_eq!(
        records.len() as u64 + shed,
        report.core.records_in,
        "released + shed must account for every record the core accepted"
    );
}
