//! Workspace integration tests for the durable trace store: an ISM killed
//! mid-segment under load must lose nothing that was durable, and
//! `brisk-load --replay` must re-drive the stored trace in the exact order
//! the live pipeline delivered it.

use brisk::prelude::*;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "brisk-e2e-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Spawn the real `brisk-ismd` binary with a durable store, parse the bound
/// address off its stderr, and keep draining stderr in the background so
/// the pipe never fills.
fn spawn_ismd(dir: &std::path::Path, extra: &[&str]) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_brisk-ismd"));
    cmd.arg("--tcp")
        .arg("127.0.0.1:0")
        .arg("--store-dir")
        .arg(dir)
        .args(extra)
        .stdin(Stdio::piped()) // held open: ismd stops on stdin EOF
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn brisk-ismd");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let mut addr = None;
    for line in &mut lines {
        let line = line.expect("ismd stderr");
        if let Some(rest) = line.strip_prefix("brisk-ismd listening on ") {
            addr = Some(rest.trim().to_string());
            break;
        }
    }
    let addr = addr.expect("ismd printed its listen address");
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn batch(node: u32, seq: u64, recs: std::ops::Range<u64>) -> Message {
    Message::EventBatch {
        node: NodeId(node),
        seq: Some(seq),
        records: recs
            .map(|i| {
                EventRecord::new(
                    NodeId(node),
                    SensorId(0),
                    EventTypeId(1),
                    i,
                    UtcMicros::now(),
                    vec![Value::U64(i)],
                )
                .unwrap()
            })
            .collect(),
    }
}

/// Block until the ISM's cumulative `BatchAck` covers batch `upto`.
fn await_ack(conn: &mut Box<dyn Connection>, upto: u64, budget: Duration) {
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        if let Ok(Some(frame)) = conn.recv(Some(Duration::from_millis(20))) {
            if let Ok(Message::BatchAck { seq, .. }) = Message::decode(&frame) {
                if seq >= upto {
                    return;
                }
            }
        }
    }
    panic!("no cumulative ack up to batch {upto} within {budget:?}");
}

/// Tentpole e2e: SIGKILL a `brisk-ismd --store-dir --fsync always` process
/// mid-segment while batches are in flight. Reopening the store must
/// recover **every** record that was durable before the kill — with
/// `fsync always` that is every record the sorter had released — with zero
/// CRC-valid records lost, and repair must account for any torn tail.
#[test]
fn killed_ism_loses_no_durable_records() {
    let dir = temp_dir("crash");
    // Tiny segments so the load spans many rotations and the kill lands
    // mid-segment with high probability.
    let (mut child, addr) = spawn_ismd(&dir, &["--fsync", "always", "--segment-bytes", "4096"]);

    let mut conn = TcpTransport.connect(&addr).unwrap();
    conn.send(
        &Message::Hello {
            node: NodeId(1),
            version: brisk::proto::VERSION,
        }
        .encode(),
    )
    .unwrap();

    // Checkpoint phase: 20 acked batches of 50 records, then wait until all
    // 1000 have drained through the sorter onto disk (fsync=always means a
    // record on disk is a record that survives SIGKILL). Batch sequence
    // numbers are 1-based: the dedup window treats seq 0 as already seen.
    const CHECKPOINT: u64 = 1000;
    for b in 0..20u64 {
        conn.send(&batch(1, b + 1, b * 50..(b + 1) * 50).encode())
            .unwrap();
        await_ack(&mut conn, b + 1, Duration::from_secs(5));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (recs, _) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        if recs.len() as u64 >= CHECKPOINT {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "checkpoint records never became durable ({}/{CHECKPOINT})",
            recs.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Load phase: keep batches streaming and kill the manager abruptly
    // (SIGKILL — no orderly shutdown, no seal, no final fsync).
    for b in 20..30u64 {
        conn.send(&batch(1, b + 1, b * 50..(b + 1) * 50).encode())
            .unwrap();
    }
    child.kill().expect("kill ismd");
    child.wait().expect("reap ismd");

    // Recovery: everything CRC-valid on disk is recovered; the checkpoint
    // records are all there exactly once.
    let (recs, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
    assert_eq!(report.corrupt_frames, 0, "no CRC-valid record may be lost");
    let seqs: std::collections::BTreeSet<u64> = recs.iter().map(|r| r.seq).collect();
    assert_eq!(seqs.len(), recs.len(), "no duplicates after the crash");
    for s in 0..CHECKPOINT {
        assert!(seqs.contains(&s), "durable record {s} lost in the crash");
    }

    // Repair-on-reopen: a writer opening the crashed store truncates any
    // torn tail (counted in its stats — the telemetry series the reopened
    // ISM exports) and must preserve every intact record.
    let mut cfg = StoreConfig::at(dir.clone());
    cfg.segment_bytes = 4096;
    cfg.fsync = FsyncPolicy::Always;
    let writer = StoreWriter::open(&cfg).unwrap();
    let repairs = writer
        .stats()
        .torn_tail_truncations
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        repairs,
        u64::from(report.torn_tail_truncations),
        "writer repair and reader scan must agree on torn tails"
    );
    drop(writer);
    let (after, report2) = StoreReader::open(&dir).unwrap().read_all().unwrap();
    assert_eq!(
        after.len(),
        recs.len(),
        "repair must not drop intact records"
    );
    assert_eq!(
        report2.torn_tail_truncations, 0,
        "store is clean after repair"
    );
    assert_eq!(report2.corrupt_frames, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Stale-sidecar crash window e2e: SIGKILL the manager, then simulate the
/// worst seal-window outcome — the sidecar index survived on disk but the
/// tail of its segment's data never did (the sidecar used to be written
/// without fsync, so the reverse was also possible). A reopening writer
/// must distrust the sidecar, rebuild it from the segment bytes, truncate
/// the torn data, and lose nothing that is intact.
#[test]
fn stale_sidecar_after_kill_is_rebuilt_not_trusted() {
    let dir = temp_dir("stale-idx");
    let (mut child, addr) = spawn_ismd(&dir, &["--fsync", "always", "--segment-bytes", "4096"]);
    let mut conn = TcpTransport.connect(&addr).unwrap();
    conn.send(
        &Message::Hello {
            node: NodeId(1),
            version: brisk::proto::VERSION,
        }
        .encode(),
    )
    .unwrap();
    for b in 0..10u64 {
        conn.send(&batch(1, b + 1, b * 50..(b + 1) * 50).encode())
            .unwrap();
        await_ack(&mut conn, b + 1, Duration::from_secs(5));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (recs, _) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        if recs.len() >= 500 {
            break;
        }
        assert!(Instant::now() < deadline, "records never became durable");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("kill ismd");
    child.wait().expect("reap ismd");

    // Engineer the stale-sidecar state on a sealed segment: its index is
    // intact, but part of the segment data it describes vanishes.
    let reader = StoreReader::open(&dir).unwrap();
    let sealed_with_idx = reader
        .segment_ids()
        .unwrap()
        .into_iter()
        .find(|&id| reader.load_index(id).is_some())
        .expect("at least one sealed, indexed segment");
    let seg = brisk::store::segment::segment_path(&dir, sealed_with_idx);
    let len = std::fs::metadata(&seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);
    drop(reader);

    let mut cfg = StoreConfig::at(dir.clone());
    cfg.segment_bytes = 4096;
    cfg.fsync = FsyncPolicy::Always;
    let writer = StoreWriter::open(&cfg).unwrap();
    assert!(
        writer
            .stats()
            .idx_rebuilds
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "the stale sidecar must be detected and rebuilt"
    );
    drop(writer);
    let (recs, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
    assert_eq!(report.torn_tail_truncations, 0, "store clean after repair");
    assert_eq!(report.corrupt_frames, 0);
    let seqs: std::collections::BTreeSet<u64> = recs.iter().map(|r| r.seq).collect();
    assert_eq!(seqs.len(), recs.len(), "no duplicates after repair");
    assert!(recs.len() >= 499, "at most the torn record is lost");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Replay fidelity e2e: run a live pipeline (EXS → ISM with a store),
/// record the live delivery order with an [`OrderChecker`], then re-drive
/// the stored trace through `brisk-load --replay` and demand the identical
/// order-check result — same totals, same inversions, same gaps.
#[test]
fn replay_order_matches_live_order() {
    let dir = temp_dir("replay");
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let cfg = IsmConfig {
        store: StoreConfig::at(dir.clone()),
        ..Default::default()
    };
    let server = IsmServer::new(cfg, SyncConfig::default(), Arc::new(SystemClock)).unwrap();
    let ism = server.spawn(listener).unwrap();
    let mut reader = ism.memory().reader();

    let clock = Arc::new(SystemClock);
    let exs_cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(3), Arc::clone(&clock), &exs_cfg);
    let exs = spawn_exs(
        NodeId(3),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        exs_cfg,
    )
    .unwrap();
    let mut port = lis.register();
    const N: u64 = 2000;
    for i in 0..N {
        notice!(port, lis.clock(), EventTypeId(1), i as i64);
    }

    // Observe the live delivery order exactly as a consumer would.
    let mut live = OrderChecker::new();
    let deadline = Instant::now() + Duration::from_secs(15);
    while live.total() < N && Instant::now() < deadline {
        let (recs, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0, "consumer kept up; nothing evicted");
        for r in &recs {
            live.observe(r);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(live.total(), N, "live pipeline delivered everything");
    exs.stop().unwrap();
    ism.stop().unwrap(); // orderly stop seals the store

    // Re-drive the sealed trace through the real replay binary.
    let out = Command::new(env!("CARGO_BIN_EXE_brisk-load"))
        .arg("--replay")
        .arg(&dir)
        .output()
        .expect("run brisk-load --replay");
    assert!(out.status.success(), "replay exited cleanly");
    let stderr = String::from_utf8_lossy(&out.stderr);
    let check = stderr
        .lines()
        .find(|l| l.contains("order check:"))
        .unwrap_or_else(|| panic!("no order-check line in replay output:\n{stderr}"));
    // "brisk-load: order check: N records, M inversions (rate R), max
    //  inversion U us, G sequence gaps"
    let nums: Vec<u64> = check
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.parse().ok())
        .collect();
    let (total, inversions) = (nums[0], nums[1]);
    let gaps = *nums.last().unwrap();
    assert_eq!(total, live.total(), "replay re-drove every stored record");
    assert_eq!(
        inversions,
        live.inversions(),
        "replay order must equal the live delivery order"
    );
    assert_eq!(gaps, live.seq_gaps(), "same sequence-gap picture on replay");
    let _ = std::fs::remove_dir_all(&dir);
}
