//! `brisk-trace` — render pipeline waterfalls for self-traced records.
//!
//! Companion tool to the `--trace-sample` knob: sampled records carry an
//! `X_TRACE` context that accumulates a timestamp at every pipeline hop
//! (notice → EXS scoop → batch send → pump recv → sorter → delivery).
//! This tool turns those stamps back into something a human can read.
//!
//! ```text
//! brisk-trace --store DIR [TRACE_ID]   # waterfall from a durable store
//! brisk-trace --url HOST:PORT          # slow-bucket exemplars from /trace
//! ```
//!
//! `--store DIR` scans the segments a `brisk-ismd --store-dir DIR` run
//! wrote. Without a `TRACE_ID` it lists the slowest traced records (id +
//! end-to-end span) so you can pick one; with an id (hex or decimal) it
//! renders the full per-stage waterfall.
//!
//! `--url` fetches the live ISM's `/trace` endpoint: per-stage-pair
//! latency histograms whose slow buckets carry *exemplar* trace ids.
//! Feed an exemplar id back into `--store` mode to see where that
//! record's time actually went.

use brisk::prelude::*;
use std::io::{Read as _, Write as _};

/// Width of the waterfall bar column in characters.
const BAR_WIDTH: usize = 40;

fn usage() -> ! {
    eprintln!(
        "usage: brisk-trace --store DIR [TRACE_ID]\n       brisk-trace --url HOST:PORT\n\
         \nTRACE_ID is hex (with or without 0x) or decimal."
    );
    std::process::exit(2);
}

fn parse_trace_id(s: &str) -> Option<u64> {
    let hexish = s.strip_prefix("0x").unwrap_or(s);
    u64::from_str_radix(hexish, 16)
        .ok()
        .or_else(|| s.parse().ok())
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("--store") => {
            let Some(dir) = argv.get(1) else { usage() };
            let id = argv.get(2).map(|s| match parse_trace_id(s) {
                Some(id) => id,
                None => {
                    eprintln!("bad trace id {s:?}");
                    std::process::exit(2);
                }
            });
            store_main(dir, id);
        }
        Some("--url") => {
            let Some(addr) = argv.get(1) else { usage() };
            url_main(addr);
        }
        _ => usage(),
    }
}

/// Scan a durable store for traced records; list them or render one.
fn store_main(dir: &str, id: Option<u64>) {
    let reader = StoreReader::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open store {dir}: {e}");
        std::process::exit(1);
    });
    let (records, report) = reader.read_all().unwrap_or_else(|e| {
        eprintln!("cannot read store {dir}: {e}");
        std::process::exit(1);
    });
    let mut traced: Vec<&EventRecord> = records.iter().filter(|r| r.trace().is_some()).collect();
    eprintln!(
        "brisk-trace: {} records in {} segments, {} traced",
        report.records,
        report.segments,
        traced.len()
    );
    match id {
        Some(id) => {
            let Some(rec) = traced
                .iter()
                .find(|r| r.trace().is_some_and(|c| c.trace_id == id))
            else {
                eprintln!("trace {id:016x} not found in {dir}");
                std::process::exit(1);
            };
            render_waterfall(rec);
        }
        None => {
            // Slowest first: total span across the recorded stamps.
            traced.sort_by_key(|r| std::cmp::Reverse(trace_span_us(r)));
            println!(
                "{:<18} {:>12} {:>8}  record",
                "trace_id", "span_us", "stamps"
            );
            for rec in traced.iter().take(20) {
                let ctx = rec.trace().expect("filtered to traced");
                println!(
                    "{:016x} {:>12} {:>8}  node {} sensor {} seq {}",
                    ctx.trace_id,
                    trace_span_us(rec),
                    ctx.stamps().len(),
                    rec.node.0,
                    rec.sensor.0,
                    rec.seq,
                );
            }
            if traced.len() > 20 {
                println!(
                    "... {} more (pass a TRACE_ID to render one)",
                    traced.len() - 20
                );
            }
        }
    }
}

/// Microseconds between a record's first and last trace stamp.
fn trace_span_us(rec: &EventRecord) -> i64 {
    let Some(ctx) = rec.trace() else { return 0 };
    match (ctx.stamps().first(), ctx.stamps().last()) {
        (Some(&(_, first)), Some(&(_, last))) => last.micros_since(first).max(0),
        _ => 0,
    }
}

/// Render one record's stamps as an indented waterfall.
fn render_waterfall(rec: &EventRecord) {
    let ctx = rec.trace().expect("record must carry a trace");
    let stamps = ctx.stamps();
    let Some(&(_, origin)) = stamps.first() else {
        println!("trace {:016x}: no stamps", ctx.trace_id);
        return;
    };
    let total = trace_span_us(rec).max(1);
    println!(
        "trace {:016x}  node {} sensor {} seq {}  total {total} us",
        ctx.trace_id, rec.node.0, rec.sensor.0, rec.seq
    );
    println!(
        "{:<14} {:>10} {:>10}  waterfall",
        "stage", "at_us", "span_us"
    );
    let mut prev = origin;
    for &(stage, ts) in stamps {
        let at = ts.micros_since(origin).max(0);
        let span = ts.micros_since(prev).max(0);
        // Bar covering [previous stamp, this stamp] on the total span.
        let start = ((at - span) * BAR_WIDTH as i64 / total).min(BAR_WIDTH as i64 - 1) as usize;
        let len = ((span * BAR_WIDTH as i64 + total - 1) / total).max(1) as usize;
        let len = len.min(BAR_WIDTH - start);
        let bar: String = " ".repeat(start) + &"#".repeat(len.max(1));
        println!(
            "{:<14} {at:>10} {span:>10}  |{bar:<BAR_WIDTH$}|",
            stage.name()
        );
        prev = ts;
    }
}

/// Fetch the live `/trace` exemplars over a one-shot HTTP/1.0 GET.
fn url_main(addr: &str) {
    let addr = addr
        .strip_prefix("http://")
        .unwrap_or(addr)
        .trim_end_matches('/');
    let mut stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    stream
        .write_all(format!("GET /trace HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let Some(body) = response.split("\r\n\r\n").nth(1) else {
        eprintln!("malformed HTTP response from {addr}");
        std::process::exit(1);
    };
    println!("{body}");
    eprintln!(
        "\nbrisk-trace: pick an exemplar trace id from a slow bucket above and run\n\
         \n    brisk-trace --store DIR <trace_id>\n\
         \nagainst the ISM's --store-dir to see that record's full waterfall."
    );
}
