//! `brisk-query` — query, aggregate and compact a durable trace store.
//!
//! Companion tool to `brisk-ismd --store-dir`: everything it does runs
//! against the store directory on disk, concurrently with a live writer.
//!
//! ```text
//! brisk-query DIR [--from-us N] [--to-us N] [--node N]... [--sensor N]...
//!             [--limit N] [--stats]
//!             [--window-ms N [--field K]]
//!             [--chain ID [--max-links N]]
//!             [--compact [--keep-hot N] [--block-records N]]
//! ```
//!
//! Modes (mutually exclusive; default prints matching records):
//!
//! * *select* — print records matching the time-range × node × sensor
//!   predicate. Zone-map sidecars prune segments that provably hold no
//!   match, so a narrow query reads a fraction of the store; `--stats`
//!   shows exactly how many segments were pruned vs scanned.
//! * `--window-ms N` — windowed aggregation over the matching records:
//!   per-window record count, rate, and mean/p50/p95/p99 of inter-arrival
//!   gaps (or of numeric field `K` with `--field K`), from the same
//!   log2-bucket histograms the live telemetry uses.
//! * `--chain ID` — walk the CRE reason/conseq links starting from
//!   correlation id `ID` (decimal or 0xHEX) across the matching records
//!   and print the causal chain, indented by depth.
//! * `--compact` — rewrite cold sealed segments into the
//!   descriptor-dictionary delta format (readable transparently by every
//!   reader); `--keep-hot N` leaves the N newest sealed segments plain.
//!
//! Exit status: 0 on success (even when nothing matches), 2 on usage
//! errors, 1 on store errors.

use brisk::prelude::*;
use std::io::Write;
use std::path::PathBuf;

struct Args {
    dir: PathBuf,
    pred: Predicate,
    limit: Option<usize>,
    stats: bool,
    window_ms: Option<u64>,
    field: Option<usize>,
    chain: Option<u64>,
    max_links: usize,
    compact: bool,
    keep_hot: usize,
    block_records: usize,
}

fn parse_id(s: &str) -> std::result::Result<u64, String> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|e| format!("bad correlation id {s:?}: {e}"))
}

fn parse_args() -> std::result::Result<Args, String> {
    let defaults = CompactConfig::default();
    let mut args = Args {
        dir: PathBuf::new(),
        pred: Predicate::all(),
        limit: None,
        stats: false,
        window_ms: None,
        field: None,
        chain: None,
        max_links: 1000,
        compact: false,
        keep_hot: defaults.keep_hot,
        block_records: defaults.block_records,
    };
    let mut dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--from-us" => {
                args.pred.from = Some(UtcMicros::from_micros(
                    val("--from-us")?
                        .parse()
                        .map_err(|e| format!("bad --from-us: {e}"))?,
                ))
            }
            "--to-us" => {
                args.pred.to = Some(UtcMicros::from_micros(
                    val("--to-us")?
                        .parse()
                        .map_err(|e| format!("bad --to-us: {e}"))?,
                ))
            }
            "--node" => {
                let id = val("--node")?
                    .parse()
                    .map_err(|e| format!("bad --node: {e}"))?;
                args.pred = std::mem::take(&mut args.pred).node(id);
            }
            "--sensor" => {
                let id = val("--sensor")?
                    .parse()
                    .map_err(|e| format!("bad --sensor: {e}"))?;
                args.pred = std::mem::take(&mut args.pred).sensor(id);
            }
            "--limit" => {
                args.limit = Some(
                    val("--limit")?
                        .parse()
                        .map_err(|e| format!("bad --limit: {e}"))?,
                )
            }
            "--stats" => args.stats = true,
            "--window-ms" => {
                args.window_ms = Some(
                    val("--window-ms")?
                        .parse()
                        .map_err(|e| format!("bad --window-ms: {e}"))?,
                )
            }
            "--field" => {
                args.field = Some(
                    val("--field")?
                        .parse()
                        .map_err(|e| format!("bad --field: {e}"))?,
                )
            }
            "--chain" => args.chain = Some(parse_id(&val("--chain")?)?),
            "--max-links" => {
                args.max_links = val("--max-links")?
                    .parse()
                    .map_err(|e| format!("bad --max-links: {e}"))?
            }
            "--compact" => args.compact = true,
            "--keep-hot" => {
                args.keep_hot = val("--keep-hot")?
                    .parse()
                    .map_err(|e| format!("bad --keep-hot: {e}"))?
            }
            "--block-records" => {
                args.block_records = val("--block-records")?
                    .parse()
                    .map_err(|e| format!("bad --block-records: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: brisk-query DIR [--from-us N] [--to-us N] [--node N]... \
                     [--sensor N]... [--limit N] [--stats] \
                     [--window-ms N [--field K]] [--chain ID [--max-links N]] \
                     [--compact [--keep-hot N] [--block-records N]]"
                        .into(),
                )
            }
            other if !other.starts_with('-') && dir.is_none() => dir = Some(PathBuf::from(other)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    args.dir = dir.ok_or("missing store directory (see --help)")?;
    if args.field.is_some() && args.window_ms.is_none() {
        return Err("--field only makes sense with --window-ms".into());
    }
    if args.compact && (args.window_ms.is_some() || args.chain.is_some()) {
        return Err("--compact is a mode of its own".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<()> {
    // Buffered, error-propagating stdout: piping into `head` closes the
    // pipe mid-listing, and that must end the program quietly (see
    // `main`), not panic the way `println!` would.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if args.compact {
        let compactor = Compactor::new(
            &args.dir,
            CompactConfig {
                keep_hot: args.keep_hot,
                block_records: args.block_records,
                ..CompactConfig::default()
            },
        );
        let report = compactor.run_once()?;
        writeln!(
            out,
            "compacted {} segments ({} skipped): {} -> {} bytes",
            report.compacted, report.skipped, report.bytes_before, report.bytes_after
        )?;
        out.flush()?;
        return Ok(());
    }

    let reader = StoreReader::open(&args.dir)?;
    let (hit, report) = reader.query(&args.pred)?;
    if args.stats {
        eprintln!(
            "brisk-query: {} records matched; {} segments total, {} pruned, \
             {} scanned, {} evicted mid-scan",
            report.records_matched,
            report.segments_total,
            report.segments_pruned,
            report.segments_scanned,
            report.evicted_under_scan,
        );
    }

    if let Some(window_ms) = args.window_ms {
        let source = match args.field {
            Some(k) => AggSource::Field(k),
            None => AggSource::Gaps,
        };
        let what = match args.field {
            Some(k) => format!("field[{k}]"),
            None => "gap_us".into(),
        };
        writeln!(out, "window_start_us count rate_hz {what}:mean p50 p95 p99")?;
        for w in windowed_aggregate(&hit.records, window_ms as i64 * 1000, source) {
            writeln!(
                out,
                "{} {} {:.1} {:.1} {} {} {}",
                w.start.as_micros(),
                w.count,
                w.rate_hz,
                w.mean,
                w.p50,
                w.p95,
                w.p99
            )?;
        }
        out.flush()?;
        return Ok(());
    }

    if let Some(id) = args.chain {
        let chain = causal_chain(&hit.records, CorrelationId(id), args.max_links);
        if chain.is_empty() {
            writeln!(out, "no events linked to correlation id {id:#x}")?;
        }
        for ev in &chain {
            writeln!(
                out,
                "{:indent$}[{}] {}",
                "",
                ev.depth,
                ev.record,
                indent = ev.depth as usize * 2
            )?;
        }
        out.flush()?;
        return Ok(());
    }

    let shown = args.limit.unwrap_or(usize::MAX);
    for rec in hit.records.iter().take(shown) {
        writeln!(out, "{rec}")?;
    }
    out.flush()?;
    if hit.records.len() > shown {
        eprintln!("brisk-query: output truncated at {shown} (use --limit)");
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&args) {
        // A downstream pager/`head` closing the pipe is a normal way to
        // stop reading, not an error.
        if let BriskError::Io(io) = &e {
            if io.kind() == std::io::ErrorKind::BrokenPipe {
                return;
            }
        }
        eprintln!("brisk-query: {e}");
        std::process::exit(1);
    }
}
