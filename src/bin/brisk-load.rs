//! `brisk-load` — an instrumented demo application / load generator.
//!
//! The counterpart executable to `brisk-ismd`: it *is* an instrumented
//! node — sensors, ring buffers and an external sensor — generating a
//! configurable event load against a running manager. Use it to smoke-test
//! a deployment or to drive throughput experiments across real machines.
//!
//! ```text
//! brisk-load [--tcp HOST:PORT | --uds PATH] [--node N] [--sensors N]
//!            [--rate EV_PER_S] [--duration-s N] [--causal] [--stats]
//!            [--stats-addr HOST:PORT] [--trace-sample N]
//!            [--heartbeat-interval-ms N] [--stamp-hlc]
//!            [--clock-skew-us N] [--clock-drift-ppm F] [--clock-step-ms N]
//!            [--no-sync]
//!            [--fault-seed N] [--fault-corrupt R] [--fault-truncate R]
//!            [--fault-duplicate R] [--fault-reorder R] [--fault-delay R]
//!            [--fault-max-delay-ms N] [--fault-kill-after N]
//! brisk-load --replay DIR [--speed F]
//! ```
//!
//! `--stats` binds the node's ring buffers and EXS to a telemetry
//! registry and dumps the full snapshot table at the end of the run.
//! `--stats-addr` additionally serves that registry live over HTTP
//! (`/metrics`, `/json`, `/flight`, `/healthz`); when the fault plane is
//! armed the node also serves its injected-fault event log at `/faults`,
//! so a chaos drill's wire damage can be read off both ends without a
//! debugger (the ISM side serves the matching `/quarantine` view).
//!
//! `--trace-sample N` attaches an `X_TRACE` context to 1-in-N notices:
//! sampled records accumulate per-stage timestamps at every pipeline hop,
//! which the ISM turns into `/trace` latency exemplars renderable with
//! `brisk-trace`. `N=1` traces every record (use only at low rates).
//!
//! The clock-fault knobs are the chaos plane's *time* half: they wrap the
//! node's clock in a [`FaultClock`] with a constant `--clock-skew-us`
//! offset, a proportional `--clock-drift-ppm` drift, and a sudden
//! `--clock-step-ms` step injected halfway through the run. `--no-sync`
//! makes the node ignore the ISM's `SyncAdjust` corrections, so the fault
//! is never repaired — the condition `--order-mode causal` (on the ISM)
//! must survive. `--stamp-hlc` attaches an `X_HLC` hybrid-logical-clock
//! stamp to every record at scoop, which is what causal mode keys on.
//!
//! The `--fault-*` knobs wrap the ISM connection in the brisk-net fault
//! plane: each rate `R` (0.0–1.0) injects the corresponding wire fault
//! per outbound frame, scheduled deterministically from `--fault-seed` —
//! the same seed replays the same fault sequence, so an ISM-side
//! quarantine report can be reproduced exactly. `--fault-kill-after N`
//! severs the connection after N frames to exercise supervisor reconnect.
//!
//! `--replay DIR` switches to offline mode: instead of generating load, it
//! reads the durable trace a `brisk-ismd --store-dir DIR` run captured and
//! re-drives it through an [`OrderChecker`], reporting recovery results
//! and output-order quality.
//! `--speed F` compresses the original timing by `F` (default: flat out).

use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    tcp: Option<String>,
    #[cfg(unix)]
    uds: Option<String>,
    node: u32,
    sensors: u32,
    rate: f64,
    duration: Duration,
    causal: bool,
    stats: bool,
    stats_addr: Option<String>,
    replay: Option<String>,
    speed: Option<f64>,
    heartbeat_interval: Option<Duration>,
    trace_sample: u32,
    stamp_hlc: bool,
    clock_skew_us: i64,
    clock_drift_ppm: f64,
    clock_step_ms: i64,
    no_sync: bool,
    fault: FaultSpec,
}

fn parse_args() -> std::result::Result<Args, String> {
    let mut args = Args {
        tcp: None,
        #[cfg(unix)]
        uds: None,
        node: 1,
        sensors: 2,
        rate: 10_000.0,
        duration: Duration::from_secs(10),
        causal: false,
        stats: false,
        stats_addr: None,
        replay: None,
        speed: None,
        heartbeat_interval: None,
        trace_sample: 0,
        stamp_hlc: false,
        clock_skew_us: 0,
        clock_drift_ppm: 0.0,
        clock_step_ms: 0,
        no_sync: false,
        fault: FaultSpec::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--tcp" => args.tcp = Some(val("--tcp")?),
            #[cfg(unix)]
            "--uds" => args.uds = Some(val("--uds")?),
            "--node" => args.node = val("--node")?.parse().map_err(|e| format!("{e}"))?,
            "--sensors" => args.sensors = val("--sensors")?.parse().map_err(|e| format!("{e}"))?,
            "--rate" => args.rate = val("--rate")?.parse().map_err(|e| format!("{e}"))?,
            "--duration-s" => {
                args.duration =
                    Duration::from_secs(val("--duration-s")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--causal" => args.causal = true,
            "--stats" => args.stats = true,
            "--stats-addr" => args.stats_addr = Some(val("--stats-addr")?),
            "--replay" => args.replay = Some(val("--replay")?),
            "--speed" => {
                args.speed = Some(
                    val("--speed")?
                        .parse()
                        .map_err(|e| format!("bad --speed: {e}"))?,
                )
            }
            "--trace-sample" => {
                args.trace_sample = val("--trace-sample")?
                    .parse()
                    .map_err(|e| format!("bad --trace-sample: {e}"))?
            }
            "--heartbeat-interval-ms" => {
                args.heartbeat_interval = Some(Duration::from_millis(
                    val("--heartbeat-interval-ms")?
                        .parse()
                        .map_err(|e| format!("bad --heartbeat-interval-ms: {e}"))?,
                ))
            }
            "--stamp-hlc" => args.stamp_hlc = true,
            "--clock-skew-us" => {
                args.clock_skew_us = val("--clock-skew-us")?
                    .parse()
                    .map_err(|e| format!("bad --clock-skew-us: {e}"))?
            }
            "--clock-drift-ppm" => {
                args.clock_drift_ppm = val("--clock-drift-ppm")?
                    .parse()
                    .map_err(|e| format!("bad --clock-drift-ppm: {e}"))?
            }
            "--clock-step-ms" => {
                args.clock_step_ms = val("--clock-step-ms")?
                    .parse()
                    .map_err(|e| format!("bad --clock-step-ms: {e}"))?
            }
            "--no-sync" => args.no_sync = true,
            "--fault-seed" => {
                args.fault.seed = val("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("bad --fault-seed: {e}"))?
            }
            "--fault-corrupt" => {
                args.fault.corrupt_rate = val("--fault-corrupt")?
                    .parse()
                    .map_err(|e| format!("bad --fault-corrupt: {e}"))?
            }
            "--fault-truncate" => {
                args.fault.truncate_rate = val("--fault-truncate")?
                    .parse()
                    .map_err(|e| format!("bad --fault-truncate: {e}"))?
            }
            "--fault-duplicate" => {
                args.fault.duplicate_rate = val("--fault-duplicate")?
                    .parse()
                    .map_err(|e| format!("bad --fault-duplicate: {e}"))?
            }
            "--fault-reorder" => {
                args.fault.reorder_rate = val("--fault-reorder")?
                    .parse()
                    .map_err(|e| format!("bad --fault-reorder: {e}"))?
            }
            "--fault-delay" => {
                args.fault.delay_rate = val("--fault-delay")?
                    .parse()
                    .map_err(|e| format!("bad --fault-delay: {e}"))?
            }
            "--fault-max-delay-ms" => {
                args.fault.max_delay = Duration::from_millis(
                    val("--fault-max-delay-ms")?
                        .parse()
                        .map_err(|e| format!("bad --fault-max-delay-ms: {e}"))?,
                )
            }
            "--fault-kill-after" => {
                args.fault.kill_after_frames = Some(
                    val("--fault-kill-after")?
                        .parse()
                        .map_err(|e| format!("bad --fault-kill-after: {e}"))?,
                )
            }
            "--help" | "-h" => {
                return Err(
                    "usage: brisk-load [--tcp HOST:PORT | --uds PATH] [--node N] \
                            [--sensors N] [--rate EV_PER_S] [--duration-s N] [--causal] \
                            [--stats] [--stats-addr HOST:PORT] [--trace-sample N] \
                            [--heartbeat-interval-ms N] [--stamp-hlc] \
                            [--clock-skew-us N] [--clock-drift-ppm F] \
                            [--clock-step-ms N] [--no-sync] [--fault-seed N] \
                            [--fault-corrupt R] [--fault-truncate R] [--fault-duplicate R] \
                            [--fault-reorder R] [--fault-delay R] [--fault-max-delay-ms N] \
                            [--fault-kill-after N] \
                            | brisk-load --replay DIR [--speed F]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.sensors == 0 {
        return Err("--sensors must be at least 1".into());
    }
    args.fault.validate().map_err(|e| e.to_string())?;
    Ok(args)
}

fn connect(args: &Args) -> brisk_core::Result<Box<dyn Connection>> {
    #[cfg(unix)]
    if let Some(path) = &args.uds {
        return brisk::net::UdsTransport.connect(path);
    }
    let addr = args.tcp.as_deref().unwrap_or("127.0.0.1:7787");
    TcpTransport.connect(addr)
}

/// Offline mode: re-drive a stored trace through the analysis consumers.
fn replay_main(dir: &str, speed: Option<f64>) {
    let reader = StoreReader::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open store {dir}: {e}");
        std::process::exit(1);
    });
    let (records, report) = reader.read_all().unwrap_or_else(|e| {
        eprintln!("cannot read store {dir}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "brisk-load: recovered {} records from {} segments in {dir}\
         \n            (torn tails truncated: {}, torn bytes: {}, corrupt frames: {})",
        report.records,
        report.segments,
        report.torn_tail_truncations,
        report.torn_bytes,
        report.corrupt_frames,
    );
    let replayer = match speed {
        Some(f) => Replayer::at_speed(f),
        None => Replayer::flat_out(),
    };
    let mut checker = OrderChecker::new();
    let mut sink = |rec: &brisk_core::EventRecord| -> brisk_core::Result<()> {
        checker.observe(rec);
        Ok(())
    };
    let stats = replayer.replay(&records, &mut sink).unwrap_or_else(|e| {
        eprintln!("replay failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "brisk-load: replayed {} records in {:?} (trace span {:?}{})",
        stats.records,
        stats.wall,
        stats.trace_span,
        match speed {
            Some(f) => format!(", speed {f}x"),
            None => ", flat out".into(),
        },
    );
    eprintln!(
        "brisk-load: order check: {} records, {} inversions (rate {:.6}), \
         max inversion {} us, {} sequence gaps",
        checker.total(),
        checker.inversions(),
        checker.inversion_rate(),
        checker.max_inversion_us(),
        checker.seq_gaps(),
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if let Some(dir) = &args.replay {
        replay_main(dir, args.speed);
        return;
    }

    // Clock fault plane: wrap the node's clock so skew/drift/step distort
    // every raw reading (sensors and EXS alike), exactly as a broken
    // oscillator or a misconfigured NTP daemon would.
    let clock_faulted =
        args.clock_skew_us != 0 || args.clock_drift_ppm != 0.0 || args.clock_step_ms != 0;
    let base: Arc<dyn Clock> = Arc::new(SystemClock);
    let fault_clock = clock_faulted
        .then(|| FaultClock::new(Arc::clone(&base), args.clock_skew_us, args.clock_drift_ppm));
    let clock: Arc<dyn Clock> = match &fault_clock {
        Some(f) => Arc::clone(f) as Arc<dyn Clock>,
        None => base,
    };
    if fault_clock.is_some() {
        eprintln!(
            "brisk-load: clock fault plane armed: skew {} us, drift {} ppm, \
             step {} ms at half-run{}",
            args.clock_skew_us,
            args.clock_drift_ppm,
            args.clock_step_ms,
            if args.no_sync { ", sync disabled" } else { "" },
        );
    }
    let mut cfg = ExsConfig {
        stamp_hlc: args.stamp_hlc,
        sync_disabled: args.no_sync,
        ..ExsConfig::default()
    };
    if let Some(interval) = args.heartbeat_interval {
        cfg.heartbeat_interval = interval;
    }
    if args.trace_sample > 0 {
        cfg.trace = TraceConfig::every(args.trace_sample);
        eprintln!(
            "brisk-load: self-tracing 1-in-{} notices",
            args.trace_sample
        );
    }
    let lis = Lis::new(NodeId(args.node), Arc::new(Arc::clone(&clock)), &cfg);
    let conn = connect(&args).unwrap_or_else(|e| {
        eprintln!("cannot connect to the ISM: {e}");
        std::process::exit(1);
    });
    let (conn, fault_stats) = if args.fault.is_noop() {
        (conn, None)
    } else {
        let stats = FaultStats::new();
        let wrapped = FaultingConnection::wrap(conn, args.fault, 0, Arc::clone(&stats));
        eprintln!(
            "brisk-load: fault plane armed (seed {}): corrupt {} truncate {} duplicate {} \
             reorder {} delay {} (max {:?}) kill-after {:?}",
            args.fault.seed,
            args.fault.corrupt_rate,
            args.fault.truncate_rate,
            args.fault.duplicate_rate,
            args.fault.reorder_rate,
            args.fault.delay_rate,
            args.fault.max_delay,
            args.fault.kill_after_frames,
        );
        (wrapped, Some(stats))
    };
    let exs =
        spawn_exs(NodeId(args.node), Arc::clone(lis.rings()), clock, conn, cfg).expect("spawn EXS");
    let registry = (args.stats || args.stats_addr.is_some()).then(|| {
        let registry = Registry::new();
        lis.rings().bind_telemetry(&registry);
        exs.bind_telemetry(&registry);
        if let Some(fs) = &fault_stats {
            fs.bind_telemetry(&registry);
        }
        registry
    });
    let stats_server = args.stats_addr.as_deref().map(|addr| {
        let registry = registry.clone().expect("registry exists with --stats-addr");
        let routes = match &fault_stats {
            Some(fs) => {
                let fs = Arc::clone(fs);
                RouteTable::new().add("/faults", "application/json", move || faults_json(&fs))
            }
            None => RouteTable::new(),
        };
        let server = serve_stats(addr, registry, routes).unwrap_or_else(|e| {
            eprintln!("cannot serve stats on {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "brisk-load: stats on http://{0}/metrics (also /json /flight /faults /healthz)",
            server.addr()
        );
        server
    });
    eprintln!(
        "brisk-load: node {} with {} sensors at {} ev/s for {:?}{}",
        args.node,
        args.sensors,
        args.rate,
        args.duration,
        if args.causal {
            " (causally marked)"
        } else {
            ""
        },
    );

    // The step fault fires halfway through the run, so the stream crosses
    // a live discontinuity rather than starting on one.
    let step_thread = (args.clock_step_ms != 0).then(|| {
        let f = Arc::clone(fault_clock.as_ref().expect("step implies fault clock"));
        let delay = args.duration / 2;
        let step_us = args.clock_step_ms * 1_000;
        std::thread::spawn(move || {
            std::thread::sleep(delay);
            f.step_by(step_us);
            eprintln!("brisk-load: clock stepped by {step_us} us");
        })
    });

    // One worker thread per sensor, each pacing its share of the rate.
    let per_sensor_rate = args.rate / args.sensors as f64;
    let mut workers = Vec::new();
    for s in 0..args.sensors {
        let mut port = lis.register();
        let clock = Arc::clone(lis.clock());
        let duration = args.duration;
        let causal = args.causal;
        let node = args.node;
        workers.push(std::thread::spawn(move || {
            let interval = Duration::from_secs_f64(1.0 / per_sensor_rate.max(0.001));
            let start = Instant::now();
            let mut next = start;
            let mut emitted = 0u64;
            let mut dropped = 0u64;
            while start.elapsed() < duration {
                let now = Instant::now();
                if now < next {
                    std::thread::sleep((next - now).min(Duration::from_millis(1)));
                    continue;
                }
                next += interval;
                let ok = if causal && emitted.is_multiple_of(2) {
                    // Mark pairs: even events are reasons, odd the conseqs.
                    let id = CorrelationId((node as u64) << 32 | (s as u64) << 24 | emitted);
                    notice!(
                        port,
                        clock,
                        EventTypeId(1),
                        Value::Reason(id),
                        emitted as i64
                    )
                } else if causal {
                    let id = CorrelationId((node as u64) << 32 | (s as u64) << 24 | (emitted - 1));
                    notice!(
                        port,
                        clock,
                        EventTypeId(2),
                        Value::Conseq(id),
                        emitted as i64
                    )
                } else {
                    notice!(
                        port,
                        clock,
                        EventTypeId(1),
                        emitted as i64,
                        (emitted * 31 % 1_000) as i32,
                        s
                    )
                };
                if ok {
                    emitted += 1;
                } else {
                    dropped += 1;
                }
            }
            (emitted, dropped)
        }));
    }
    let mut total_emitted = 0u64;
    let mut total_dropped = 0u64;
    for w in workers {
        let (e, d) = w.join().expect("worker");
        total_emitted += e;
        total_dropped += d;
    }
    if let Some(t) = step_thread {
        let _ = t.join();
    }
    // Give the EXS a moment to drain the tail, then stop it (flushes).
    std::thread::sleep(Duration::from_millis(100));
    let stats = exs.stop().expect("EXS shutdown");
    // The registry observes the EXS through shared atomics, so the
    // snapshot taken after stop() includes the forced teardown flush.
    if let Some(registry) = &registry {
        eprint!("{}", registry.snapshot().render_table());
    }
    eprintln!(
        "brisk-load: emitted {total_emitted} (dropped {total_dropped}); EXS sent {} records \
         in {} batches, answered {} sync polls, applied {} adjustments ({} ignored)",
        stats.records_sent,
        stats.batches_sent,
        stats.sync_replies,
        stats.adjustments,
        stats.sync_ignored,
    );
    if let Some(f) = &fault_clock {
        eprintln!(
            "brisk-load: clock fault plane: raw clock ended {} us off true time",
            f.error_us()
        );
    }
    if let Some(fault_stats) = fault_stats {
        let (corrupted, truncated, duplicated, reordered, delayed, killed) = fault_stats.counts();
        eprintln!(
            "brisk-load: faults injected: {corrupted} corrupted, {truncated} truncated, \
             {duplicated} duplicated, {reordered} reordered, {delayed} delayed, \
             {killed} kills ({} frames clean)",
            fault_stats.clean(),
        );
    }
    if let Some(server) = stats_server {
        server.stop();
    }
}

/// The `/faults` body: per-kind counters plus the bounded event log, so a
/// chaos drill's injected damage is inspectable from the node under test.
fn faults_json(stats: &FaultStats) -> String {
    use std::fmt::Write as _;
    let (corrupted, truncated, duplicated, reordered, delayed, killed) = stats.counts();
    let mut out = String::from("{\"counts\":{");
    let _ = write!(
        out,
        "\"corrupted\":{corrupted},\"truncated\":{truncated},\"duplicated\":{duplicated},\
         \"reordered\":{reordered},\"delayed\":{delayed},\"killed\":{killed},\
         \"clean\":{}}},\"events\":[",
        stats.clean()
    );
    for (i, e) in stats.events().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match &e.kind {
            brisk::net::FaultKind::Corrupt(_) => "corrupt",
            brisk::net::FaultKind::Truncate { .. } => "truncate",
            brisk::net::FaultKind::Duplicate => "duplicate",
            brisk::net::FaultKind::Reorder => "reorder",
            brisk::net::FaultKind::Delay { .. } => "delay",
            brisk::net::FaultKind::Kill => "kill",
        };
        let _ = write!(
            out,
            "{{\"conn\":{},\"frame\":{},\"kind\":\"{kind}\"}}",
            e.conn, e.frame
        );
    }
    out.push_str("]}");
    out
}
