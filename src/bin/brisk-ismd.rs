//! `brisk-ismd` — the standalone instrumentation system manager daemon.
//!
//! One of the paper's "two executables" (§2): run it once per monitoring
//! domain, point external sensors at it, and read the sorted stream from
//! its outputs.
//!
//! ```text
//! brisk-ismd [--tcp HOST:PORT | --uds PATH] [--picl FILE] [--ts utc|secs]
//!            [--order-mode physical|causal]
//!            [--upstream HOST:PORT --node-prefix N]
//!            [--poll-period-ms N] [--stats-every-s N] [--stats-addr HOST:PORT]
//!            [--store-dir DIR] [--fsync always|never|interval:MS]
//!            [--retain-bytes N] [--segment-bytes N]
//!            [--credit-records N] [--max-queued-records N] [--shed-unmarked]
//!            [--node-timeout MS] [--error-budget N] [--pump-threads N]
//! ```
//!
//! `--order-mode causal` switches the merge plane from physical-timestamp
//! order to hybrid-logical-clock order (DESIGN.md, "Causal ordering &
//! clock faults"): the sorter keys on each record's `X_HLC` stamp and the
//! CRE detects tachyons by provable happened-before instead of timestamp
//! heuristics, so reason→consequence order survives nodes whose clocks
//! are seconds wrong. Records without a stamp sort by their physical
//! timestamp, so mixed fleets degrade gracefully.
//!
//! `--upstream` + `--node-prefix` switch the daemon into *relay mode*
//! (DESIGN.md, "Relay topology"): it still accepts downstream EXS or
//! relay connections, sorts and CRE-repairs their merged stream, but then
//! re-exports that stream to the upstream ISM over one sequenced,
//! credit-controlled link — exactly as if the whole subtree were a single
//! external sensor. Every subtree node id is rewritten under the given
//! prefix (1..=255) so the root sees a flat, collision-free namespace;
//! trees compose by chaining relays tier over tier.
//!
//! `--stats-addr` serves the full telemetry registry as Prometheus text
//! exposition (`curl http://HOST:PORT/metrics`); the same registry backs
//! the periodic stats dump on stderr.
//!
//! `--store-dir` turns on the durable trace store: every sorted record is
//! appended to CRC-framed segment files under the directory, surviving ISM
//! crashes (reopening repairs torn tails) and replayable afterwards with
//! `brisk-load --replay DIR`.
//!
//! `--credit-records` turns on protocol-v3 credit flow control: each EXS
//! connection may have at most N records unacknowledged in flight, so a
//! slow ISM pushes backpressure out to the sensors' rings instead of
//! buffering unboundedly. `--max-queued-records` bounds the pump→manager
//! queue (pumps stop reading their sockets while it is over the limit),
//! and `--shed-unmarked` switches the sorter's memory-pressure response
//! from force-release to dropping the oldest unmarked (never CRE-marked)
//! records.
//!
//! `--stats-addr` also serves the observability endpoints: `/json`
//! (snapshot), `/flight` (the always-on flight recorder's recent
//! structured events; ring size set by `--flight-size`, level filter by
//! the `BRISK_LOG` env var), `/quarantine` (malformed-frame samples as
//! hex), `/trace` (per-stage latency exemplars for `brisk-trace`), and a
//! readiness-aware `/healthz`. A panic anywhere in the daemon dumps the
//! flight ring to stderr before unwinding.
//!
//! `--pump-threads` sizes the poll-based reactor pool that drives every
//! EXS connection (0 = auto: available parallelism capped at 4). The pool
//! is bounded regardless of connection count — a thousand sensors share
//! the same handful of reactor threads.
//!
//! `--node-timeout` evicts a node whose connection has gone silent (no
//! batches, sync replies, or heartbeats) for the given interval — a
//! half-open TCP connection otherwise ties the node's pump up forever.
//! `--error-budget` caps how many undecodable frames one connection may
//! deliver before it is quarantined and dropped (clean peers are
//! unaffected; the offender reconnects with a fresh budget).
//!
//! Runs until stdin closes or a line `quit` arrives (daemon managers send
//! EOF; interactive users type quit), then flushes and prints a final
//! report.

use brisk::prelude::*;
use std::io::BufRead;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    tcp: Option<String>,
    #[cfg(unix)]
    uds: Option<String>,
    upstream: Option<String>,
    node_prefix: Option<u32>,
    picl: Option<String>,
    ts_secs: bool,
    order_mode: OrderMode,
    poll_period: Duration,
    stats_every: Duration,
    stats_addr: Option<String>,
    store: StoreConfig,
    flow: FlowConfig,
    node_timeout: Option<Duration>,
    error_budget: u32,
    pump_threads: usize,
    flight_size: Option<usize>,
    compact_interval: Option<Duration>,
    compact_keep_hot: usize,
}

fn parse_args() -> std::result::Result<Args, String> {
    let mut args = Args {
        tcp: None,
        #[cfg(unix)]
        uds: None,
        upstream: None,
        node_prefix: None,
        picl: None,
        ts_secs: false,
        order_mode: OrderMode::default(),
        poll_period: Duration::from_secs(5),
        stats_every: Duration::from_secs(10),
        stats_addr: None,
        store: StoreConfig::default(),
        flow: FlowConfig::default(),
        node_timeout: IsmConfig::default().node_timeout,
        error_budget: IsmConfig::default().protocol_error_budget,
        pump_threads: IsmConfig::default().pump_threads,
        flight_size: None,
        compact_interval: None,
        compact_keep_hot: CompactConfig::default().keep_hot,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--tcp" => args.tcp = Some(val("--tcp")?),
            #[cfg(unix)]
            "--uds" => args.uds = Some(val("--uds")?),
            "--upstream" => args.upstream = Some(val("--upstream")?),
            "--node-prefix" => {
                args.node_prefix = Some(
                    val("--node-prefix")?
                        .parse()
                        .map_err(|e| format!("bad --node-prefix: {e}"))?,
                )
            }
            "--picl" => args.picl = Some(val("--picl")?),
            "--order-mode" => {
                args.order_mode = OrderMode::parse(&val("--order-mode")?)
                    .map_err(|e| format!("bad --order-mode: {e}"))?
            }
            "--ts" => {
                args.ts_secs = match val("--ts")?.as_str() {
                    "utc" => false,
                    "secs" => true,
                    other => return Err(format!("unknown --ts mode {other:?}")),
                }
            }
            "--poll-period-ms" => {
                args.poll_period = Duration::from_millis(
                    val("--poll-period-ms")?
                        .parse()
                        .map_err(|e| format!("bad --poll-period-ms: {e}"))?,
                )
            }
            "--stats-every-s" => {
                args.stats_every = Duration::from_secs(
                    val("--stats-every-s")?
                        .parse()
                        .map_err(|e| format!("bad --stats-every-s: {e}"))?,
                )
            }
            "--stats-addr" => args.stats_addr = Some(val("--stats-addr")?),
            "--store-dir" => args.store.dir = Some(val("--store-dir")?.into()),
            "--fsync" => {
                args.store.fsync =
                    FsyncPolicy::parse(&val("--fsync")?).map_err(|e| format!("bad --fsync: {e}"))?
            }
            "--retain-bytes" => {
                args.store.retain_bytes = val("--retain-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --retain-bytes: {e}"))?
            }
            "--segment-bytes" => {
                args.store.segment_bytes = val("--segment-bytes")?
                    .parse()
                    .map_err(|e| format!("bad --segment-bytes: {e}"))?
            }
            "--credit-records" => {
                args.flow.credit_records = val("--credit-records")?
                    .parse()
                    .map_err(|e| format!("bad --credit-records: {e}"))?
            }
            "--max-queued-records" => {
                args.flow.max_queued_records = val("--max-queued-records")?
                    .parse()
                    .map_err(|e| format!("bad --max-queued-records: {e}"))?
            }
            "--shed-unmarked" => args.flow.shed_unmarked = true,
            "--node-timeout" => {
                args.node_timeout = Some(Duration::from_millis(
                    val("--node-timeout")?
                        .parse()
                        .map_err(|e| format!("bad --node-timeout: {e}"))?,
                ))
            }
            "--error-budget" => {
                args.error_budget = val("--error-budget")?
                    .parse()
                    .map_err(|e| format!("bad --error-budget: {e}"))?
            }
            "--pump-threads" => {
                args.pump_threads = val("--pump-threads")?
                    .parse()
                    .map_err(|e| format!("bad --pump-threads: {e}"))?
            }
            "--flight-size" => {
                args.flight_size = Some(
                    val("--flight-size")?
                        .parse()
                        .map_err(|e| format!("bad --flight-size: {e}"))?,
                )
            }
            "--compact-interval-ms" => {
                args.compact_interval = Some(Duration::from_millis(
                    val("--compact-interval-ms")?
                        .parse()
                        .map_err(|e| format!("bad --compact-interval-ms: {e}"))?,
                ))
            }
            "--compact-keep-hot" => {
                args.compact_keep_hot = val("--compact-keep-hot")?
                    .parse()
                    .map_err(|e| format!("bad --compact-keep-hot: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: brisk-ismd [--tcp HOST:PORT | --uds PATH] [--picl FILE] \
                            [--order-mode physical|causal] \
                            [--upstream HOST:PORT --node-prefix N] \
                            [--ts utc|secs] [--poll-period-ms N] [--stats-every-s N] \
                            [--stats-addr HOST:PORT] [--store-dir DIR] \
                            [--fsync always|never|interval:MS] [--retain-bytes N] \
                            [--segment-bytes N] [--credit-records N] \
                            [--max-queued-records N] [--shed-unmarked] \
                            [--node-timeout MS] [--error-budget N] \
                            [--pump-threads N] [--flight-size N] \
                            [--compact-interval-ms N] [--compact-keep-hot N]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.upstream.is_some() != args.node_prefix.is_some() {
        return Err("relay mode needs both --upstream and --node-prefix".into());
    }
    if args.compact_interval.is_some() && args.store.dir.is_none() {
        return Err("--compact-interval-ms needs --store-dir".into());
    }
    Ok(args)
}

/// Stable stage name for a wire code (used by the `/trace` endpoint).
fn stage_name(code: u8) -> &'static str {
    TraceStage::from_code(code)
        .map(|s| s.name())
        .unwrap_or("unknown")
}

/// Render the quarantine log (counters + retained hex samples) as JSON.
fn quarantine_json(log: &QuarantineLog) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{{\"frames\":{},\"disconnects\":{},\"samples\":[",
        log.frames(),
        log.disconnects()
    );
    for (i, s) in log.samples().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let error = s.error.replace('\\', "\\\\").replace('"', "\\\"");
        let _ = write!(
            out,
            "{{\"node\":{},\"len\":{},\"head_hex\":\"{}\",\"error\":\"{error}\"}}",
            s.node.0, s.len, s.head_hex
        );
    }
    out.push_str("]}");
    out
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    // Always-on flight recorder: size the ring before anything records
    // into it, and make sure a panic dumps it to stderr on the way out.
    if let Some(n) = args.flight_size {
        set_flight_capacity(n);
    }
    install_flight_panic_hook();

    let ism_cfg = IsmConfig {
        store: args.store.clone(),
        flow: args.flow,
        order_mode: args.order_mode,
        node_timeout: args.node_timeout,
        protocol_error_budget: args.error_budget,
        pump_threads: args.pump_threads,
        ..IsmConfig::default()
    };
    // Relay mode shares one corrected clock between the server (receive
    // stamps, sync mastering over this tier's children) and the upstream
    // exporter (answers the parent's SyncPolls, applies its SyncAdjusts),
    // so the parent ISM steers this whole subtree's timeline.
    let relay_clock = args
        .upstream
        .as_ref()
        .map(|_| CorrectedClock::new(Arc::new(SystemClock) as Arc<dyn Clock>));
    let server_clock: Arc<dyn Clock> = match &relay_clock {
        Some(c) => Arc::clone(c) as Arc<dyn Clock>,
        None => Arc::new(SystemClock),
    };
    let mut server = IsmServer::new(
        ism_cfg,
        SyncConfig {
            poll_period: args.poll_period,
            ..SyncConfig::default()
        },
        server_clock,
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot start ISM: {e}");
        std::process::exit(1);
    });
    if let (Some(addr), Some(raw_prefix)) = (&args.upstream, args.node_prefix) {
        let prefix = NodePrefix::new(raw_prefix).unwrap_or_else(|e| {
            eprintln!("bad --node-prefix: {e}");
            std::process::exit(2);
        });
        let dial = addr.clone();
        let mut exporter = UpstreamExporter::new(
            RelayConfig::new(prefix),
            Box::new(move || TcpTransport.connect(&dial)),
        );
        if let Some(c) = &relay_clock {
            exporter = exporter.with_sync_clock(Arc::clone(c));
        }
        server.set_upstream(exporter);
        eprintln!("relay mode: merged stream re-exported to {addr} under node prefix {raw_prefix}");
    }
    if let Some(dir) = &args.store.dir {
        eprintln!(
            "durable store -> {} (fsync {:?})",
            dir.display(),
            args.store.fsync
        );
    }
    if args.order_mode == OrderMode::Causal {
        eprintln!("causal order mode: merge plane keys on X_HLC stamps");
    }
    if args.flow != FlowConfig::default() {
        eprintln!(
            "flow control: credit {} records/conn, queue bound {} records, shed-unmarked {}",
            args.flow.credit_records, args.flow.max_queued_records, args.flow.shed_unmarked
        );
    }

    let registry = Registry::new();
    server.bind_telemetry(&registry);

    if let Some(path) = &args.picl {
        let mode = if args.ts_secs {
            TsMode::SecondsSince(UtcMicros::now())
        } else {
            TsMode::Utc
        };
        let sink = PiclFileSink::from_path(path, mode).unwrap_or_else(|e| {
            eprintln!("cannot create PICL file {path}: {e}");
            std::process::exit(1);
        });
        server.core_mut().add_sink(Box::new(sink));
        eprintln!("PICL trace -> {path}");
    }

    // Bind the requested transport (TCP by default).
    let listener = {
        #[cfg(unix)]
        if let Some(path) = &args.uds {
            brisk::net::UdsTransport.listen(path).unwrap_or_else(|e| {
                eprintln!("cannot bind unix socket {path}: {e}");
                std::process::exit(1);
            })
        } else {
            let addr = args.tcp.as_deref().unwrap_or("127.0.0.1:7787");
            TcpTransport.listen(addr).unwrap_or_else(|e| {
                eprintln!("cannot bind {addr}: {e}");
                std::process::exit(1);
            })
        }
        #[cfg(not(unix))]
        {
            let addr = args.tcp.as_deref().unwrap_or("127.0.0.1:7787");
            TcpTransport.listen(addr).unwrap_or_else(|e| {
                eprintln!("cannot bind {addr}: {e}");
                std::process::exit(1);
            })
        }
    };
    let handle = server.spawn(listener).expect("spawn ISM");
    eprintln!("brisk-ismd listening on {}", handle.addr());
    eprintln!("send `quit` or close stdin to stop");

    // Stats endpoint, started after spawn so routes can serve live server
    // state (quarantine samples, trace exemplars, delivered counts).
    let stats_server = args.stats_addr.as_deref().map(|addr| {
        let quarantine = Arc::clone(handle.quarantine());
        let stages = handle.stage_latencies().cloned();
        let ready_memory = Arc::clone(handle.memory());
        let routes = RouteTable::new()
            .add("/quarantine", "application/json", move || {
                quarantine_json(&quarantine)
            })
            .add("/trace", "application/json", move || match &stages {
                Some(s) => s.exemplars_json(stage_name),
                None => "{\"stages\":[]}".into(),
            })
            .add("/healthz", "application/json", move || {
                format!(
                    "{{\"status\":\"ok\",\"ready\":true,\"records_delivered\":{},\
                     \"flight_recorded\":{}}}",
                    ready_memory.written(),
                    flight().recorded()
                )
            });
        let s = serve_stats(addr, Arc::clone(&registry), routes).unwrap_or_else(|e| {
            eprintln!("cannot bind stats endpoint {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "stats on http://{0}/metrics (also /json /flight /quarantine /trace /healthz)",
            s.addr()
        );
        s
    });

    // Periodic stats on stderr; stop on stdin EOF / `quit`.
    let memory = Arc::clone(handle.memory());
    let stats_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    // Background compaction: periodically rewrite cold sealed segments
    // into the dictionary/delta format. Runs in its own thread against
    // the store directory — readers (including this process's writer)
    // see the swap atomically via rename.
    let compact_thread = args.compact_interval.map(|every| {
        let dir = args.store.dir.clone().expect("validated in parse_args");
        let keep_hot = args.compact_keep_hot;
        let stop = Arc::clone(&stats_stop);
        let registry = Arc::clone(&registry);
        eprintln!("background compaction every {every:?} (keeping {keep_hot} sealed segments hot)");
        std::thread::spawn(move || {
            let compactor = Compactor::new(
                &dir,
                CompactConfig {
                    keep_hot,
                    ..CompactConfig::default()
                },
            );
            compactor.bind_telemetry(&registry);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(every);
                if let Err(e) = compactor.run_once() {
                    eprintln!("[ismd] compaction pass failed: {e}");
                }
            }
        })
    });
    let stats_thread = {
        let stop = Arc::clone(&stats_stop);
        let every = args.stats_every;
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || {
            let mut last = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                std::thread::sleep(every);
                let written = memory.written();
                eprintln!(
                    "[ismd] records delivered: {written} (+{} since last)",
                    written - last
                );
                eprint!("{}", registry.snapshot().render_table());
                last = written;
            }
        })
    };

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    stats_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let report = handle.stop().expect("orderly ISM shutdown");
    let _ = stats_thread.join();
    if let Some(t) = compact_thread {
        let _ = t.join();
    }
    if let Some(s) = stats_server {
        s.stop();
    }
    eprint!("{}", registry.snapshot().render_table());
    eprintln!(
        "[ismd] final: {} records in, {} out, {} batches, {} sync rounds, {} tachyons repaired",
        report.core.records_in,
        report.core.records_out,
        report.core.batches_in,
        report.sync_rounds,
        report.cre.tachyons_repaired,
    );
    if let Some(relay) = &report.relay {
        eprintln!(
            "[ismd] relay: {} records exported upstream in {} batches \
             ({} retransmitted, {} acks, {} heartbeats)",
            relay.records_exported,
            relay.batches_exported,
            relay.batches_retransmitted,
            relay.acks_received,
            relay.heartbeats_sent,
        );
    }
}
