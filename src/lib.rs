//! # BRISK — Baseline Reduced Instrumentation System Kernel
//!
//! A Rust reproduction of *BRISK: A Portable and Flexible Distributed
//! Instrumentation System* (Bakić, Mutka & Rover, IPPS 1999): a
//! general-purpose distributed instrumentation-system kernel built from
//! three model components — local instrumentation servers (LIS), an
//! instrumentation system manager (ISM), and an XDR-based transfer
//! protocol (TP) — plus a modified Cristian clock-synchronization
//! algorithm and an adaptive on-line sorting stage with causally-related
//! event repair.
//!
//! This facade crate re-exports the whole workspace. A minimal end-to-end
//! pipeline:
//!
//! ```
//! use brisk::prelude::*;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // 1. Start the manager (ISM) on an in-memory transport.
//! let transport = MemTransport::new();
//! let listener = transport.listen("ism").unwrap();
//! let server = IsmServer::new(
//!     IsmConfig::default(),
//!     SyncConfig::default(),
//!     Arc::new(SystemClock),
//! ).unwrap();
//! let ism = server.spawn(listener).unwrap();
//! let mut reader = ism.memory().reader();
//!
//! // 2. Start one node: sensors + external sensor (EXS).
//! let clock: Arc<SystemClock> = Arc::new(SystemClock);
//! let cfg = ExsConfig::default();
//! let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
//! let exs = spawn_exs(
//!     NodeId(1),
//!     Arc::clone(lis.rings()),
//!     clock,
//!     transport.connect("ism").unwrap(),
//!     cfg,
//! ).unwrap();
//!
//! // 3. Instrument: fire events.
//! let mut port = lis.register();
//! for i in 0..100i32 {
//!     notice!(port, lis.clock(), EventTypeId(1), i, "work-item");
//! }
//!
//! // 4. Consume the sorted stream.
//! let mut got = 0;
//! while got < 100 {
//!     let (records, _missed) = reader.poll().unwrap();
//!     got += records.len();
//!     std::thread::sleep(Duration::from_millis(5));
//! }
//! exs.stop().unwrap();
//! ism.stop().unwrap();
//! ```
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |-------|------|
//! | [`core`] | event model, dynamic typing, configs |
//! | [`xdr`] | XDR codec + compressed meta headers |
//! | [`ringbuf`] | lock-free sensor→EXS rings |
//! | [`clock`] | clocks + modified Cristian sync |
//! | [`net`] | TCP / in-memory transports |
//! | [`proto`] | transfer-protocol messages |
//! | [`lis`] | `notice!` sensors + external sensor |
//! | [`ism`] | manager: sorter, CRE, outputs, server |
//! | [`picl`] | PICL ASCII trace format |
//! | [`consumers`] | visual objects + analysis tools |
//! | [`sim`] | deterministic experiment substrate |
//! | [`telemetry`] | lock-free self-instrumentation metrics + exporters |
//! | [`store`] | durable segmented trace store, crash recovery, replay |

#![deny(missing_docs)]

pub use brisk_clock as clock;
pub use brisk_consumers as consumers;
pub use brisk_core as core;
pub use brisk_ism as ism;
pub use brisk_lis as lis;
pub use brisk_net as net;
pub use brisk_picl as picl;
pub use brisk_proto as proto;
pub use brisk_ringbuf as ringbuf;
pub use brisk_sim as sim;
pub use brisk_store as store;
pub use brisk_telemetry as telemetry;
pub use brisk_xdr as xdr;

pub use brisk_lis::{define_notice, notice, notice_gated};

/// Everything needed for typical use in one import.
pub mod prelude {
    pub use brisk_clock::{
        Clock, CorrectedClock, FaultClock, Hlc, SimClock, SimTimeSource, SystemClock,
    };
    pub use brisk_consumers::{
        EventCounter, LatencyTracker, OrderChecker, RateMeter, SummaryStats, TextPane,
        VisualObject, VisualObjectRegistry, VisualObjectSink,
    };
    pub use brisk_core::prelude::*;
    pub use brisk_ism::{
        EventSink, IsmCore, IsmServer, MemoryBuffer, MemoryBufferReader, OnlineSorter,
        PiclFileSink, QuarantineLog, RelayConfig, UpstreamExporter,
    };
    pub use brisk_lis::{
        spawn_exs, spawn_exs_supervised, Batcher, CounterSensor, ExsHandle, ExternalSensor, Lis,
        Scope, SensorGate, SupervisedExsHandle, SupervisorConfig,
    };
    #[cfg(unix)]
    pub use brisk_net::UdsTransport;
    pub use brisk_net::{
        Connection, FaultSpec, FaultStats, FaultingConnection, FaultingTransport, Listener,
        MemTransport, TcpTransport, Transport,
    };
    pub use brisk_picl::{PiclRecord, PiclWriter, TsMode};
    pub use brisk_proto::{Message, NodePrefix};
    pub use brisk_ringbuf::{RingSet, SensorPort};
    pub use brisk_sim::{SortingConfig, SyncSimConfig, SyncSimulation};
    pub use brisk_store::{
        causal_chain, windowed_aggregate, AggSource, CompactConfig, Compactor, Predicate,
        QueryCache, QueryReport, Replayer, StoreReader, StoreTailer, StoreWriter,
    };
    pub use brisk_telemetry::{
        flight, install_flight_panic_hook, serve_prometheus, serve_stats, set_flight_capacity,
        Counter, FlightLevel, FlightRecorder, Gauge, Histogram, Registry, RouteTable,
        StageLatencies, StageTimer, StatsServer, TelemetrySnapshot, TraceSampler,
    };
    pub use {crate::define_notice, crate::notice, crate::notice_gated};
}
