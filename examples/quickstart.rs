//! Quickstart: one node, one manager, a hundred events.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the minimal BRISK pipeline: start an ISM, start a node's
//! LIS + external sensor, fire `notice!` events, and read the sorted
//! stream back from the ISM's memory buffer.

use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    // 1. The manager (ISM). MemTransport keeps the example self-contained;
    //    swap in `TcpTransport` + "127.0.0.1:0" for a real socket.
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    let ism = server.spawn(listener).unwrap();
    let mut reader = ism.memory().reader();

    // 2. One node: sensors write to lock-free rings; the external sensor
    //    drains them, applies the clock correction, batches and ships.
    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();

    // 3. Instrument the "application".
    let mut port = lis.register();
    for i in 0..100i32 {
        let phase = if i % 2 == 0 { "compute" } else { "exchange" };
        notice!(
            port,
            lis.clock(),
            EventTypeId(1),
            i,
            phase,
            2.5f64 * i as f64
        );
    }
    println!("fired 100 events from node 1");

    // 4. Consume the sorted stream.
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while got.len() < 100 && Instant::now() < deadline {
        let (records, _missed) = reader.poll().unwrap();
        got.extend(records);
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("received {} records; first three:", got.len());
    for rec in got.iter().take(3) {
        println!("  {rec}");
    }
    assert!(
        got.windows(2).all(|w| w[0].ts <= w[1].ts),
        "ISM output is timestamp-sorted"
    );

    let exs_stats = exs.stop().unwrap();
    let report = ism.stop().unwrap();
    println!(
        "EXS sent {} records in {} batches; ISM delivered {}",
        exs_stats.records_sent, exs_stats.batches_sent, report.core.records_out
    );
}
