//! PICL trace logging and post-processing.
//!
//! ```text
//! cargo run --release --example picl_logging
//! ```
//!
//! Runs a short instrumented workload with the PICL file sink enabled
//! (§3.5's optional output mode), then re-reads the trace like an offline
//! analysis tool would: computing per-event-type counts and a simple
//! inter-event-time histogram from the ASCII records alone.

use brisk::picl::{read_trace, record::ClockField};
use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let path = std::env::temp_dir().join("brisk_picl_logging.picl");

    // --- Pipeline with a PICL sink in seconds-since-start mode.
    let mut server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    let origin = UtcMicros::now();
    let file = std::fs::File::create(&path).unwrap();
    server.core_mut().add_sink(Box::new(
        PiclFileSink::new(Box::new(file), TsMode::SecondsSince(origin)).unwrap(),
    ));
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let ism = server.spawn(listener).unwrap();

    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(3), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(3),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();

    // --- A phased workload: setup, iterations, teardown.
    let mut port = lis.register();
    notice!(port, lis.clock(), EventTypeId(0), "setup");
    for i in 0..500i32 {
        notice!(port, lis.clock(), EventTypeId(1), i, i * 2);
        if i % 50 == 0 {
            notice!(port, lis.clock(), EventTypeId(2), i, "checkpoint");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    notice!(port, lis.clock(), EventTypeId(3), "teardown");

    // --- Wait for delivery, then shut down (flushes the PICL sink).
    let expect = 1 + 500 + 10 + 1;
    let mut reader = ism.memory().reader();
    let mut total = 0;
    let deadline = Instant::now() + Duration::from_secs(10);
    while total < expect && Instant::now() < deadline {
        total += reader.poll().unwrap().0.len();
        std::thread::sleep(Duration::from_millis(10));
    }
    exs.stop().unwrap();
    ism.stop().unwrap();

    // --- Offline analysis straight from the ASCII trace.
    let text = std::fs::read_to_string(&path).unwrap();
    let records = read_trace(text.as_bytes()).unwrap();
    println!("trace {} holds {} records", path.display(), records.len());

    let mut by_type = std::collections::BTreeMap::new();
    for r in &records {
        *by_type.entry(r.event).or_insert(0u64) += 1;
    }
    println!("events by type:");
    for (ty, n) in &by_type {
        println!("  type {ty}: {n}");
    }

    let times: Vec<f64> = records
        .iter()
        .map(|r| match r.clock {
            ClockField::Seconds(s) => s,
            ClockField::UtcMicros(us) => us as f64 / 1e6,
        })
        .collect();
    let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) * 1e6).collect();
    let mut sorted = gaps.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if !sorted.is_empty() {
        println!(
            "inter-event gaps: median {:.1} µs, p99 {:.1} µs, max {:.1} µs",
            sorted[sorted.len() / 2],
            sorted[(sorted.len() * 99 / 100).min(sorted.len() - 1)],
            sorted[sorted.len() - 1]
        );
    }
    assert_eq!(records.len(), expect);
    assert!(
        times.windows(2).all(|w| w[1] >= w[0]),
        "trace timestamps are sorted"
    );
    println!("trace parses, is complete and is time-ordered.");
}
