//! A fuller deployment: four nodes over real TCP loopback, several sensor
//! threads per node, a PICL trace file, and live visual objects.
//!
//! ```text
//! cargo run --release --example distributed_pipeline
//! ```
//!
//! This is the shape of the workload the paper's introduction motivates:
//! a parallel application whose processes emit events that one manager
//! collects, sorts, logs and visualizes on-line.

use brisk::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let tmp = std::env::temp_dir().join("brisk_distributed_pipeline.picl");

    // --- ISM with three outputs: memory buffer, PICL file, visual objects.
    let mut server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig {
            poll_period: Duration::from_millis(500),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();

    let file = std::fs::File::create(&tmp).unwrap();
    let origin = UtcMicros::now();
    server.core_mut().add_sink(Box::new(
        PiclFileSink::new(Box::new(file), TsMode::SecondsSince(origin)).unwrap(),
    ));

    let counter = EventCounter::new();
    let counts = counter.counts();
    let meter = RateMeter::new(1_000_000);
    let rate = meter.rate();
    let registry = Arc::new(Mutex::new(VisualObjectRegistry::new()));
    registry.lock().register(Box::new(counter));
    registry.lock().register(Box::new(meter));
    server.core_mut().add_sink(Box::new(VisualObjectSink::new(
        Arc::clone(&registry),
        TsMode::Utc,
    )));

    let transport = TcpTransport;
    let listener = transport.listen("127.0.0.1:0").unwrap();
    let ism = server.spawn(listener).unwrap();
    let addr = ism.addr().to_string();
    println!("ISM listening on {addr}");

    // --- Four nodes, three sensor threads each.
    const NODES: u32 = 4;
    const SENSORS: u32 = 3;
    const EVENTS: u64 = 2_000;
    let mut exs_handles = Vec::new();
    let mut workers = Vec::new();
    for n in 0..NODES {
        let clock = Arc::new(SystemClock);
        let cfg = ExsConfig::default();
        let lis = Lis::new(NodeId(n), Arc::clone(&clock), &cfg);
        let exs = spawn_exs(
            NodeId(n),
            Arc::clone(lis.rings()),
            clock,
            transport.connect(&addr).unwrap(),
            cfg,
        )
        .unwrap();
        exs_handles.push(exs);
        for _ in 0..SENSORS {
            let mut port = lis.register();
            let clock = Arc::clone(lis.clock());
            workers.push(std::thread::spawn(move || {
                for i in 0..EVENTS {
                    notice!(
                        port,
                        clock,
                        EventTypeId((i % 5) as u32),
                        i as i64,
                        (i * 31 % 97) as i32
                    );
                    if i % 64 == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }));
        }
    }
    for w in workers {
        w.join().unwrap();
    }
    println!(
        "all nodes emitted {} events total",
        NODES as u64 * SENSORS as u64 * EVENTS
    );

    // --- Wait for delivery, watching the visual objects.
    let expect = NODES as u64 * SENSORS as u64 * EVENTS;
    let mut reader = ism.memory().reader();
    let mut checker = OrderChecker::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut delivered = 0u64;
    while delivered < expect && Instant::now() < deadline {
        let (records, _) = reader.poll().unwrap();
        for r in &records {
            checker.observe(r);
        }
        delivered += records.len() as u64;
        std::thread::sleep(Duration::from_millis(20));
    }
    println!(
        "delivered {delivered}/{expect}; inversion rate {:.5}; live rate meter: {:.0} ev/s",
        checker.inversion_rate(),
        *rate.lock()
    );
    println!("per-node counts (visual object):");
    let counts = counts.lock();
    let mut nodes: Vec<_> = counts.iter().collect();
    nodes.sort();
    for (node, count) in nodes {
        println!("  node {node}: {count}");
    }
    drop(counts);

    for exs in exs_handles {
        exs.stop().unwrap();
    }
    let report = ism.stop().unwrap();
    println!(
        "ISM: {} records in / {} out, {} sync rounds, {} sorter inversions",
        report.core.records_in,
        report.core.records_out,
        report.sync_rounds,
        report.sorter.inversions
    );

    // --- The PICL trace is valid and complete.
    let text = std::fs::read_to_string(&tmp).unwrap();
    let parsed = brisk::picl::read_trace(text.as_bytes()).unwrap();
    println!(
        "PICL trace at {} holds {} records",
        tmp.display(),
        parsed.len()
    );
}
