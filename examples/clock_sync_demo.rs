//! Clock-synchronization demo on the simulated cluster.
//!
//! ```text
//! cargo run --release --example clock_sync_demo
//! ```
//!
//! Reproduces the paper's §4 scenario — eight external-sensor clocks,
//! 5-second polling, ten minutes — and prints the pairwise clock spread
//! over time as a text chart, for a quiet LAN, a disturbed LAN, and the
//! original Cristian algorithm for comparison.

use brisk::sim::{DelayModel, SyncSimConfig, SyncSimulation};
use brisk_core::SyncConfig;
use std::time::Duration;

fn chart(label: &str, cfg: SyncSimConfig) {
    let report = SyncSimulation::new(cfg).run().unwrap();
    println!("\n--- {label} ---");
    println!(
        "initial spread {} µs | post-warmup max {} µs, mean {:.0} µs | {:.1}% of samples <200 µs | {} rounds",
        report.initial_spread_us,
        report.max_spread_after_warmup_us,
        report.mean_spread_after_warmup_us,
        100.0 * report.fraction_under_200us,
        report.rounds,
    );
    // One bucket per 20 s; bar height ∝ max spread in the bucket.
    let bucket_us = 20_000_000i64;
    let mut buckets: Vec<(i64, i64, bool)> = Vec::new();
    for s in &report.samples {
        let b = s.t_us / bucket_us;
        if buckets.last().map(|&(i, _, _)| i) != Some(b) {
            buckets.push((b, 0, false));
        }
        let last = buckets.last_mut().unwrap();
        last.1 = last.1.max(s.max_pairwise_us);
        last.2 |= s.disturbed;
    }
    for (b, max_spread, disturbed) in buckets {
        let bar_len = ((max_spread as f64).log10().max(0.0) * 12.0) as usize;
        println!(
            "t={:>4}s |{}{} {} µs{}",
            b * 20,
            "█".repeat(bar_len.min(70)),
            if bar_len > 70 { "…" } else { "" },
            max_spread,
            if disturbed { "  [disturbance]" } else { "" },
        );
    }
}

fn main() {
    let base = SyncSimConfig {
        nodes: 8,
        duration: Duration::from_secs(600),
        ..SyncSimConfig::default()
    };

    chart("quiet LAN, BRISK modified Cristian", base.clone());

    chart(
        "disturbed LAN (periodic latency bursts), BRISK modified Cristian",
        SyncSimConfig {
            delay: DelayModel::disturbed_lan(),
            ..base.clone()
        },
    );

    chart(
        "quiet LAN, ORIGINAL Cristian (ablation A1)",
        SyncSimConfig {
            sync: SyncConfig {
                original_cristian: true,
                ..SyncConfig::default()
            },
            ..base
        },
    );

    println!("\nNote how BRISK's variant only ever ADVANCES slave clocks toward the");
    println!("most-ahead one (conservative against network noise), at the price of a");
    println!("small collective positive drift — exactly the trade-off described in §3.3.");
}
