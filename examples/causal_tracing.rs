//! Causal tracing: `X_REASON` / `X_CONSEQ` markers and tachyon repair.
//!
//! ```text
//! cargo run --release --example causal_tracing
//! ```
//!
//! Two "services" exchange requests over a (simulated) channel. The
//! responder's clock is deliberately set HALF A MILLISECOND BEHIND the
//! requester's — far more than the message latency — so every response is
//! recorded with a timestamp *earlier* than the request that caused it: a
//! tachyon (§3.6). The ISM's CRE matcher repairs the timestamps so
//! consumers always see cause before effect, and requests an extra clock
//! synchronization round each time.

use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig {
            // Keep periodic sync out of the way so the offset persists and
            // every exchange demonstrates a repair.
            poll_period: Duration::from_secs(3600),
            ..SyncConfig::default()
        },
        Arc::new(SystemClock),
    )
    .unwrap();
    let ism = server.spawn(listener).unwrap();
    let mut reader = ism.memory().reader();

    // Requester node: correct clock.
    let req_src = SimTimeSource::starting_at(UtcMicros::now());
    let req_clock = Arc::new(SimClock::new(req_src.clone(), 0, 0.0, 1));
    let cfg = ExsConfig::default();
    let req_lis = Lis::new(NodeId(0), Arc::clone(&req_clock), &cfg);
    let req_exs = spawn_exs(
        NodeId(0),
        Arc::clone(req_lis.rings()),
        req_clock,
        transport.connect("ism").unwrap(),
        cfg.clone(),
    )
    .unwrap();

    // Responder node: clock 500 µs BEHIND.
    let resp_clock = Arc::new(SimClock::new(req_src.clone(), -500, 0.0, 1));
    let resp_lis = Lis::new(NodeId(1), Arc::clone(&resp_clock), &cfg);
    let resp_exs = spawn_exs(
        NodeId(1),
        Arc::clone(resp_lis.rings()),
        resp_clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();

    const EXCHANGES: u64 = 200;
    let mut req_port = req_lis.register();
    let mut resp_port = resp_lis.register();
    for i in 0..EXCHANGES {
        let id = CorrelationId(i);
        // Request sent: a REASON event on node 0.
        let rec = EventRecord::builder(EventTypeId(1))
            .reason(id)
            .field(i as i64)
            .build(NodeId(0), SensorId(0), 0, UtcMicros::ZERO)
            .unwrap();
        req_port
            .emit(rec.event_type, req_lis.clock().now(), rec.fields.clone())
            .unwrap();
        // 100 µs of flight time…
        req_src.advance_by(100);
        // …then the response handler fires: a CONSEQ event on node 1,
        // stamped with node 1's lagging clock.
        resp_port
            .emit(
                EventTypeId(2),
                resp_lis.clock().now(),
                vec![Value::Conseq(id), Value::I64(i as i64)],
            )
            .unwrap();
        req_src.advance_by(900); // until the next exchange
    }
    // The EXS flush timeout runs on the node clocks, which are simulated
    // here — and a frozen clock freezes timeouts. Keep simulated time
    // tracking real time from now on so the external sensors flush.
    let ticker_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let ticker = {
        let src = req_src.clone();
        let stop = Arc::clone(&ticker_stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                src.advance_by(2_000);
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };
    println!("ran {EXCHANGES} request/response exchanges with a -500 µs responder clock");

    // Collect everything.
    let expect = 2 * EXCHANGES;
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while (got.len() as u64) < expect && Instant::now() < deadline {
        let (records, _) = reader.poll().unwrap();
        got.extend(records);
        std::thread::sleep(Duration::from_millis(10));
    }
    ticker_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    ticker.join().unwrap();
    req_exs.stop().unwrap();
    resp_exs.stop().unwrap();
    let report = ism.stop().unwrap();

    // Verify causality in the delivered stream.
    let mut reason_pos = std::collections::HashMap::new();
    let mut conseq_pos = std::collections::HashMap::new();
    for (pos, rec) in got.iter().enumerate() {
        if let Some(id) = rec.reason_id() {
            reason_pos.insert(id, pos);
        }
        if let Some(id) = rec.conseq_id() {
            conseq_pos.insert(id, pos);
        }
    }
    let violations = conseq_pos
        .iter()
        .filter(|(id, &cpos)| reason_pos.get(id).is_some_and(|&rpos| cpos < rpos))
        .count();
    println!("delivered {} records", got.len());
    println!("causality violations visible to the consumer: {violations}");
    println!(
        "tachyons repaired by the ISM: {} (extra sync rounds requested: {})",
        report.cre.tachyons_repaired, report.cre.extra_syncs_requested
    );
    assert_eq!(violations, 0, "CRE repair must hide every tachyon");
    assert!(report.cre.tachyons_repaired > 0);
    println!("every response now appears after its request, as causality demands.");
}
