//! Hybrid monitoring: tracing/profiling emulated on the event kernel.
//!
//! ```text
//! cargo run --release --example hybrid_profiling
//! ```
//!
//! The paper's flexibility goal includes emulating "a hybrid monitoring
//! approach for tracing or profiling by a software, event-based monitoring
//! approach" (§2). This example instruments a small work loop with scope
//! timers (enter/exit event pairs), a sampled counter, and a run-time
//! sensor gate, then reconstructs a per-phase profile on the consumer side
//! — without the application knowing anything beyond `notice!`-level APIs.

use brisk::consumers::ProfileBuilder;
use brisk::lis::profiling::{CounterSensor, Scope, SensorGate};
use brisk::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

const EV_COMPUTE: EventTypeId = EventTypeId(10);
const EV_EXCHANGE: EventTypeId = EventTypeId(11);
const EV_ITEMS: EventTypeId = EventTypeId(12);
const EV_DEBUG: EventTypeId = EventTypeId(13);

fn main() {
    let transport = MemTransport::new();
    let listener = transport.listen("ism").unwrap();
    let server = IsmServer::new(
        IsmConfig::default(),
        SyncConfig::default(),
        Arc::new(SystemClock),
    )
    .unwrap();
    let ism = server.spawn(listener).unwrap();
    let mut reader = ism.memory().reader();

    let clock = Arc::new(SystemClock);
    let cfg = ExsConfig::default();
    let lis = Lis::new(NodeId(1), Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        NodeId(1),
        Arc::clone(lis.rings()),
        clock,
        transport.connect("ism").unwrap(),
        cfg,
    )
    .unwrap();

    // Monitoring control: a tool could flip these at run time. We disable
    // the chatty debug events before the run even starts.
    let gate = SensorGate::all_enabled();
    gate.disable(EV_DEBUG);

    // One port per sensor, as in real instrumentation: the scope timers
    // and the counter are independent internal sensors.
    let mut port = lis.register();
    let mut counter_port = lis.register();
    let mut items = CounterSensor::new(EV_ITEMS, Duration::from_millis(5));

    const ITERATIONS: u64 = 300;
    for i in 0..ITERATIONS {
        {
            let _compute = Scope::enter(&mut port, lis.clock(), EV_COMPUTE, i);
            // "compute": ~50 µs of busy work.
            let mut acc = 0u64;
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_micros(50) {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            std::hint::black_box(acc);
            items.add(&mut counter_port, lis.clock(), 1 + (i % 3));
        }
        if i % 4 == 0 {
            let _exchange = Scope::enter(&mut port, lis.clock(), EV_EXCHANGE, i);
            std::thread::sleep(Duration::from_micros(120));
        }
        // This one never reaches the ring — the gate filters it.
        notice_gated!(gate, port, lis.clock(), EV_DEBUG, i as i64, "debug detail");
    }
    items.flush(&mut counter_port, lis.clock());
    println!("instrumented {ITERATIONS} iterations (debug events gated off)");

    // Collect and profile.
    let expected_min = (2 * ITERATIONS + 2 * ITERATIONS.div_ceil(4)) as usize;
    let mut builder = ProfileBuilder::new();
    let mut total = 0usize;
    let deadline = Instant::now() + Duration::from_secs(10);
    while total < expected_min && Instant::now() < deadline {
        let (records, _) = reader.poll().unwrap();
        for r in &records {
            builder.observe(r);
        }
        total += records.len();
        std::thread::sleep(Duration::from_millis(10));
    }
    // Drain anything the shutdown flushes.
    exs.stop().unwrap();
    ism.stop().unwrap();
    let (records, _) = reader.poll().unwrap();
    for r in &records {
        builder.observe(r);
    }
    total += records.len();
    println!("consumer saw {total} records");

    let profiles = builder.finish();
    println!("\nscope profiles:");
    for ty in profiles.scope_types() {
        let p = profiles.scope(ty).unwrap();
        let name = match ty {
            10 => "compute",
            11 => "exchange",
            _ => "?",
        };
        println!(
            "  {name:9} calls={:4} total={:7} µs  {}",
            p.calls,
            p.total_us(),
            p.durations()
        );
    }
    if let Some(series) = profiles.counter(1, EV_ITEMS.raw()) {
        let final_value = series.last().unwrap().value;
        println!(
            "\nitems counter: {} snapshots, final value {final_value} \
             (vs {ITERATIONS} iterations × avg 2 items)",
            series.len()
        );
    }

    let compute = profiles.scope(EV_COMPUTE.raw()).unwrap();
    assert_eq!(compute.calls, ITERATIONS);
    assert!(
        compute.durations().p50 >= 50.0,
        "compute scopes are >= 50 µs"
    );
    let exchange = profiles.scope(EV_EXCHANGE.raw()).unwrap();
    assert_eq!(exchange.calls, ITERATIONS.div_ceil(4));
    println!("\nprofile reconstruction matches the instrumented ground truth.");
}
